//! Load generator for `nestwx-serve` (the concurrent planning service).
//!
//! Usage:
//!
//! ```text
//! bench_serve [--smoke] [--churn] [--sweep] [--addr HOST:PORT] [--clients N] [--requests N] [--out PATH] [--trace-out PATH]
//! ```
//!
//! Default (bench) mode spawns an in-process server on an ephemeral port,
//! warms a 16-scenario working set, then hammers it from N client threads
//! issuing **pipelined** batches of `plan` requests round-robin (128
//! requests per write, responses verified byte-for-byte against the warmup
//! canon without parsing JSON). Reports throughput and client-side batch
//! latency percentiles (p50/p90/p99 via `nestwx-obs` log histograms) into
//! `BENCH_serve.json`, together with the server's cache statistics.
//!
//! `--churn` appends a connection/identity churn measurement to the same
//! output file: waves of short-lived connections carrying a flood of
//! *distinct* synthetic client identities (bounded rate-limiter table), a
//! predictor-eviction cycle over more machines than the bounded predictor
//! map holds, a hammer phase where a handful of clients blow through their
//! token buckets (rate shedding), and a cold phase under a 1 ms deadline
//! (deadline expiry). Each phase records throughput and the process RSS,
//! so `perf_gate --serve` can gate churn throughput and peak memory.
//!
//! `--smoke` runs a short mixed predict/plan workload instead — the CI
//! smoke job points it at an external `nestwx serve` process via `--addr`,
//! asserts zero protocol errors and a non-zero cache hit rate, then issues
//! `shutdown` so CI can check the server drains and exits 0.
//!
//! `--sweep` measures the scenario-sweep engine instead of the wire
//! protocol: a fixed in-code 96-combination spec (64 unique scenarios
//! after canonical-digest dedup) is swept cold into a throwaway disk
//! cache, then re-swept warm under a different job count — the warm run
//! must be a pure disk replay with the same `plans_digest` — and finally
//! a server pointed at the swept cache must answer `plan` requests
//! byte-identically to one planning from scratch. Both timing loops are
//! short, so each phase runs five rounds and reports the best wall
//! time. Writes `BENCH_sweep.json` (scenarios/s, dedup ratio,
//! cold-vs-warm speedup, warm hit rate) for `perf_gate --sweep`.
//!
//! The default bench mode also measures **flight-recorder overhead**: it
//! repeats a shorter hot-set phase against paired in-process servers —
//! one recording request spans (`trace: true`, the default), one with the
//! recorder disabled — alternating three rounds each and keeping the best
//! req/s per side. `hot_rps_recording_on/off` and `recorder_overhead_pct`
//! land in `BENCH_serve.json` for `perf_gate --serve`, which caps the
//! overhead at `NESTWX_PERF_TRACE_OVERHEAD_PCT` (default 5 %).
//!
//! `--trace-out PATH` additionally drains the server's span rings through
//! the `trace` endpoint after the timed phase and writes the validated
//! `nestwx-obs-serve-summary` envelope to PATH (renderable by
//! `nestwx obs report|top|diff`) plus its Chrome `trace_event` conversion
//! next to it (`*.chrome.json`, for chrome://tracing / Perfetto).
//!
//! Knobs (flags win over env): `NESTWX_SERVE_CLIENTS` (default 4),
//! `NESTWX_SERVE_REQS` (requests per client, default 30000),
//! `NESTWX_TRACE_REQS` (overhead-phase requests per client, default 15000),
//! `NESTWX_CHURN_CLIENTS` (distinct churn identities, default 1,000,000),
//! `NESTWX_CHURN_HAMMER` (hammer-phase requests, default 200,000),
//! `NESTWX_CHURN_COLD` (cold deadline-phase requests, default 32).

use nestwx_bench::{banner, env_u32, pacific_parent};
use nestwx_core::{AllocPolicy, MappingKind, Strategy, TempDir};
use nestwx_grid::NestSpec;
use nestwx_obs::clock;
use nestwx_obs::LogHistogram;
use nestwx_serve::{
    spawn, Client, PredictParams, Request, RequestBody, ScenarioParams, ServeConfig,
};
use nestwx_sweep::{run_sweep, SweepOptions, SweepSpec};
use serde::Serialize;
use serde_json::Value;
use std::process::ExitCode;
use std::sync::Arc;

/// Requests per pipelined write in the hot-set phase. Far below the
/// server's per-connection outbox cap, so a writing client can defer its
/// reads for a whole batch without being reaped as a slow consumer.
const PIPELINE_DEPTH: usize = 128;

/// What one run writes to `BENCH_serve.json`. `perf_gate --serve` reads
/// `throughput_rps`, `cache_hit_rate`, `byte_identical`,
/// `protocol_errors` — and, when present, `recorder_overhead_pct`,
/// `churn.throughput_rps` and `churn.max_rss_mb` — back out of this.
#[derive(Debug, Serialize)]
struct ServeBenchOutput {
    benchmark: String,
    mode: String,
    clients: u32,
    requests_per_client: u32,
    pipeline_depth: u32,
    scenarios: u32,
    warmup_requests: u64,
    requests_total: u64,
    elapsed_seconds: f64,
    throughput_rps: f64,
    /// Round-trip latency of one whole pipelined batch (not one request).
    batch_latency: nestwx_obs::HistSummary,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    cache_hit_rate: f64,
    protocol_errors: u64,
    byte_identical: bool,
    /// Hot-set req/s with the flight recorder enabled — best of three
    /// paired rounds (absent when benching an external `--addr` server,
    /// whose recorder config we cannot control).
    hot_rps_recording_on: Option<f64>,
    /// Hot-set req/s with the flight recorder disabled, same pairing.
    hot_rps_recording_off: Option<f64>,
    /// Throughput lost to span recording, percent of the recording-off
    /// figure (clamped at 0 when the recording run measured faster).
    /// `perf_gate --serve` caps this at `NESTWX_PERF_TRACE_OVERHEAD_PCT`.
    recorder_overhead_pct: Option<f64>,
    churn: Option<ChurnOutput>,
}

/// One churn phase's figures.
#[derive(Debug, Serialize)]
struct ChurnPhase {
    phase: String,
    requests: u64,
    ok_responses: u64,
    error_responses: u64,
    elapsed_seconds: f64,
    throughput_rps: f64,
    /// Process RSS (bench + in-process server) at phase end, MiB.
    rss_mb: f64,
}

/// The `--churn` section of the output.
#[derive(Debug, Serialize)]
struct ChurnOutput {
    distinct_clients: u64,
    phases: Vec<ChurnPhase>,
    /// Distinct-identity flood throughput — the gated figure.
    throughput_rps: f64,
    /// Peak of the per-phase RSS samples, MiB — the gated figure.
    max_rss_mb: f64,
    rate_shed: u64,
    deadline_expired: u64,
    rate_evictions: u64,
    predictor_evictions: u64,
    clients_tracked: u64,
    drain_clean: bool,
}

#[derive(Debug)]
struct Args {
    smoke: bool,
    churn: bool,
    sweep: bool,
    addr: Option<String>,
    clients: u32,
    requests: u32,
    /// Explicit `--out`; defaults per mode (`BENCH_serve.json` /
    /// `BENCH_sweep.json`) when absent.
    out: Option<String>,
    /// `--trace-out PATH`: drain the flight recorder after the timed
    /// phase and write the serve-summary envelope (+ Chrome trace) here.
    trace_out: Option<String>,
}

impl Args {
    fn out_path(&self) -> String {
        self.out.clone().unwrap_or_else(|| {
            if self.sweep {
                "BENCH_sweep.json"
            } else {
                "BENCH_serve.json"
            }
            .into()
        })
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        churn: false,
        sweep: false,
        addr: None,
        clients: env_u32("NESTWX_SERVE_CLIENTS", 4).max(1),
        requests: env_u32("NESTWX_SERVE_REQS", 30000).max(1),
        out: None,
        trace_out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("{} requires a value", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--churn" => args.churn = true,
            "--sweep" => args.sweep = true,
            "--addr" => args.addr = Some(take(&mut i)?),
            "--clients" => {
                args.clients = take(&mut i)?
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("--clients expects a positive integer")?
            }
            "--requests" => {
                args.requests = take(&mut i)?
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("--requests expects a positive integer")?
            }
            "--out" => args.out = Some(take(&mut i)?),
            "--trace-out" => args.trace_out = Some(take(&mut i)?),
            other => return Err(format!("unknown argument {other}")),
        }
        i += 1;
    }
    if args.churn && args.addr.is_some() {
        return Err("--churn needs the in-process server (no --addr): it sets limit knobs".into());
    }
    if args.sweep && (args.smoke || args.churn || args.addr.is_some()) {
        return Err("--sweep is standalone: it spawns its own servers and takes no --addr".into());
    }
    if args.trace_out.is_some() && (args.smoke || args.sweep) {
        return Err("--trace-out only applies to the default bench mode".into());
    }
    Ok(args)
}

/// The working set: `n` distinct two-nest scenarios on one 64-rank BG/L
/// midplane slice. All share the machine (one predictor fit serves all),
/// but differ in nest sizes and mapping so each has its own cache entry.
fn working_set(n: usize) -> Vec<Request> {
    let mappings = MappingKind::ALL;
    (0..n)
        .map(|i| {
            let params = ScenarioParams {
                machine: "bgl:64".into(),
                parent: pacific_parent(),
                nests: vec![
                    NestSpec::new(
                        120 + 9 * (i as u32 % 4),
                        111 + 6 * (i as u32 / 4),
                        3,
                        (10 + i as u32, 12),
                    ),
                    NestSpec::new(96, 90, 3, (180, 170)),
                ],
                strategy: Strategy::Concurrent,
                alloc: AllocPolicy::HuffmanSplitTree,
                mapping: mappings[i % mappings.len()],
                io: None,
            };
            // One id per *scenario*, shared by every repetition, so the
            // whole response line (not just `result`) must be
            // byte-identical on a cache hit.
            Request::new(Some(format!("s{i}")), RequestBody::Plan(params))
        })
        .collect()
}

fn stats_request() -> Request {
    Request::new(Some("stats".into()), RequestBody::Stats)
}

fn shutdown_request() -> Request {
    Request::new(Some("bye".into()), RequestBody::Shutdown)
}

fn u64_at(v: &Value, path: &[&str]) -> u64 {
    let mut cur = v;
    for key in path {
        match cur.get(key) {
            Some(next) => cur = next,
            None => return 0,
        }
    }
    cur.as_u64()
        .or_else(|| cur.as_f64().map(|f| f as u64))
        .unwrap_or(0)
}

fn f64_at(v: &Value, path: &[&str]) -> f64 {
    let mut cur = v;
    for key in path {
        match cur.get(key) {
            Some(next) => cur = next,
            None => return 0.0,
        }
    }
    cur.as_f64().unwrap_or(0.0)
}

/// Resident set size of this process (bench + any in-process server), MiB.
fn rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// Either an in-process server (we own the handle and verify the drain
/// report) or an external one reached over `--addr`.
enum Target {
    InProcess(nestwx_serve::ServerHandle),
    External(String),
}

impl Target {
    fn addr(&self) -> String {
        match self {
            Target::InProcess(h) => h.addr().to_string(),
            Target::External(a) => a.clone(),
        }
    }
}

fn connect(target: &Target) -> Result<Client, String> {
    Client::connect(target.addr()).map_err(|e| format!("connect {}: {e}", target.addr()))
}

/// Request lines and canonical responses shared across client threads.
type WarmSet = (Arc<Vec<String>>, Arc<Vec<String>>);

/// Warms the working set into the server's cache and returns the wire
/// lines plus the canonical response per scenario (the byte-identity
/// oracle for every later repetition).
fn warm_canon(addr: &str, scenarios: &[Request]) -> Result<WarmSet, String> {
    let lines: Arc<Vec<String>> = Arc::new(scenarios.iter().map(Request::to_json_line).collect());
    let mut warm = Client::connect(addr).map_err(|e| format!("warmup connect {addr}: {e}"))?;
    let mut canonical: Vec<String> = Vec::with_capacity(scenarios.len());
    for req in scenarios {
        let resp = warm.call(req).map_err(|e| format!("warmup call: {e}"))?;
        if !resp.ok() {
            return Err(format!("warmup request rejected: {}", resp.raw));
        }
        canonical.push(resp.raw);
    }
    Ok((lines, Arc::new(canonical)))
}

/// One timed hot-set pass: `clients` threads round-robin over the warmed
/// working set in pipelined batches, every response verified byte-for-byte
/// against the warmup canon. Returns elapsed wall time, the merged batch
/// latency histogram, and whether every response stayed byte-identical.
fn hot_pass(
    addr: &str,
    lines: &Arc<Vec<String>>,
    canonical: &Arc<Vec<String>>,
    clients: u32,
    requests: u32,
) -> Result<(f64, LogHistogram, bool), String> {
    let started = clock::now();
    let mut handles = Vec::new();
    for t in 0..clients {
        let lines = Arc::clone(lines);
        let canonical = Arc::clone(canonical);
        let addr = addr.to_string();
        let requests = requests as usize;
        handles.push(std::thread::spawn(
            move || -> Result<LogHistogram, String> {
                let mut client =
                    Client::connect(&addr).map_err(|e| format!("client {t} connect: {e}"))?;
                let mut hist = LogHistogram::new();
                let mut sent = 0usize;
                let mut batch: Vec<String> = Vec::with_capacity(PIPELINE_DEPTH);
                while sent < requests {
                    let depth = PIPELINE_DEPTH.min(requests - sent);
                    batch.clear();
                    for j in 0..depth {
                        batch.push(lines[(t as usize + sent + j) % lines.len()].clone());
                    }
                    let t0 = clock::now();
                    let raws = client
                        .call_pipelined(&batch)
                        .map_err(|e| format!("client {t} batch: {e}"))?;
                    hist.record_duration(clock::since(t0));
                    for (j, raw) in raws.iter().enumerate() {
                        let idx = (t as usize + sent + j) % canonical.len();
                        if *raw != canonical[idx] {
                            return Err(format!(
                                "client {t}: response for scenario {idx} not byte-identical\n\
                                 first: {}\n now: {raw}",
                                canonical[idx]
                            ));
                        }
                    }
                    sent += depth;
                }
                Ok(hist)
            },
        ));
    }
    let mut merged = LogHistogram::new();
    let mut byte_identical = true;
    for h in handles {
        match h.join().map_err(|_| "client thread panicked".to_string())? {
            Ok(hist) => merged.merge(&hist),
            Err(e) => {
                eprintln!("bench_serve: {e}");
                byte_identical = false;
            }
        }
    }
    Ok((clock::since(started).as_secs_f64(), merged, byte_identical))
}

/// Measures flight-recorder overhead: paired in-process servers (recorder
/// on vs off), three alternating rounds of a shorter hot-set pass each,
/// best req/s per side. Alternating sides per round keeps machine drift
/// out of the comparison; best-of keeps scheduler noise out.
fn measure_recorder_overhead(clients: u32) -> Result<(f64, f64, f64), String> {
    const ROUNDS: usize = 3;
    let requests = env_u32("NESTWX_TRACE_REQS", 15000).max(1);
    let scenarios = working_set(16);
    let mut best = [0.0f64; 2]; // [on, off]
    for _round in 0..ROUNDS {
        for (slot, recording) in [(0usize, true), (1usize, false)] {
            let mut cfg = ServeConfig::new("127.0.0.1:0");
            cfg.trace = recording;
            let handle = spawn(cfg).map_err(|e| format!("spawn overhead server: {e}"))?;
            let addr = handle.addr().to_string();
            let (lines, canonical) = warm_canon(&addr, &scenarios)?;
            let (elapsed, _, ok) = hot_pass(&addr, &lines, &canonical, clients, requests)?;
            if !ok {
                return Err(format!(
                    "overhead pass (recording={recording}) lost byte identity"
                ));
            }
            let rps = (u64::from(clients) * u64::from(requests)) as f64 / elapsed.max(1e-9);
            best[slot] = best[slot].max(rps);
            let mut ctl = Client::connect(&addr).map_err(|e| format!("overhead ctl: {e}"))?;
            let shut = ctl
                .call(&shutdown_request())
                .map_err(|e| format!("overhead shutdown: {e}"))?;
            if !shut.ok() {
                return Err(format!("overhead shutdown rejected: {}", shut.raw));
            }
            let report = handle.wait();
            if !report.clean() {
                return Err(format!("overhead server unclean drain: {report:?}"));
            }
        }
    }
    let (on, off) = (best[0], best[1]);
    let overhead_pct = ((off - on) / off.max(1e-9) * 100.0).max(0.0);
    println!(
        "recorder:   {on:.0} req/s recording on, {off:.0} req/s off \
         ({overhead_pct:.2}% overhead, best of {ROUNDS} paired rounds x {requests} reqs/client)"
    );
    Ok((on, off, overhead_pct))
}

/// Drains the server's span rings through the `trace` endpoint, validates
/// the envelope, and writes it (plus its Chrome `trace_event` conversion)
/// to `path` / `*.chrome.json`.
fn drain_trace_to(ctl: &mut Client, path: &str) -> Result<(), String> {
    let resp = ctl
        .call(&Request::new(Some("trace".into()), RequestBody::Trace))
        .map_err(|e| format!("trace: {e}"))?;
    if !resp.ok() {
        return Err(format!("trace rejected: {}", resp.raw));
    }
    let envelope = resp
        .result()
        .cloned()
        .ok_or_else(|| "trace response has no result".to_string())?;
    nestwx_obs::serve::check_serve_schema(&envelope)
        .map_err(|e| format!("trace envelope invalid: {e}"))?;
    let json =
        serde_json::to_string(&envelope).map_err(|e| format!("serialize envelope: {e:?}"))?;
    std::fs::write(path, format!("{json}\n")).map_err(|e| format!("write {path}: {e}"))?;
    let chrome = nestwx_obs::serve::serve_chrome_trace(&envelope)
        .map_err(|e| format!("chrome trace: {e}"))?;
    let chrome_path = format!("{}.chrome.json", path.strip_suffix(".json").unwrap_or(path));
    std::fs::write(&chrome_path, format!("{chrome}\n"))
        .map_err(|e| format!("write {chrome_path}: {e}"))?;
    let drained = u64_at(&envelope, &["summary", "drained"]);
    println!("trace:      {drained} spans drained to {path} (+ {chrome_path})");
    Ok(())
}

fn run_bench(args: &Args) -> Result<(ServeBenchOutput, bool), String> {
    banner(
        "SERVE",
        "nestwx-serve plan throughput under a hot working set",
    );
    let target = match &args.addr {
        Some(a) => Target::External(a.clone()),
        None => Target::InProcess(
            spawn(ServeConfig::new("127.0.0.1:0")).map_err(|e| format!("spawn server: {e}"))?,
        ),
    };
    println!(
        "server: {} ({})",
        target.addr(),
        if args.addr.is_some() {
            "external"
        } else {
            "in-process"
        }
    );

    // Warmup: populate the cache (and fit the predictor once) and record
    // the canonical response line per scenario.
    let scenarios = working_set(16);
    let (lines, canonical) = warm_canon(&target.addr(), &scenarios)?;
    println!("warmup: {} scenarios planned and cached", canonical.len());

    // Timed phase: N clients, round-robin over the working set with a
    // per-thread phase offset so threads hit different keys at any
    // instant. Requests go out in pipelined batches and come back in
    // request order, verified byte-for-byte without parsing.
    let (elapsed, merged, byte_identical) = hot_pass(
        &target.addr(),
        &lines,
        &canonical,
        args.clients,
        args.requests,
    )?;
    let requests_total = u64::from(args.clients) * u64::from(args.requests);
    let throughput = if byte_identical {
        requests_total as f64 / elapsed.max(1e-9)
    } else {
        0.0
    };

    // Final stats (+ optional trace drain) + shutdown through the wire
    // protocol.
    let mut ctl = connect(&target)?;
    let stats = ctl
        .call(&stats_request())
        .map_err(|e| format!("stats: {e}"))?;
    let result = stats.result().cloned().unwrap_or(Value::Null);
    if let Some(path) = &args.trace_out {
        drain_trace_to(&mut ctl, path)?;
    }
    let shut = ctl
        .call(&shutdown_request())
        .map_err(|e| format!("shutdown: {e}"))?;
    if !shut.ok() {
        return Err(format!("shutdown rejected: {}", shut.raw));
    }
    if let Target::InProcess(handle) = target {
        let report = handle.wait();
        if !report.clean() {
            return Err(format!("unclean drain: {report:?}"));
        }
        println!(
            "drain: clean ({} requests, {} responses)",
            report.requests_total, report.responses_total
        );
    }

    // Recorder overhead: paired hot-set passes with the flight recorder
    // on vs off. Only measurable in-process — we cannot flip the recorder
    // on an external server.
    let recorder = if args.addr.is_none() {
        Some(measure_recorder_overhead(args.clients)?)
    } else {
        None
    };

    let summary = merged.summary();
    let out = ServeBenchOutput {
        benchmark: "serve".into(),
        mode: if args.addr.is_some() {
            "external"
        } else {
            "in-process"
        }
        .into(),
        clients: args.clients,
        requests_per_client: args.requests,
        pipeline_depth: PIPELINE_DEPTH as u32,
        scenarios: canonical.len() as u32,
        warmup_requests: canonical.len() as u64,
        requests_total,
        elapsed_seconds: elapsed,
        throughput_rps: throughput,
        batch_latency: summary,
        cache_hits: u64_at(&result, &["cache", "hits"]),
        cache_misses: u64_at(&result, &["cache", "misses"]),
        cache_evictions: u64_at(&result, &["cache", "evictions"]),
        cache_hit_rate: f64_at(&result, &["cache", "hit_rate"]),
        protocol_errors: u64_at(&result, &["server", "protocol_errors"]),
        byte_identical,
        hot_rps_recording_on: recorder.map(|(on, _, _)| on),
        hot_rps_recording_off: recorder.map(|(_, off, _)| off),
        recorder_overhead_pct: recorder.map(|(_, _, pct)| pct),
        churn: None,
    };

    println!(
        "throughput: {throughput:.0} plan req/s over {requests_total} requests ({:.2}s, {} clients x {}-deep pipeline)",
        elapsed, args.clients, PIPELINE_DEPTH
    );
    println!(
        "batch rtt:  p50 {:.1}us  p90 {:.1}us  p99 {:.1}us  max {:.1}us  ({} requests/batch)",
        out.batch_latency.p50 * 1e6,
        out.batch_latency.p90 * 1e6,
        out.batch_latency.p99 * 1e6,
        out.batch_latency.max * 1e6,
        PIPELINE_DEPTH
    );
    println!(
        "cache:      {} hits / {} misses ({:.1}% hit rate), {} evictions",
        out.cache_hits,
        out.cache_misses,
        out.cache_hit_rate * 100.0,
        out.cache_evictions
    );

    let ok = byte_identical && out.protocol_errors == 0 && out.cache_hit_rate >= 0.90;
    if !ok {
        eprintln!(
            "bench_serve: FAIL (byte_identical={byte_identical}, protocol_errors={}, hit_rate={:.3})",
            out.protocol_errors, out.cache_hit_rate
        );
    }
    Ok((out, ok))
}

// ---------------------------------------------------------------------------
// Churn mode
// ---------------------------------------------------------------------------

/// Counts `ok`/error responses without parsing (responses are
/// server-composed, so the `"ok":` token position is structural).
fn tally(raws: &[String]) -> (u64, u64) {
    let ok = raws.iter().filter(|r| r.contains("\"ok\":true")).count() as u64;
    (ok, raws.len() as u64 - ok)
}

fn churn_phase(
    label: &str,
    requests: u64,
    ok_responses: u64,
    error_responses: u64,
    elapsed: f64,
) -> ChurnPhase {
    let p = ChurnPhase {
        phase: label.into(),
        requests,
        ok_responses,
        error_responses,
        elapsed_seconds: elapsed,
        throughput_rps: requests as f64 / elapsed.max(1e-9),
        rss_mb: rss_mb(),
    };
    println!(
        "churn/{label}: {requests} requests in {elapsed:.2}s ({:.0} rps, {} ok / {} err, rss {:.1} MiB)",
        p.throughput_rps, ok_responses, error_responses, p.rss_mb
    );
    p
}

/// The churn measurement: bounded tables under identity flood, rate
/// shedding, predictor eviction and deadline expiry — with per-phase RSS
/// so unbounded growth shows up as a gated number, not an OOM kill.
fn run_churn() -> Result<(ChurnOutput, bool), String> {
    banner(
        "SERVE-CHURN",
        "short-lived clients, bounded tables, shedding and deadlines",
    );
    let distinct = u64::from(env_u32("NESTWX_CHURN_CLIENTS", 1_000_000).max(1));
    let hammer_total = u64::from(env_u32("NESTWX_CHURN_HAMMER", 200_000).max(1));
    let cold_total = u64::from(env_u32("NESTWX_CHURN_COLD", 32).clamp(1, 64));

    let mut cfg = ServeConfig::new("127.0.0.1:0");
    cfg.workers = 2;
    cfg.rate = 200;
    cfg.burst = 8;
    cfg.client_cap = 1024;
    cfg.predictors = 4;
    let handle = spawn(cfg).map_err(|e| format!("spawn churn server: {e}"))?;
    let addr = handle.addr().to_string();
    println!("server: {addr} (rate=200/s burst=8 client_cap=1024 predictors=4)");

    // One hot scenario every phase reuses; warming it also fits the
    // predictor so phase timings measure serving, not fitting.
    let base = &working_set(1)[0];
    {
        let mut warm = Client::connect(&addr).map_err(|e| format!("churn warmup: {e}"))?;
        let resp = warm.call(base).map_err(|e| format!("churn warmup: {e}"))?;
        if !resp.ok() {
            return Err(format!("churn warmup rejected: {}", resp.raw));
        }
    }

    let mut phases: Vec<ChurnPhase> = Vec::new();
    let mut all_answered = true;

    // Phase A — identity flood: every request carries a client id the
    // server has never seen, on short-lived connections (a fresh one per
    // wave). The rate-limiter table must stay at its cap while millions of
    // identities stream past, and each fresh identity's first charge must
    // pass (new buckets start full).
    let wave = 1024usize;
    let mut sent = 0u64;
    let (mut ok_a, mut err_a) = (0u64, 0u64);
    let t0 = clock::now();
    let mut batch: Vec<String> = Vec::with_capacity(wave);
    while sent < distinct {
        let n = wave.min((distinct - sent) as usize);
        batch.clear();
        for j in 0..n {
            let mut req = base.clone();
            req.client = Some(format!("cl-{}", sent + j as u64));
            batch.push(req.to_json_line());
        }
        let mut conn = Client::connect(&addr).map_err(|e| format!("churn wave connect: {e}"))?;
        let raws = conn
            .call_pipelined(&batch)
            .map_err(|e| format!("churn wave: {e}"))?;
        let (o, e) = tally(&raws);
        ok_a += o;
        err_a += e;
        sent += n as u64;
    }
    let flood_elapsed = clock::since(t0).as_secs_f64();
    if err_a > 0 {
        eprintln!("churn: FAIL — {err_a} fresh identities were refused (buckets must start full)");
        all_answered = false;
    }
    phases.push(churn_phase("flood", sent, ok_a, err_a, flood_elapsed));
    let flood_rps = phases[0].throughput_rps;

    // Phase A' — predictor churn: more machines than the bounded predictor
    // map holds, so resolutions keep evicting and re-fitting instead of
    // growing the map.
    let machines = [
        "bgl:64", "bgl:128", "bgl:256", "bgp:64", "bgp:128", "bgl:512",
    ];
    let t0 = clock::now();
    let (mut ok_p, mut err_p) = (0u64, 0u64);
    {
        let mut conn = Client::connect(&addr).map_err(|e| format!("churn predict: {e}"))?;
        for (i, m) in machines.iter().enumerate() {
            let req = Request::new(
                Some(format!("pd{i}")),
                RequestBody::Predict(PredictParams {
                    machine: (*m).into(),
                    nests: vec![
                        NestSpec::new(130, 121, 3, (10, 12)),
                        NestSpec::new(96, 90, 3, (180, 170)),
                    ],
                }),
            );
            let resp = conn.call(&req).map_err(|e| format!("churn predict: {e}"))?;
            if resp.ok() {
                ok_p += 1;
            } else {
                err_p += 1;
            }
        }
    }
    phases.push(churn_phase(
        "predictors",
        machines.len() as u64,
        ok_p,
        err_p,
        clock::since(t0).as_secs_f64(),
    ));
    if err_p > 0 {
        eprintln!("churn: FAIL — {err_p} predict requests rejected during predictor churn");
        all_answered = false;
    }

    // Phase B — hammer: four persistent identities pound the hot scenario
    // far past their refill rate; almost everything must come back as a
    // typed `rate_limited` error, at full event-loop speed.
    let t0 = clock::now();
    let (mut ok_b, mut err_b) = (0u64, 0u64);
    {
        let mut conn = Client::connect(&addr).map_err(|e| format!("churn hammer: {e}"))?;
        let hammer_lines: Vec<String> = (0..4)
            .map(|i| {
                let mut req = base.clone();
                req.client = Some(format!("hammer-{i}"));
                req.to_json_line()
            })
            .collect();
        let mut sent = 0u64;
        while sent < hammer_total {
            let n = wave.min((hammer_total - sent) as usize);
            batch.clear();
            for j in 0..n {
                batch.push(hammer_lines[(sent as usize + j) % hammer_lines.len()].clone());
            }
            let raws = conn
                .call_pipelined(&batch)
                .map_err(|e| format!("churn hammer: {e}"))?;
            let (o, e) = tally(&raws);
            ok_b += o;
            err_b += e;
            sent += n as u64;
        }
    }
    phases.push(churn_phase(
        "hammer",
        hammer_total,
        ok_b,
        err_b,
        clock::since(t0).as_secs_f64(),
    ));
    if err_b == 0 {
        eprintln!("churn: FAIL — hammer phase was never rate-limited");
        all_answered = false;
    }

    // Phase C — cold work under a 1 ms deadline: distinct (uncached)
    // compare scenarios that the two workers cannot possibly clear in
    // time. The deadline sweep must answer the backlog with typed
    // `deadline_exceeded` errors instead of making clients wait.
    let t0 = clock::now();
    let (ok_c, err_c);
    {
        let mut conn = Client::connect(&addr).map_err(|e| format!("churn cold: {e}"))?;
        batch.clear();
        for i in 0..cold_total {
            let mut req = Request::new(
                Some(format!("cold{i}")),
                RequestBody::Compare {
                    params: ScenarioParams {
                        machine: "bgl:64".into(),
                        parent: pacific_parent(),
                        nests: vec![
                            NestSpec::new(100 + i as u32, 90 + i as u32, 3, (10, 12)),
                            NestSpec::new(96, 90, 3, (180, 170)),
                        ],
                        strategy: Strategy::Concurrent,
                        alloc: AllocPolicy::HuffmanSplitTree,
                        mapping: MappingKind::Partition,
                        io: None,
                    },
                    iterations: 3,
                },
            );
            req.deadline_ms = Some(1);
            batch.push(req.to_json_line());
        }
        let raws = conn
            .call_pipelined(&batch)
            .map_err(|e| format!("churn cold: {e}"))?;
        (ok_c, err_c) = tally(&raws);
    }
    phases.push(churn_phase(
        "cold-deadline",
        cold_total,
        ok_c,
        err_c,
        clock::since(t0).as_secs_f64(),
    ));
    if err_c == 0 {
        eprintln!("churn: FAIL — no cold request expired under a 1 ms deadline");
        all_answered = false;
    }

    // Bounded-table and shed/expiry accounting, straight from the server.
    let mut ctl = Client::connect(&addr).map_err(|e| format!("churn stats: {e}"))?;
    let stats = ctl
        .call(&stats_request())
        .map_err(|e| format!("churn stats: {e}"))?;
    let result = stats.result().cloned().unwrap_or(Value::Null);
    let clients_tracked = u64_at(&result, &["limits", "clients_tracked"]);
    let rate_evictions = u64_at(&result, &["limits", "rate_evictions"]);
    let predictor_evictions = u64_at(&result, &["limits", "predictor_evictions"]);
    let rate_shed = u64_at(&result, &["limits", "rate_shed"]);
    let deadline_expired = u64_at(&result, &["limits", "deadline_expired"]);
    if clients_tracked > 1024 {
        eprintln!("churn: FAIL — client table exceeded its cap ({clients_tracked} > 1024)");
        all_answered = false;
    }

    let shut = ctl
        .call(&shutdown_request())
        .map_err(|e| format!("churn shutdown: {e}"))?;
    if !shut.ok() {
        return Err(format!("churn shutdown rejected: {}", shut.raw));
    }
    let report = handle.wait();
    let drain_clean = report.clean();
    if !drain_clean {
        eprintln!("churn: FAIL — unclean drain under shedding: {report:?}");
        all_answered = false;
    } else {
        println!(
            "drain: clean ({} requests, {} responses, {} expired, {} shed)",
            report.requests_total,
            report.responses_total,
            report.deadline_expired,
            report.rate_shed
        );
    }

    let max_rss = phases.iter().map(|p| p.rss_mb).fold(0.0f64, f64::max);
    println!(
        "limits: {clients_tracked} clients tracked, {rate_evictions} bucket evictions, \
         {predictor_evictions} predictor evictions, {rate_shed} shed, {deadline_expired} expired"
    );
    println!("rss: peak {max_rss:.1} MiB across phases");
    let out = ChurnOutput {
        distinct_clients: distinct,
        phases,
        throughput_rps: flood_rps,
        max_rss_mb: max_rss,
        rate_shed,
        deadline_expired,
        rate_evictions,
        predictor_evictions,
        clients_tracked,
        drain_clean,
    };
    Ok((out, all_answered))
}

// ---------------------------------------------------------------------------
// Sweep mode
// ---------------------------------------------------------------------------

/// What `--sweep` writes to `BENCH_sweep.json`. `perf_gate --sweep` reads
/// `scenarios_per_sec`, `dedup_ratio`, `warm_speedup`, `warm_hit_rate`,
/// `byte_identical` and `errors` back out of this.
#[derive(Debug, Serialize)]
struct SweepBenchOutput {
    benchmark: String,
    expanded: u64,
    unique: u64,
    dedup_ratio: f64,
    iterations: u32,
    cold_jobs: u64,
    warm_jobs: u64,
    cold_elapsed_seconds: f64,
    warm_elapsed_seconds: f64,
    /// Cold-sweep planning throughput — the gated figure.
    scenarios_per_sec: f64,
    /// Cold elapsed over warm elapsed; a warm sweep skips planning and
    /// simulation entirely, so this must stay above 1.
    warm_speedup: f64,
    /// Disk hits over unique scenarios on the warm run (must be 1.0).
    warm_hit_rate: f64,
    warm_recomputed: u64,
    errors: u64,
    /// Digests equal across runs and job counts, and serve `plan`
    /// responses from the swept cache byte-identical to fresh planning.
    byte_identical: bool,
    plans_digest: String,
}

/// The fixed sweep-bench spec: 96 cartesian combinations collapsing to 64
/// unique scenarios (the repeated `partition` mapping dedups away), cheap
/// enough to plan cold in CI. Mirrors the `examples/sweep_smoke.json`
/// shape so the smoke job and the perf gate exercise the same spec
/// grammar.
const SWEEP_SPEC: &str = r#"{
    "machines": ["bgl:64", "bgl:128"],
    "parents": ["286x307@24"],
    "nests": {
        "counts": [1, 2],
        "size": {"start": 96, "step": 12, "n": 2},
        "refine": 3,
        "positions": [[10, 12], [120, 120]]
    },
    "strategies": ["sequential", "concurrent"],
    "allocs": ["huffman", "naive"],
    "mappings": ["partition", "multilevel", "partition"],
    "iterations": 2
}"#;

/// A `plan` request for one scenario the sweep is known to cover: the
/// two-nest 96² set on bgl:64 from `SWEEP_SPEC`'s generator block. The
/// warmed server must answer it straight from the swept disk cache.
fn sweep_plan_request(id: &str, strategy: Strategy, alloc: AllocPolicy) -> Request {
    Request::new(
        Some(id.into()),
        RequestBody::Plan(ScenarioParams {
            machine: "bgl:64".into(),
            parent: pacific_parent(),
            nests: vec![
                NestSpec::new(96, 96, 3, (10, 12)),
                NestSpec::new(96, 96, 3, (120, 120)),
            ],
            strategy,
            alloc,
            mapping: MappingKind::Partition,
            io: None,
        }),
    )
}

/// The sweep measurement: cold sweep into a throwaway disk cache, warm
/// replay under a different job count, and a serve pre-heat byte-identity
/// check against a cache-less server.
fn run_sweep_bench() -> Result<(SweepBenchOutput, bool), String> {
    banner(
        "SWEEP",
        "scenario-space sweep: cold planning, warm disk replay, serve pre-heat",
    );
    let spec = SweepSpec::parse(SWEEP_SPEC).map_err(|e| format!("built-in spec: {e}"))?;
    // The cold sweep is a ~100 ms timing loop — far too short for a single
    // sample on a shared machine. Both phases report best-of-ROUNDS wall
    // time; every round still has its invariants checked, and the cold
    // rounds double as a digest-invariance check across fresh caches.
    const ROUNDS: usize = 5;
    let mut ok = true;

    let mut cold: Option<nestwx_sweep::SweepReport> = None;
    let mut cold_elapsed = f64::INFINITY;
    let mut cache = TempDir::new("bench-sweep").map_err(|e| format!("tempdir: {e}"))?;
    for round in 0..ROUNDS {
        if round > 0 {
            cache = TempDir::new("bench-sweep").map_err(|e| format!("tempdir: {e}"))?;
        }
        let opts = SweepOptions {
            cache_dir: Some(cache.path().to_path_buf()),
            iterations: None,
            jobs: Some(4),
        };
        let report = run_sweep(&spec, &opts).map_err(|e| format!("cold sweep: {e}"))?;
        println!(
            "cold[{round}]: {} unique of {} expanded in {:.3}s ({:.0} scenarios/s, {} jobs)",
            report.unique,
            report.expanded,
            report.elapsed_seconds,
            report.unique as f64 / report.elapsed_seconds.max(1e-9),
            report.jobs
        );
        if report.errors != 0 {
            eprintln!(
                "sweep: FAIL — {} scenarios errored on the cold run",
                report.errors
            );
            ok = false;
        }
        if report.disk_hits != 0 {
            eprintln!(
                "sweep: FAIL — cold run hit disk {} times in a fresh cache",
                report.disk_hits
            );
            ok = false;
        }
        if let Some(prev) = &cold {
            if prev.plans_digest != report.plans_digest {
                eprintln!(
                    "sweep: FAIL — plans digest drifted across fresh cold runs ({} vs {})",
                    prev.plans_digest, report.plans_digest
                );
                ok = false;
            }
        }
        cold_elapsed = cold_elapsed.min(report.elapsed_seconds);
        cold = Some(report);
    }
    let cold = cold.expect("ROUNDS >= 1");

    // `cache` now holds the last cold round's fully-populated cache (all
    // rounds produced identical bytes); every warm round must replay it
    // without planning anything.
    let warm_opts = SweepOptions {
        cache_dir: Some(cache.path().to_path_buf()),
        iterations: None,
        jobs: Some(2),
    };
    let mut warm: Option<nestwx_sweep::SweepReport> = None;
    let mut warm_elapsed = f64::INFINITY;
    let mut byte_identical = true;
    for round in 0..ROUNDS {
        let report = run_sweep(&spec, &warm_opts).map_err(|e| format!("warm sweep: {e}"))?;
        println!(
            "warm[{round}]: {} disk hits, {} recomputed in {:.3}s ({} jobs)",
            report.disk_hits, report.computed, report.elapsed_seconds, report.jobs
        );
        if report.plans_digest != cold.plans_digest {
            eprintln!(
                "sweep: FAIL — plans digest changed across runs/job counts ({} vs {})",
                cold.plans_digest, report.plans_digest
            );
            byte_identical = false;
        }
        if report.computed != 0 {
            eprintln!(
                "sweep: FAIL — warm run recomputed {} scenarios",
                report.computed
            );
            ok = false;
        }
        warm_elapsed = warm_elapsed.min(report.elapsed_seconds);
        warm = Some(report);
    }
    let warm = warm.expect("ROUNDS >= 1");

    // Serve pre-heat: a server on the swept cache dir vs. one planning
    // from scratch must produce byte-identical plan responses.
    let mut warm_cfg = ServeConfig::new("127.0.0.1:0");
    warm_cfg.cache_dir = Some(cache.path().to_path_buf());
    let warm_handle = spawn(warm_cfg).map_err(|e| format!("spawn warmed server: {e}"))?;
    let fresh_handle =
        spawn(ServeConfig::new("127.0.0.1:0")).map_err(|e| format!("spawn fresh server: {e}"))?;
    let mut warm_client =
        Client::connect(warm_handle.addr()).map_err(|e| format!("connect warmed: {e}"))?;
    let mut fresh_client =
        Client::connect(fresh_handle.addr()).map_err(|e| format!("connect fresh: {e}"))?;
    let combos = [
        (Strategy::Concurrent, AllocPolicy::HuffmanSplitTree),
        (Strategy::Sequential, AllocPolicy::NaiveProportional),
        (Strategy::Concurrent, AllocPolicy::NaiveProportional),
    ];
    for (i, &(strategy, alloc)) in combos.iter().enumerate() {
        let req = sweep_plan_request(&format!("sw{i}"), strategy, alloc);
        let from_disk = warm_client
            .call(&req)
            .map_err(|e| format!("warmed plan: {e}"))?;
        let from_scratch = fresh_client
            .call(&req)
            .map_err(|e| format!("fresh plan: {e}"))?;
        if !from_disk.ok() {
            return Err(format!("warmed server rejected plan: {}", from_disk.raw));
        }
        if from_disk.raw != from_scratch.raw {
            eprintln!("sweep: FAIL — pre-heated plan response {i} differs from fresh bytes");
            byte_identical = false;
        }
    }
    let stats = warm_client
        .call(&stats_request())
        .map_err(|e| format!("warmed stats: {e}"))?;
    let result = stats.result().cloned().unwrap_or(Value::Null);
    let disk_hits = u64_at(&result, &["disk", "hits"]);
    let disk_writes = u64_at(&result, &["disk", "writes"]);
    if disk_hits != combos.len() as u64 || disk_writes != 0 {
        eprintln!(
            "sweep: FAIL — warmed server should serve purely from disk \
             (hits={disk_hits}, writes={disk_writes})"
        );
        ok = false;
    }
    println!(
        "pre-heat: {} plan requests answered from disk, byte-identical: {byte_identical}",
        combos.len()
    );
    for (label, handle, client) in [
        ("warmed", warm_handle, &mut warm_client),
        ("fresh", fresh_handle, &mut fresh_client),
    ] {
        let shut = client
            .call(&shutdown_request())
            .map_err(|e| format!("{label} shutdown: {e}"))?;
        if !shut.ok() {
            return Err(format!("{label} shutdown rejected: {}", shut.raw));
        }
        let report = handle.wait();
        if !report.clean() {
            return Err(format!("{label} server unclean drain: {report:?}"));
        }
    }

    let warm_hit_rate = if warm.unique == 0 {
        0.0
    } else {
        warm.disk_hits as f64 / warm.unique as f64
    };
    if warm_hit_rate < 1.0 {
        eprintln!(
            "sweep: FAIL — warm hit rate {:.3} (every deduped scenario must hit disk)",
            warm_hit_rate
        );
        ok = false;
    }
    let out = SweepBenchOutput {
        benchmark: "sweep".into(),
        expanded: cold.expanded as u64,
        unique: cold.unique as u64,
        dedup_ratio: cold.expanded as f64 / cold.unique.max(1) as f64,
        iterations: spec.iterations,
        cold_jobs: cold.jobs as u64,
        warm_jobs: warm.jobs as u64,
        cold_elapsed_seconds: cold_elapsed,
        warm_elapsed_seconds: warm_elapsed,
        scenarios_per_sec: cold.unique as f64 / cold_elapsed.max(1e-9),
        warm_speedup: cold_elapsed / warm_elapsed.max(1e-9),
        warm_hit_rate,
        warm_recomputed: warm.computed as u64,
        errors: (cold.errors + warm.errors) as u64,
        byte_identical,
        plans_digest: cold.plans_digest.clone(),
    };
    println!(
        "sweep: {:.0} scenarios/s cold, {:.1}x warm speedup, dedup {:.2}, digest {}",
        out.scenarios_per_sec, out.warm_speedup, out.dedup_ratio, out.plans_digest
    );
    Ok((out, ok && byte_identical))
}

/// The CI smoke workload: a short mixed predict/plan session that must
/// produce zero protocol errors, a non-zero cache hit rate, byte-identical
/// repeats, working predict micro-batching, and a clean shutdown.
fn run_smoke(args: &Args) -> Result<bool, String> {
    banner(
        "SERVE-SMOKE",
        "mixed predict/plan workload against a live server",
    );
    let target = match &args.addr {
        Some(a) => Target::External(a.clone()),
        None => Target::InProcess(
            spawn(ServeConfig::new("127.0.0.1:0")).map_err(|e| format!("spawn server: {e}"))?,
        ),
    };
    println!("server: {}", target.addr());

    let scenarios = working_set(6);
    let mut client = connect(&target)?;

    // Two passes over the working set: the second must be all cache hits
    // and byte-identical to the first.
    let mut first: Vec<String> = Vec::new();
    for req in &scenarios {
        let resp = client.call(req).map_err(|e| format!("plan: {e}"))?;
        if !resp.ok() {
            return Err(format!("plan rejected: {}", resp.raw));
        }
        first.push(resp.raw);
    }
    for (i, req) in scenarios.iter().enumerate() {
        let resp = client
            .call(req)
            .map_err(|e| format!("plan (repeat): {e}"))?;
        if resp.raw != first[i] {
            return Err(format!(
                "cached response not byte-identical for scenario {i}"
            ));
        }
    }
    println!(
        "plan: {} scenarios, repeats byte-identical",
        scenarios.len()
    );

    // A concurrent predict burst sharing one machine — exercises the
    // micro-batcher.
    let addr = target.addr();
    let burst: Vec<_> = (0..4)
        .map(|b| {
            let addr = addr.clone();
            std::thread::spawn(move || -> Result<(), String> {
                let mut c = Client::connect(&addr).map_err(|e| format!("burst {b}: {e}"))?;
                let req = Request::new(
                    Some(format!("p{b}")),
                    RequestBody::Predict(PredictParams {
                        machine: "bgl:64".into(),
                        nests: vec![
                            NestSpec::new(130, 121, 3, (10, 12)),
                            NestSpec::new(96, 90, 3, (180, 170)),
                        ],
                    }),
                );
                for _ in 0..8 {
                    let resp = c.call(&req).map_err(|e| format!("burst {b} call: {e}"))?;
                    if !resp.ok() {
                        return Err(format!("burst {b} predict rejected: {}", resp.raw));
                    }
                }
                Ok(())
            })
        })
        .collect();
    for h in burst {
        h.join()
            .map_err(|_| "predict burst thread panicked".to_string())??;
    }
    println!("predict: 4-client burst completed");

    // A compare round-trip.
    let compare = Request::new(
        Some("cmp".into()),
        RequestBody::Compare {
            params: match &scenarios[0].body {
                RequestBody::Plan(p) => p.clone(),
                _ => unreachable!(),
            },
            iterations: 2,
        },
    );
    let resp = client.call(&compare).map_err(|e| format!("compare: {e}"))?;
    if !resp.ok() {
        return Err(format!("compare rejected: {}", resp.raw));
    }
    println!("compare: ok");

    // Stats must show zero protocol errors, hits, and at least one batch.
    let stats = client
        .call(&stats_request())
        .map_err(|e| format!("stats: {e}"))?;
    let result = stats.result().cloned().unwrap_or(Value::Null);
    let protocol_errors = u64_at(&result, &["server", "protocol_errors"]);
    let hit_rate = f64_at(&result, &["cache", "hit_rate"]);
    let hits = u64_at(&result, &["cache", "hits"]);
    let batches = u64_at(&result, &["batch", "batches"]);
    println!(
        "stats: protocol_errors={protocol_errors} cache_hits={hits} hit_rate={:.3} batches={batches}",
        hit_rate
    );
    let mut ok = true;
    if protocol_errors != 0 {
        eprintln!("smoke: FAIL — server counted {protocol_errors} protocol errors");
        ok = false;
    }
    if hits == 0 || hit_rate <= 0.0 {
        eprintln!("smoke: FAIL — no cache hits on a repeated working set");
        ok = false;
    }
    if batches == 0 {
        eprintln!("smoke: FAIL — predict burst produced no batches");
        ok = false;
    }

    // Graceful shutdown: the server acknowledges, drains, and (for the CI
    // job) its process exits 0 — checked by the workflow, not here.
    let shut = client
        .call(&shutdown_request())
        .map_err(|e| format!("shutdown: {e}"))?;
    if !shut.ok() {
        return Err(format!("shutdown rejected: {}", shut.raw));
    }
    if let Target::InProcess(handle) = target {
        let report = handle.wait();
        if !report.clean() {
            return Err(format!("unclean drain: {report:?}"));
        }
        println!("drain: clean");
    }
    if ok {
        println!("SERVE-SMOKE: PASS");
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_serve: {e}");
            eprintln!(
                "usage: bench_serve [--smoke] [--churn] [--sweep] [--addr HOST:PORT] [--clients N] [--requests N] [--out PATH] [--trace-out PATH]"
            );
            return ExitCode::FAILURE;
        }
    };
    if args.smoke {
        return match run_smoke(&args) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("bench_serve: error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let out_path = args.out_path();
    if args.sweep {
        let run = run_sweep_bench().and_then(|(out, ok)| {
            let json = serde_json::to_string(&out).map_err(|e| format!("serialize: {e:?}"))?;
            std::fs::write(&out_path, format!("{json}\n"))
                .map_err(|e| format!("write {out_path}: {e}"))?;
            println!("wrote {out_path}");
            Ok(ok)
        });
        return match run {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("bench_serve: error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let run = run_bench(&args).and_then(|(mut out, mut ok)| {
        if args.churn {
            let (churn, churn_ok) = run_churn()?;
            out.churn = Some(churn);
            ok = ok && churn_ok;
        }
        let json = serde_json::to_string(&out).map_err(|e| format!("serialize: {e:?}"))?;
        std::fs::write(&out_path, format!("{json}\n"))
            .map_err(|e| format!("write {out_path}: {e}"))?;
        println!("wrote {out_path}");
        Ok(ok)
    });
    match run {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_serve: error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Load generator for `nestwx-serve` (the concurrent planning service).
//!
//! Usage:
//!
//! ```text
//! bench_serve [--smoke] [--addr HOST:PORT] [--clients N] [--requests N] [--out PATH]
//! ```
//!
//! Default (bench) mode spawns an in-process server on an ephemeral port,
//! warms a 16-scenario working set, then hammers it from N client threads
//! issuing `plan` requests round-robin. Reports throughput and client-side
//! latency percentiles (p50/p90/p99 via `nestwx-obs` log histograms) into
//! `BENCH_serve.json`, together with the server's cache statistics, and
//! verifies that every repeated response is **byte-identical** to the first
//! one for that scenario.
//!
//! `--smoke` runs a short mixed predict/plan workload instead — the CI
//! smoke job points it at an external `nestwx serve` process via `--addr`,
//! asserts zero protocol errors and a non-zero cache hit rate, then issues
//! `shutdown` so CI can check the server drains and exits 0.
//!
//! Knobs (flags win over env): `NESTWX_SERVE_CLIENTS` (default 4),
//! `NESTWX_SERVE_REQS` (requests per client, default 1500).

use nestwx_bench::{banner, env_u32, pacific_parent};
use nestwx_core::{AllocPolicy, MappingKind, Strategy};
use nestwx_grid::NestSpec;
use nestwx_obs::clock;
use nestwx_obs::LogHistogram;
use nestwx_serve::{
    spawn, Client, PredictParams, Request, RequestBody, ScenarioParams, ServeConfig,
};
use serde::Serialize;
use serde_json::Value;
use std::process::ExitCode;
use std::sync::Arc;

/// What one run writes to `BENCH_serve.json`. `perf_gate --serve` reads
/// `throughput_rps`, `cache_hit_rate`, `byte_identical` and
/// `protocol_errors` back out of this.
#[derive(Debug, Serialize)]
struct ServeBenchOutput {
    benchmark: String,
    mode: String,
    clients: u32,
    requests_per_client: u32,
    scenarios: u32,
    warmup_requests: u64,
    requests_total: u64,
    elapsed_seconds: f64,
    throughput_rps: f64,
    latency: nestwx_obs::HistSummary,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    cache_hit_rate: f64,
    protocol_errors: u64,
    byte_identical: bool,
}

#[derive(Debug)]
struct Args {
    smoke: bool,
    addr: Option<String>,
    clients: u32,
    requests: u32,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        addr: None,
        clients: env_u32("NESTWX_SERVE_CLIENTS", 4).max(1),
        requests: env_u32("NESTWX_SERVE_REQS", 1500).max(1),
        out: "BENCH_serve.json".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("{} requires a value", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--addr" => args.addr = Some(take(&mut i)?),
            "--clients" => {
                args.clients = take(&mut i)?
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("--clients expects a positive integer")?
            }
            "--requests" => {
                args.requests = take(&mut i)?
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("--requests expects a positive integer")?
            }
            "--out" => args.out = take(&mut i)?,
            other => return Err(format!("unknown argument {other}")),
        }
        i += 1;
    }
    Ok(args)
}

/// The working set: `n` distinct two-nest scenarios on one 64-rank BG/L
/// midplane slice. All share the machine (one predictor fit serves all),
/// but differ in nest sizes and mapping so each has its own cache entry.
fn working_set(n: usize) -> Vec<Request> {
    let mappings = MappingKind::ALL;
    (0..n)
        .map(|i| {
            let params = ScenarioParams {
                machine: "bgl:64".into(),
                parent: pacific_parent(),
                nests: vec![
                    NestSpec::new(
                        120 + 9 * (i as u32 % 4),
                        111 + 6 * (i as u32 / 4),
                        3,
                        (10 + i as u32, 12),
                    ),
                    NestSpec::new(96, 90, 3, (180, 170)),
                ],
                strategy: Strategy::Concurrent,
                alloc: AllocPolicy::HuffmanSplitTree,
                mapping: mappings[i % mappings.len()],
                io: None,
            };
            Request {
                // One id per *scenario*, shared by every repetition, so the
                // whole response line (not just `result`) must be
                // byte-identical on a cache hit.
                id: Some(format!("s{i}")),
                body: RequestBody::Plan(params),
            }
        })
        .collect()
}

fn stats_request() -> Request {
    Request {
        id: Some("stats".into()),
        body: RequestBody::Stats,
    }
}

fn shutdown_request() -> Request {
    Request {
        id: Some("bye".into()),
        body: RequestBody::Shutdown,
    }
}

fn u64_at(v: &Value, path: &[&str]) -> u64 {
    let mut cur = v;
    for key in path {
        match cur.get(key) {
            Some(next) => cur = next,
            None => return 0,
        }
    }
    cur.as_u64()
        .or_else(|| cur.as_f64().map(|f| f as u64))
        .unwrap_or(0)
}

fn f64_at(v: &Value, path: &[&str]) -> f64 {
    let mut cur = v;
    for key in path {
        match cur.get(key) {
            Some(next) => cur = next,
            None => return 0.0,
        }
    }
    cur.as_f64().unwrap_or(0.0)
}

/// Either an in-process server (we own the handle and verify the drain
/// report) or an external one reached over `--addr`.
enum Target {
    InProcess(nestwx_serve::ServerHandle),
    External(String),
}

impl Target {
    fn addr(&self) -> String {
        match self {
            Target::InProcess(h) => h.addr().to_string(),
            Target::External(a) => a.clone(),
        }
    }
}

fn connect(target: &Target) -> Result<Client, String> {
    Client::connect(target.addr()).map_err(|e| format!("connect {}: {e}", target.addr()))
}

fn run_bench(args: &Args) -> Result<bool, String> {
    banner(
        "SERVE",
        "nestwx-serve plan throughput under a hot working set",
    );
    let target = match &args.addr {
        Some(a) => Target::External(a.clone()),
        None => Target::InProcess(
            spawn(ServeConfig::new("127.0.0.1:0")).map_err(|e| format!("spawn server: {e}"))?,
        ),
    };
    println!(
        "server: {} ({})",
        target.addr(),
        if args.addr.is_some() {
            "external"
        } else {
            "in-process"
        }
    );

    let scenarios = working_set(16);

    // Warmup: populate the cache (and fit the predictor once) and record
    // the canonical response line per scenario.
    let mut warm = connect(&target)?;
    let mut canonical: Vec<String> = Vec::with_capacity(scenarios.len());
    for req in &scenarios {
        let resp = warm.call(req).map_err(|e| format!("warmup call: {e}"))?;
        if !resp.ok() {
            return Err(format!("warmup request rejected: {}", resp.raw));
        }
        canonical.push(resp.raw);
    }
    let canonical = Arc::new(canonical);
    let scenarios = Arc::new(scenarios);
    println!("warmup: {} scenarios planned and cached", canonical.len());

    // Timed phase: N clients, round-robin over the working set with a
    // per-thread phase offset so threads hit different keys at any instant.
    let started = clock::now();
    let mut handles = Vec::new();
    for t in 0..args.clients {
        let scenarios = Arc::clone(&scenarios);
        let canonical = Arc::clone(&canonical);
        let addr = target.addr();
        let requests = args.requests;
        handles.push(std::thread::spawn(
            move || -> Result<LogHistogram, String> {
                let mut client =
                    Client::connect(&addr).map_err(|e| format!("client {t} connect: {e}"))?;
                let mut hist = LogHistogram::new();
                for k in 0..requests {
                    let idx = (t as usize + k as usize) % scenarios.len();
                    let t0 = clock::now();
                    let resp = client
                        .call(&scenarios[idx])
                        .map_err(|e| format!("client {t} call: {e}"))?;
                    hist.record_duration(t0.elapsed());
                    if !resp.ok() {
                        return Err(format!("client {t} got error: {}", resp.raw));
                    }
                    if resp.raw != canonical[idx] {
                        return Err(format!(
                            "client {t}: response for scenario {idx} not byte-identical\n\
                         first: {}\n now: {}",
                            canonical[idx], resp.raw
                        ));
                    }
                }
                Ok(hist)
            },
        ));
    }
    let mut merged = LogHistogram::new();
    let mut byte_identical = true;
    for h in handles {
        match h.join().map_err(|_| "client thread panicked".to_string())? {
            Ok(hist) => merged.merge(&hist),
            Err(e) => {
                eprintln!("bench_serve: {e}");
                byte_identical = false;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let requests_total = merged.summary().count;
    let throughput = requests_total as f64 / elapsed.max(1e-9);

    // Final stats + shutdown through the wire protocol.
    let mut ctl = connect(&target)?;
    let stats = ctl
        .call(&stats_request())
        .map_err(|e| format!("stats: {e}"))?;
    let result = stats.result().cloned().unwrap_or(Value::Null);
    let shut = ctl
        .call(&shutdown_request())
        .map_err(|e| format!("shutdown: {e}"))?;
    if !shut.ok() {
        return Err(format!("shutdown rejected: {}", shut.raw));
    }
    if let Target::InProcess(handle) = target {
        let report = handle.wait();
        if !report.clean() {
            return Err(format!("unclean drain: {report:?}"));
        }
        println!(
            "drain: clean ({} requests, {} responses)",
            report.requests_total, report.responses_total
        );
    }

    let summary = merged.summary();
    let out = ServeBenchOutput {
        benchmark: "serve".into(),
        mode: if args.addr.is_some() {
            "external"
        } else {
            "in-process"
        }
        .into(),
        clients: args.clients,
        requests_per_client: args.requests,
        scenarios: canonical.len() as u32,
        warmup_requests: canonical.len() as u64,
        requests_total,
        elapsed_seconds: elapsed,
        throughput_rps: throughput,
        latency: summary,
        cache_hits: u64_at(&result, &["cache", "hits"]),
        cache_misses: u64_at(&result, &["cache", "misses"]),
        cache_evictions: u64_at(&result, &["cache", "evictions"]),
        cache_hit_rate: f64_at(&result, &["cache", "hit_rate"]),
        protocol_errors: u64_at(&result, &["server", "protocol_errors"]),
        byte_identical,
    };
    let json = serde_json::to_string(&out).map_err(|e| format!("serialize: {e:?}"))?;
    std::fs::write(&args.out, format!("{json}\n"))
        .map_err(|e| format!("write {}: {e}", args.out))?;

    println!(
        "throughput: {throughput:.0} plan req/s over {requests_total} requests ({:.2}s, {} clients)",
        elapsed, args.clients
    );
    println!(
        "latency:    p50 {:.1}us  p90 {:.1}us  p99 {:.1}us  max {:.1}us",
        out.latency.p50 * 1e6,
        out.latency.p90 * 1e6,
        out.latency.p99 * 1e6,
        out.latency.max * 1e6
    );
    println!(
        "cache:      {} hits / {} misses ({:.1}% hit rate), {} evictions",
        out.cache_hits,
        out.cache_misses,
        out.cache_hit_rate * 100.0,
        out.cache_evictions
    );
    println!("wrote {}", args.out);

    let ok = byte_identical && out.protocol_errors == 0 && out.cache_hit_rate >= 0.90;
    if !ok {
        eprintln!(
            "bench_serve: FAIL (byte_identical={byte_identical}, protocol_errors={}, hit_rate={:.3})",
            out.protocol_errors, out.cache_hit_rate
        );
    }
    Ok(ok)
}

/// The CI smoke workload: a short mixed predict/plan session that must
/// produce zero protocol errors, a non-zero cache hit rate, byte-identical
/// repeats, working predict micro-batching, and a clean shutdown.
fn run_smoke(args: &Args) -> Result<bool, String> {
    banner(
        "SERVE-SMOKE",
        "mixed predict/plan workload against a live server",
    );
    let target = match &args.addr {
        Some(a) => Target::External(a.clone()),
        None => Target::InProcess(
            spawn(ServeConfig::new("127.0.0.1:0")).map_err(|e| format!("spawn server: {e}"))?,
        ),
    };
    println!("server: {}", target.addr());

    let scenarios = working_set(6);
    let mut client = connect(&target)?;

    // Two passes over the working set: the second must be all cache hits
    // and byte-identical to the first.
    let mut first: Vec<String> = Vec::new();
    for req in &scenarios {
        let resp = client.call(req).map_err(|e| format!("plan: {e}"))?;
        if !resp.ok() {
            return Err(format!("plan rejected: {}", resp.raw));
        }
        first.push(resp.raw);
    }
    for (i, req) in scenarios.iter().enumerate() {
        let resp = client
            .call(req)
            .map_err(|e| format!("plan (repeat): {e}"))?;
        if resp.raw != first[i] {
            return Err(format!(
                "cached response not byte-identical for scenario {i}"
            ));
        }
    }
    println!(
        "plan: {} scenarios, repeats byte-identical",
        scenarios.len()
    );

    // A concurrent predict burst sharing one machine — exercises the
    // micro-batcher.
    let addr = target.addr();
    let burst: Vec<_> = (0..4)
        .map(|b| {
            let addr = addr.clone();
            std::thread::spawn(move || -> Result<(), String> {
                let mut c = Client::connect(&addr).map_err(|e| format!("burst {b}: {e}"))?;
                let req = Request {
                    id: Some(format!("p{b}")),
                    body: RequestBody::Predict(PredictParams {
                        machine: "bgl:64".into(),
                        nests: vec![
                            NestSpec::new(130, 121, 3, (10, 12)),
                            NestSpec::new(96, 90, 3, (180, 170)),
                        ],
                    }),
                };
                for _ in 0..8 {
                    let resp = c.call(&req).map_err(|e| format!("burst {b} call: {e}"))?;
                    if !resp.ok() {
                        return Err(format!("burst {b} predict rejected: {}", resp.raw));
                    }
                }
                Ok(())
            })
        })
        .collect();
    for h in burst {
        h.join()
            .map_err(|_| "predict burst thread panicked".to_string())??;
    }
    println!("predict: 4-client burst completed");

    // A compare round-trip.
    let compare = Request {
        id: Some("cmp".into()),
        body: RequestBody::Compare {
            params: match &scenarios[0].body {
                RequestBody::Plan(p) => p.clone(),
                _ => unreachable!(),
            },
            iterations: 2,
        },
    };
    let resp = client.call(&compare).map_err(|e| format!("compare: {e}"))?;
    if !resp.ok() {
        return Err(format!("compare rejected: {}", resp.raw));
    }
    println!("compare: ok");

    // Stats must show zero protocol errors, hits, and at least one batch.
    let stats = client
        .call(&stats_request())
        .map_err(|e| format!("stats: {e}"))?;
    let result = stats.result().cloned().unwrap_or(Value::Null);
    let protocol_errors = u64_at(&result, &["server", "protocol_errors"]);
    let hit_rate = f64_at(&result, &["cache", "hit_rate"]);
    let hits = u64_at(&result, &["cache", "hits"]);
    let batches = u64_at(&result, &["batch", "batches"]);
    println!(
        "stats: protocol_errors={protocol_errors} cache_hits={hits} hit_rate={:.3} batches={batches}",
        hit_rate
    );
    let mut ok = true;
    if protocol_errors != 0 {
        eprintln!("smoke: FAIL — server counted {protocol_errors} protocol errors");
        ok = false;
    }
    if hits == 0 || hit_rate <= 0.0 {
        eprintln!("smoke: FAIL — no cache hits on a repeated working set");
        ok = false;
    }
    if batches == 0 {
        eprintln!("smoke: FAIL — predict burst produced no batches");
        ok = false;
    }

    // Graceful shutdown: the server acknowledges, drains, and (for the CI
    // job) its process exits 0 — checked by the workflow, not here.
    let shut = client
        .call(&shutdown_request())
        .map_err(|e| format!("shutdown: {e}"))?;
    if !shut.ok() {
        return Err(format!("shutdown rejected: {}", shut.raw));
    }
    if let Target::InProcess(handle) = target {
        let report = handle.wait();
        if !report.clean() {
            return Err(format!("unclean drain: {report:?}"));
        }
        println!("drain: clean");
    }
    if ok {
        println!("SERVE-SMOKE: PASS");
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_serve: {e}");
            eprintln!(
                "usage: bench_serve [--smoke] [--addr HOST:PORT] [--clients N] [--requests N] [--out PATH]"
            );
            return ExitCode::FAILURE;
        }
    };
    let run = if args.smoke {
        run_smoke(&args)
    } else {
        run_bench(&args)
    };
    match run {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_serve: error: {e}");
            ExitCode::FAILURE
        }
    }
}

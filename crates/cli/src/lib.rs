//! Argument parsing and command logic for the `nestwx` command-line tool.
//!
//! Kept as a library so the parsing and output formatting are unit-testable;
//! `main.rs` is a thin shell.
//!
//! ```text
//! nestwx machines
//! nestwx plan    --machine bgl:1024 --parent 286x307@24 \
//!                --nest 259x229r3@10,12 --nest 232x256r3@150,40 [--json]
//! nestwx compare --machine bgp:4096 --parent 286x307@24 \
//!                --nest 394x418r3@10,10 --nest 313x337r3@150,160 \
//!                [--iterations 5] [--mapping multilevel] [--alloc huffman]
//!                [--io pnetcdf:1] [--json]
//! ```
//!
//! Nest syntax: `NXxNYrR@OX,OY` (level 1) or `NXxNYrR@OX,OY:in=K` for a
//! second-level nest inside nest `K` (0-based).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod obs;

use nestwx_core::{
    compare_strategies, compare_strategies_observed, AllocPolicy, MappingKind, Planner, Strategy,
};
use nestwx_grid::{Domain, NestSpec};
use nestwx_netsim::{IoMode, Machine};
pub use obs::ObsCmd;
use serde::Serialize;
use std::fmt;

/// A parsed command-line invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List machine presets.
    Machines,
    /// Produce and print an execution plan.
    Plan(RunArgs),
    /// Compare default vs divide-and-conquer strategies.
    Compare(RunArgs),
    /// Analyze recorded run summaries (`nestwx obs report|top|diff`).
    Obs(ObsCmd),
    /// Run the planning daemon (`nestwx serve`).
    Serve(ServeArgs),
    /// Sweep a declarative scenario space (`nestwx sweep`).
    Sweep(SweepArgs),
    /// Run a multi-process worker fleet locally (`nestwx fleet`).
    Fleet(FleetArgs),
    /// Run one fleet worker process (`nestwx fleet-worker`).
    FleetWorker(FleetWorkerArgs),
    /// Run the repo-specific static analysis (`nestwx lint`).
    Lint(LintArgs),
    /// Print usage.
    Help,
}

/// Arguments of `nestwx lint`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintArgs {
    /// Workspace root to scan (default: current directory).
    pub root: Option<String>,
    /// Allowlist file (default: `<root>/lint.allow`; a missing default
    /// file allows nothing).
    pub allow: Option<String>,
    /// Emit the report as JSON instead of human-readable text.
    pub json: bool,
    /// Use the fixture rule configuration (everything in scope, no
    /// exemptions) instead of the workspace one — for testing the rules
    /// themselves against known-bad snippets.
    pub fixtures: bool,
    /// Also run the workspace call-graph pass (NW-G001..G003).
    pub graph: bool,
    /// Write the report as a SARIF 2.1.0 log to this file.
    pub sarif: Option<String>,
    /// Suppress findings recorded in this baseline file; only new
    /// findings (and allowlist/graph errors) fail the run.
    pub baseline: Option<String>,
    /// Write the current findings as a baseline file and exit 0.
    pub write_baseline: Option<String>,
}

/// Arguments of `nestwx sweep`. Flags override the `NESTWX_SWEEP_*`
/// environment knobs, which override the spec/built-in defaults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SweepArgs {
    /// Scenario-space spec file (JSON; `--spec`, required).
    pub spec: String,
    /// Disk-cache directory shared with `nestwx serve` (`--cache-dir`,
    /// else `NESTWX_SWEEP_CACHE_DIR`; unset = no persistence).
    pub cache_dir: Option<String>,
    /// Override of the spec's simulated iterations (`--iterations`).
    pub iterations: Option<u32>,
    /// Worker threads (`--jobs`, else `NESTWX_SWEEP_JOBS`, else
    /// `NESTWX_JOBS` / available parallelism).
    pub jobs: Option<usize>,
    /// Also write the summary envelope JSON to this file (`--out`).
    pub out: Option<String>,
    /// Print the summary envelope as JSON instead of tables.
    pub json: bool,
}

impl SweepArgs {
    /// Resolves flags and environment into engine options. The cache dir
    /// always flows in explicitly from here (flag or `NESTWX_SWEEP_*`
    /// env) — the engine itself never reads ambient paths (NW-D006).
    pub fn to_options(&self) -> nestwx_sweep::SweepOptions {
        let env_nonempty = |key: &str| std::env::var(key).ok().filter(|v| !v.is_empty());
        let cache_dir = self
            .cache_dir
            .clone()
            .or_else(|| env_nonempty("NESTWX_SWEEP_CACHE_DIR"))
            .map(std::path::PathBuf::from);
        let jobs = self
            .jobs
            .or_else(|| env_nonempty("NESTWX_SWEEP_JOBS").and_then(|v| v.parse().ok()));
        nestwx_sweep::SweepOptions {
            cache_dir,
            iterations: self.iterations,
            jobs,
        }
    }
}

/// Arguments of `nestwx fleet`: spawn real worker processes that split a
/// scenario's nests and exchange halos with the coordinator over TCP.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetArgs {
    /// Target machine; its compiled plan's partitions weight the
    /// nest-to-worker split.
    pub machine: MachineSpec,
    /// Parent domain.
    pub parent: Domain,
    /// Nest list.
    pub nests: Vec<NestSpec>,
    /// Coupled parent iterations.
    pub iterations: u32,
    /// Worker processes (`--workers`, else `NESTWX_FLEET_WORKERS`).
    pub workers: Option<u32>,
    /// Mapping kind (feeds the plan).
    pub mapping: MappingKind,
    /// Allocation policy (feeds the plan).
    pub alloc: AllocPolicy,
    /// Print the fleet summary envelope as JSON.
    pub json: bool,
    /// Also write the envelope to this file (for `nestwx obs report`).
    pub obs_out: Option<String>,
    /// Re-run in-process and require a bitwise-identical report.
    pub check: bool,
}

/// Arguments of `nestwx fleet-worker` — the child process `nestwx fleet`
/// spawns; not normally invoked by hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetWorkerArgs {
    /// Coordinator address to connect back to.
    pub connect: String,
}

/// Arguments of `nestwx serve`. Flags override the `NESTWX_SERVE_*`
/// environment knobs, which override the built-in defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// Bind address (default `127.0.0.1:7878`; port 0 picks a free one).
    pub addr: String,
    /// Worker threads (`--workers`, else `NESTWX_SERVE_WORKERS`).
    pub workers: Option<usize>,
    /// Job-queue depth (`--queue`, else `NESTWX_SERVE_QUEUE`).
    pub queue: Option<usize>,
    /// Plan-cache capacity (`--cache`, else `NESTWX_SERVE_CACHE`).
    pub cache: Option<usize>,
    /// Connection cap (`--max-conns`, else `NESTWX_SERVE_MAX_CONNS`).
    pub max_conns: Option<usize>,
    /// Event-loop reader threads (`--readers`, else `NESTWX_SERVE_READERS`).
    pub readers: Option<usize>,
    /// Default request deadline in ms, 0 = none (`--deadline-ms`, else
    /// `NESTWX_SERVE_DEADLINE_MS`).
    pub deadline_ms: Option<u64>,
    /// Per-client rate in tokens/second, 0 = off (`--rate`, else
    /// `NESTWX_SERVE_RATE`).
    pub rate: Option<u64>,
    /// Token-bucket burst capacity (`--burst`, else `NESTWX_SERVE_BURST`).
    pub burst: Option<u64>,
    /// Maximum tracked rate-limit clients (`--client-cap`, else
    /// `NESTWX_SERVE_CLIENT_CAP`).
    pub client_cap: Option<usize>,
    /// Maximum cached predictors (`--predictors`, else
    /// `NESTWX_SERVE_PREDICTORS`).
    pub predictors: Option<usize>,
    /// Idle connection cap in ms, 0 = none (`--idle-ms`, else
    /// `NESTWX_SERVE_IDLE_MS`).
    pub idle_ms: Option<u64>,
    /// Connection lifetime cap in ms, 0 = none (`--lifetime-ms`, else
    /// `NESTWX_SERVE_LIFETIME_MS`).
    pub lifetime_ms: Option<u64>,
    /// Disk plan-cache directory (`--cache-dir`, else
    /// `NESTWX_SERVE_CACHE_DIR`; unset = in-memory cache only).
    pub cache_dir: Option<String>,
}

impl ServeArgs {
    /// Resolves flags and environment into the server config.
    pub fn to_config(&self) -> nestwx_serve::ServeConfig {
        let mut cfg = nestwx_serve::ServeConfig::new(self.addr.clone());
        if let Some(n) = self.workers {
            cfg.workers = n;
        }
        if let Some(n) = self.queue {
            cfg.queue_depth = n;
        }
        if let Some(n) = self.cache {
            cfg.cache_capacity = n;
        }
        if let Some(n) = self.max_conns {
            cfg.max_conns = n;
        }
        if let Some(n) = self.readers {
            cfg.readers = n;
        }
        if let Some(n) = self.deadline_ms {
            cfg.deadline_ms = n;
        }
        if let Some(n) = self.rate {
            cfg.rate = n;
        }
        if let Some(n) = self.burst {
            cfg.burst = n;
        }
        if let Some(n) = self.client_cap {
            cfg.client_cap = n;
        }
        if let Some(n) = self.predictors {
            cfg.predictors = n;
        }
        if let Some(n) = self.idle_ms {
            cfg.idle_ms = n;
        }
        if let Some(n) = self.lifetime_ms {
            cfg.lifetime_ms = n;
        }
        if let Some(dir) = &self.cache_dir {
            cfg.cache_dir = Some(std::path::PathBuf::from(dir));
        }
        cfg
    }
}

/// Common arguments for `plan` and `compare`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Target machine.
    pub machine: MachineSpec,
    /// Parent domain.
    pub parent: Domain,
    /// Nest list.
    pub nests: Vec<NestSpec>,
    /// Iterations (compare only).
    pub iterations: u32,
    /// Mapping kind.
    pub mapping: MappingKind,
    /// Allocation policy.
    pub alloc: AllocPolicy,
    /// Output mode and interval.
    pub io: Option<(IoMode, u32)>,
    /// Emit machine-readable JSON.
    pub json: bool,
    /// Include the per-iteration timeline in compare output.
    pub trace: bool,
    /// Write run summaries to `PREFIX.default.json` / `PREFIX.planned.json`
    /// (compare only).
    pub obs_out: Option<String>,
}

/// Machine family and core count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineSpec {
    /// `bgl` or `bgp`.
    pub family: Family,
    /// Total cores.
    pub cores: u32,
}

/// Blue Gene family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Blue Gene/L (VN mode).
    BgL,
    /// Blue Gene/P (VN mode).
    BgP,
}

impl MachineSpec {
    /// Instantiates the machine model.
    pub fn build(&self) -> Machine {
        match self.family {
            Family::BgL => Machine::bgl(self.cores),
            Family::BgP => Machine::bgp(self.cores),
        }
    }
}

/// A user-facing parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

/// Parses `bgl:1024` / `bgp:4096`.
pub fn parse_machine(s: &str) -> Result<MachineSpec, ParseError> {
    let (fam, cores) = s
        .split_once(':')
        .ok_or_else(|| err(format!("machine '{s}': expected FAMILY:CORES")))?;
    let family = match fam {
        "bgl" => Family::BgL,
        "bgp" => Family::BgP,
        other => return Err(err(format!("unknown machine family '{other}' (bgl|bgp)"))),
    };
    let cores: u32 = cores
        .parse()
        .map_err(|_| err(format!("bad core count '{cores}'")))?;
    if !cores.is_power_of_two() {
        return Err(err(format!("core count {cores} must be a power of two")));
    }
    let min = match family {
        Family::BgL => 16,
        Family::BgP => 64,
    };
    if cores < min {
        return Err(err(format!("{fam} needs at least {min} cores")));
    }
    Ok(MachineSpec { family, cores })
}

/// Parses `286x307@24` (nx × ny at dx km).
pub fn parse_parent(s: &str) -> Result<Domain, ParseError> {
    let (dims, dx) = s
        .split_once('@')
        .ok_or_else(|| err(format!("parent '{s}': expected NXxNY@DX")))?;
    let (nx, ny) = parse_dims(dims)?;
    let dx: f64 = dx
        .parse()
        .map_err(|_| err(format!("bad resolution '{dx}'")))?;
    if dx <= 0.0 {
        return Err(err("resolution must be positive"));
    }
    Ok(Domain::parent(nx, ny, dx))
}

/// Parses `259x229r3@10,12` or `90x90r3@5,5:in=0`.
pub fn parse_nest(s: &str) -> Result<NestSpec, ParseError> {
    let (body, parent_nest) = match s.split_once(":in=") {
        Some((b, k)) => {
            let k: usize = k
                .parse()
                .map_err(|_| err(format!("bad parent nest index '{k}'")))?;
            (b, Some(k))
        }
        None => (s, None),
    };
    let (dims_r, offs) = body
        .split_once('@')
        .ok_or_else(|| err(format!("nest '{s}': expected NXxNYrR@OX,OY")))?;
    let (dims, r) = dims_r
        .split_once('r')
        .ok_or_else(|| err(format!("nest '{s}': missing refinement 'rR'")))?;
    let (nx, ny) = parse_dims(dims)?;
    let r: u32 = r
        .parse()
        .map_err(|_| err(format!("bad refinement '{r}'")))?;
    let (ox, oy) = offs
        .split_once(',')
        .ok_or_else(|| err(format!("nest '{s}': offset must be OX,OY")))?;
    let ox: u32 = ox.parse().map_err(|_| err(format!("bad offset '{ox}'")))?;
    let oy: u32 = oy.parse().map_err(|_| err(format!("bad offset '{oy}'")))?;
    Ok(NestSpec {
        nx,
        ny,
        refine_ratio: r,
        offset: (ox, oy),
        parent_nest,
    })
}

fn parse_dims(s: &str) -> Result<(u32, u32), ParseError> {
    let (nx, ny) = s
        .split_once('x')
        .ok_or_else(|| err(format!("dims '{s}': expected NXxNY")))?;
    Ok((
        nx.parse()
            .map_err(|_| err(format!("bad dimension '{nx}'")))?,
        ny.parse()
            .map_err(|_| err(format!("bad dimension '{ny}'")))?,
    ))
}

/// Parses `oblivious|txyz|partition|multilevel`.
pub fn parse_mapping(s: &str) -> Result<MappingKind, ParseError> {
    match s {
        "oblivious" => Ok(MappingKind::Oblivious),
        "txyz" => Ok(MappingKind::Txyz),
        "partition" => Ok(MappingKind::Partition),
        "multilevel" => Ok(MappingKind::MultiLevel),
        other => Err(err(format!("unknown mapping '{other}'"))),
    }
}

/// Parses `equal|naive|huffman`.
pub fn parse_alloc(s: &str) -> Result<AllocPolicy, ParseError> {
    match s {
        "equal" => Ok(AllocPolicy::Equal),
        "naive" => Ok(AllocPolicy::NaiveProportional),
        "huffman" => Ok(AllocPolicy::HuffmanSplitTree),
        other => Err(err(format!("unknown allocation policy '{other}'"))),
    }
}

/// Parses `pnetcdf:N` / `split:N`.
pub fn parse_io(s: &str) -> Result<(IoMode, u32), ParseError> {
    let (mode, every) = s
        .split_once(':')
        .ok_or_else(|| err(format!("io '{s}': expected MODE:INTERVAL")))?;
    let mode = match mode {
        "pnetcdf" => IoMode::PnetCdf,
        "split" => IoMode::SplitFiles,
        other => return Err(err(format!("unknown io mode '{other}'"))),
    };
    let every: u32 = every
        .parse()
        .map_err(|_| err(format!("bad interval '{every}'")))?;
    if every == 0 {
        return Err(err("io interval must be ≥ 1"));
    }
    Ok((mode, every))
}

/// Parses a full argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "machines" => Ok(Command::Machines),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "obs" => parse_obs_args(&args[1..]).map(Command::Obs),
        "serve" => parse_serve_args(&args[1..]).map(Command::Serve),
        "sweep" => parse_sweep_args(&args[1..]).map(Command::Sweep),
        "fleet" => parse_fleet_args(&args[1..]).map(Command::Fleet),
        "fleet-worker" => parse_fleet_worker_args(&args[1..]).map(Command::FleetWorker),
        "lint" => parse_lint_args(&args[1..]).map(Command::Lint),
        "plan" | "compare" => {
            let mut machine = None;
            let mut parent = None;
            let mut nests = Vec::new();
            let mut iterations = 5u32;
            let mut mapping = MappingKind::Partition;
            let mut alloc = AllocPolicy::HuffmanSplitTree;
            let mut io = None;
            let mut json = false;
            let mut trace = false;
            let mut obs_out = None;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| err(format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--machine" => machine = Some(parse_machine(&value("--machine")?)?),
                    "--parent" => parent = Some(parse_parent(&value("--parent")?)?),
                    "--nest" => nests.push(parse_nest(&value("--nest")?)?),
                    "--iterations" => {
                        iterations = value("--iterations")?
                            .parse()
                            .map_err(|_| err("bad --iterations"))?;
                    }
                    "--mapping" => mapping = parse_mapping(&value("--mapping")?)?,
                    "--alloc" => alloc = parse_alloc(&value("--alloc")?)?,
                    "--io" => io = Some(parse_io(&value("--io")?)?),
                    "--json" => json = true,
                    "--trace" => trace = true,
                    "--obs-out" => obs_out = Some(value("--obs-out")?),
                    other => return Err(err(format!("unknown flag '{other}'"))),
                }
            }
            let run = RunArgs {
                machine: machine.ok_or_else(|| err("--machine is required"))?,
                parent: parent.ok_or_else(|| err("--parent is required"))?,
                nests,
                iterations,
                mapping,
                alloc,
                io,
                json,
                trace,
                obs_out,
            };
            if run.nests.is_empty() {
                return Err(err("at least one --nest is required"));
            }
            if run.iterations == 0 {
                return Err(err("--iterations must be ≥ 1"));
            }
            if run.obs_out.is_some() && cmd == "plan" {
                return Err(err("--obs-out only applies to compare"));
            }
            Ok(match cmd.as_str() {
                "plan" => Command::Plan(run),
                _ => Command::Compare(run),
            })
        }
        other => Err(err(format!(
            "unknown command '{other}' (machines|plan|compare|sweep|fleet|obs|serve|lint|help)"
        ))),
    }
}

/// Parses `fleet --machine M --parent P --nest N [--workers W]
/// [--iterations N] [--mapping M] [--alloc A] [--json] [--obs-out FILE]
/// [--check]`.
fn parse_fleet_args(args: &[String]) -> Result<FleetArgs, ParseError> {
    let mut machine = None;
    let mut parent = None;
    let mut nests = Vec::new();
    let mut iterations = 5u32;
    let mut workers = None;
    let mut mapping = MappingKind::Partition;
    let mut alloc = AllocPolicy::HuffmanSplitTree;
    let mut json = false;
    let mut obs_out = None;
    let mut check = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| err(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--machine" => machine = Some(parse_machine(&value("--machine")?)?),
            "--parent" => parent = Some(parse_parent(&value("--parent")?)?),
            "--nest" => nests.push(parse_nest(&value("--nest")?)?),
            "--iterations" => {
                iterations = value("--iterations")?
                    .parse()
                    .map_err(|_| err("bad --iterations"))?;
            }
            "--workers" => {
                let w: u32 = value("--workers")?
                    .parse()
                    .map_err(|_| err("bad --workers"))?;
                if !(1..=16).contains(&w) {
                    return Err(err("--workers must be 1..=16"));
                }
                workers = Some(w);
            }
            "--mapping" => mapping = parse_mapping(&value("--mapping")?)?,
            "--alloc" => alloc = parse_alloc(&value("--alloc")?)?,
            "--json" => json = true,
            "--obs-out" => obs_out = Some(value("--obs-out")?),
            "--check" => check = true,
            other => return Err(err(format!("unknown fleet flag '{other}'"))),
        }
    }
    let fleet = FleetArgs {
        machine: machine.ok_or_else(|| err("--machine is required"))?,
        parent: parent.ok_or_else(|| err("--parent is required"))?,
        nests,
        iterations,
        workers,
        mapping,
        alloc,
        json,
        obs_out,
        check,
    };
    if fleet.nests.is_empty() {
        return Err(err("at least one --nest is required"));
    }
    if fleet.iterations == 0 {
        return Err(err("--iterations must be ≥ 1"));
    }
    Ok(fleet)
}

/// Parses `fleet-worker --connect HOST:PORT`.
fn parse_fleet_worker_args(args: &[String]) -> Result<FleetWorkerArgs, ParseError> {
    let mut connect = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--connect" => {
                connect = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| err("--connect needs a value"))?,
                )
            }
            other => return Err(err(format!("unknown fleet-worker flag '{other}'"))),
        }
    }
    Ok(FleetWorkerArgs {
        connect: connect.ok_or_else(|| err("--connect is required"))?,
    })
}

/// Parses `serve [--addr A] [--workers N] [--queue N] [--cache N]
/// [--max-conns N]`.
fn parse_serve_args(args: &[String]) -> Result<ServeArgs, ParseError> {
    let mut serve = ServeArgs {
        addr: "127.0.0.1:7878".to_string(),
        workers: None,
        queue: None,
        cache: None,
        max_conns: None,
        readers: None,
        deadline_ms: None,
        rate: None,
        burst: None,
        client_cap: None,
        predictors: None,
        idle_ms: None,
        lifetime_ms: None,
        cache_dir: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| err(format!("{name} needs a value")))
        };
        let positive = |name: &str, v: String| -> Result<usize, ParseError> {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(err(format!("{name} must be a positive integer, got '{v}'"))),
            }
        };
        // Limits where 0 is meaningful: it disables the knob.
        let nonneg = |name: &str, v: String| -> Result<u64, ParseError> {
            v.parse::<u64>()
                .map_err(|_| err(format!("{name} must be a non-negative integer, got '{v}'")))
        };
        match flag.as_str() {
            "--addr" => serve.addr = value("--addr")?,
            "--workers" => serve.workers = Some(positive("--workers", value("--workers")?)?),
            "--queue" => serve.queue = Some(positive("--queue", value("--queue")?)?),
            "--cache" => serve.cache = Some(positive("--cache", value("--cache")?)?),
            "--max-conns" => {
                serve.max_conns = Some(positive("--max-conns", value("--max-conns")?)?)
            }
            "--readers" => serve.readers = Some(positive("--readers", value("--readers")?)?),
            "--deadline-ms" => {
                serve.deadline_ms = Some(nonneg("--deadline-ms", value("--deadline-ms")?)?)
            }
            "--rate" => serve.rate = Some(nonneg("--rate", value("--rate")?)?),
            "--burst" => serve.burst = Some(positive("--burst", value("--burst")?)? as u64),
            "--client-cap" => {
                serve.client_cap = Some(positive("--client-cap", value("--client-cap")?)?)
            }
            "--predictors" => {
                serve.predictors = Some(positive("--predictors", value("--predictors")?)?)
            }
            "--idle-ms" => serve.idle_ms = Some(nonneg("--idle-ms", value("--idle-ms")?)?),
            "--lifetime-ms" => {
                serve.lifetime_ms = Some(nonneg("--lifetime-ms", value("--lifetime-ms")?)?)
            }
            "--cache-dir" => serve.cache_dir = Some(value("--cache-dir")?),
            other => return Err(err(format!("unknown serve flag '{other}'"))),
        }
    }
    Ok(serve)
}

/// Parses `sweep --spec FILE [--cache-dir DIR] [--iterations N]
/// [--jobs N] [--out FILE] [--json]`.
fn parse_sweep_args(args: &[String]) -> Result<SweepArgs, ParseError> {
    let mut sweep = SweepArgs::default();
    let mut spec = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| err(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--spec" => spec = Some(value("--spec")?),
            "--cache-dir" => sweep.cache_dir = Some(value("--cache-dir")?),
            "--iterations" => {
                let n: u32 = value("--iterations")?
                    .parse()
                    .map_err(|_| err("bad --iterations"))?;
                if n == 0 {
                    return Err(err("--iterations must be ≥ 1"));
                }
                sweep.iterations = Some(n);
            }
            "--jobs" => {
                let n: usize = value("--jobs")?.parse().map_err(|_| err("bad --jobs"))?;
                if n == 0 {
                    return Err(err("--jobs must be ≥ 1"));
                }
                sweep.jobs = Some(n);
            }
            "--out" => sweep.out = Some(value("--out")?),
            "--json" => sweep.json = true,
            other => return Err(err(format!("unknown sweep flag '{other}'"))),
        }
    }
    sweep.spec = spec.ok_or_else(|| err("--spec is required"))?;
    Ok(sweep)
}

/// Parses `lint [--root DIR] [--allow FILE] [--json] [--fixtures]
/// [--graph] [--sarif FILE] [--baseline FILE] [--write-baseline FILE]`.
fn parse_lint_args(args: &[String]) -> Result<LintArgs, ParseError> {
    let mut lint = LintArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| err(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--root" => lint.root = Some(value("--root")?),
            "--allow" => lint.allow = Some(value("--allow")?),
            "--json" => lint.json = true,
            "--fixtures" => lint.fixtures = true,
            "--graph" => lint.graph = true,
            "--sarif" => lint.sarif = Some(value("--sarif")?),
            "--baseline" => lint.baseline = Some(value("--baseline")?),
            "--write-baseline" => lint.write_baseline = Some(value("--write-baseline")?),
            other => return Err(err(format!("unknown lint flag '{other}'"))),
        }
    }
    if lint.baseline.is_some() && lint.write_baseline.is_some() {
        return Err(err(
            "--baseline and --write-baseline are mutually exclusive",
        ));
    }
    Ok(lint)
}

/// Parses the `obs` subcommand family: `report FILE`, `top FILE [--by
/// METRIC] [-n N]`, `diff A B`.
fn parse_obs_args(args: &[String]) -> Result<ObsCmd, ParseError> {
    let Some(sub) = args.first() else {
        return Err(err("obs needs a subcommand (report|top|diff)"));
    };
    match sub.as_str() {
        "report" => {
            let [path] = &args[1..] else {
                return Err(err("usage: obs report FILE"));
            };
            Ok(ObsCmd::Report { path: path.clone() })
        }
        "top" => {
            let mut path = None;
            let mut by = "duration".to_string();
            let mut n = 10usize;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| err(format!("{name} needs a value")))
                };
                match a.as_str() {
                    "--by" => by = value("--by")?,
                    "-n" | "--count" => {
                        n = value("-n")?.parse().map_err(|_| err("bad -n"))?;
                    }
                    flag if flag.starts_with('-') => {
                        return Err(err(format!("unknown obs top flag '{flag}'")));
                    }
                    p if path.is_none() => path = Some(p.to_string()),
                    extra => return Err(err(format!("unexpected argument '{extra}'"))),
                }
            }
            // Step metrics for run summaries, span stages for serve trace
            // envelopes — which applies is decided when the file loads.
            if !obs::TOP_METRICS.contains(&by.as_str())
                && !obs::SERVE_TOP_METRICS.contains(&by.as_str())
            {
                return Err(err(format!(
                    "unknown metric '{by}' (one of {} for runs, {} for serve traces)",
                    obs::TOP_METRICS.join("|"),
                    obs::SERVE_TOP_METRICS.join("|")
                )));
            }
            if n == 0 {
                return Err(err("-n must be ≥ 1"));
            }
            Ok(ObsCmd::Top {
                path: path.ok_or_else(|| err("usage: obs top FILE [--by METRIC] [-n N]"))?,
                by,
                n,
            })
        }
        "diff" => {
            let [a, b] = &args[1..] else {
                return Err(err("usage: obs diff A B"));
            };
            Ok(ObsCmd::Diff {
                a: a.clone(),
                b: b.clone(),
            })
        }
        other => Err(err(format!(
            "unknown obs subcommand '{other}' (report|top|diff)"
        ))),
    }
}

#[derive(Serialize)]
struct PlanOut {
    machine: String,
    ranks: u32,
    grid: (u32, u32),
    predicted_ratios: Vec<f64>,
    partitions: Vec<PartitionOut>,
}

#[derive(Serialize)]
struct PartitionOut {
    nest: usize,
    x: u32,
    y: u32,
    w: u32,
    h: u32,
    ranks: u64,
}

#[derive(Serialize)]
struct CompareOut {
    machine: String,
    iterations: u32,
    default_s_per_iter: f64,
    parallel_s_per_iter: f64,
    improvement_pct: f64,
    mpi_wait_improvement_pct: f64,
    hops_reduction_pct: f64,
    io_improvement_pct: f64,
    #[serde(skip_serializing_if = "Option::is_none")]
    trace: Option<Vec<nestwx_netsim::IterationTrace>>,
}

/// Runs a parsed command, writing human or JSON output to `out`.
pub fn run(cmd: Command, out: &mut dyn std::io::Write) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        Command::Help => {
            writeln!(out, "{}", usage())?;
        }
        Command::Machines => {
            writeln!(out, "machine presets (FAMILY:CORES):")?;
            for (spec, desc) in [
                (
                    "bgl:16..1024",
                    "IBM Blue Gene/L, virtual-node mode, 8x8x8-midplane torus",
                ),
                (
                    "bgp:64..8192",
                    "IBM Blue Gene/P, virtual-node mode, rack-stacked torus",
                ),
            ] {
                writeln!(out, "  {spec:<14} {desc}")?;
            }
        }
        Command::Plan(a) => {
            let planner = planner_for(&a);
            let plan = planner.plan(&a.parent, &a.nests)?;
            if a.json {
                let o = PlanOut {
                    machine: plan.machine.name.clone(),
                    ranks: plan.machine.ranks(),
                    grid: (plan.grid.px, plan.grid.py),
                    predicted_ratios: plan.predicted_ratios.clone(),
                    partitions: plan
                        .partitions
                        .iter()
                        .map(|p| PartitionOut {
                            nest: p.domain,
                            x: p.rect.x0,
                            y: p.rect.y0,
                            w: p.rect.w,
                            h: p.rect.h,
                            ranks: p.rect.area(),
                        })
                        .collect(),
                };
                writeln!(out, "{}", serde_json::to_string_pretty(&o)?)?;
            } else {
                writeln!(
                    out,
                    "machine: {} ({} ranks as {}x{})",
                    plan.machine.name,
                    plan.machine.ranks(),
                    plan.grid.px,
                    plan.grid.py
                )?;
                writeln!(out, "predicted time shares: {:?}", plan.predicted_ratios)?;
                for p in &plan.partitions {
                    writeln!(
                        out,
                        "  nest {}: {}x{} ranks at ({},{})  [{} ranks]",
                        p.domain,
                        p.rect.w,
                        p.rect.h,
                        p.rect.x0,
                        p.rect.y0,
                        p.rect.area()
                    )?;
                }
            }
        }
        Command::Obs(c) => match c {
            ObsCmd::Report { path } => {
                let v = obs::load_summary(&path)?;
                obs::report(&v, out)?;
            }
            ObsCmd::Top { path, by, n } => {
                let v = obs::load_summary(&path)?;
                obs::top(&v, &by, n, out)?;
            }
            ObsCmd::Diff { a, b } => {
                let va = obs::load_summary(&a)?;
                let vb = obs::load_summary(&b)?;
                writeln!(out, "diff {a} -> {b}")?;
                obs::diff(&va, &vb, out)?;
            }
        },
        Command::Serve(a) => {
            let handle = nestwx_serve::spawn(a.to_config())?;
            writeln!(out, "listening on {}", handle.addr())?;
            out.flush()?;
            // Blocks until a client sends `shutdown`; then every thread is
            // joined and the drain report says whether anything leaked.
            let report = handle.wait();
            writeln!(out, "{}", serde_json::to_string(&report)?)?;
            if !report.clean() {
                return Err(format!("unclean drain: {report:?}").into());
            }
        }
        Command::Sweep(a) => {
            let text = std::fs::read_to_string(&a.spec)
                .map_err(|e| format!("cannot read spec '{}': {e}", a.spec))?;
            let spec = nestwx_sweep::SweepSpec::parse(&text)?;
            let report = nestwx_sweep::run_sweep(&spec, &a.to_options())?;
            let envelope = nestwx_sweep::to_json(&report);
            if let Some(path) = &a.out {
                std::fs::write(path, &envelope)
                    .map_err(|e| format!("cannot write '{path}': {e}"))?;
            }
            if a.json {
                writeln!(out, "{envelope}")?;
            } else {
                writeln!(
                    out,
                    "swept {} scenarios ({} expanded, {} duplicate) in {:.2}s with {} jobs",
                    report.unique,
                    report.expanded,
                    report.duplicates,
                    report.elapsed_seconds,
                    report.jobs
                )?;
                writeln!(
                    out,
                    "  computed {}  disk hits {}  errors {}  plans digest {}",
                    report.computed, report.disk_hits, report.errors, report.plans_digest
                )?;
                if let Some(d) = &report.disk {
                    writeln!(
                        out,
                        "  disk cache: {} hits, {} misses, {} writes, {} corrupt",
                        d.hits, d.misses, d.writes, d.corrupt
                    )?;
                }
                writeln!(out)?;
                writeln!(out, "pareto front (ranks vs s/iter):")?;
                for p in &report.pareto {
                    writeln!(
                        out,
                        "  {:>7} ranks  {:>9.4} s/iter  {} {}/{}/{}  {}",
                        p.ranks,
                        p.planned_s_per_iter,
                        p.machine,
                        p.strategy,
                        p.alloc,
                        p.mapping,
                        p.region
                    )?;
                }
                writeln!(out)?;
                writeln!(out, "winner per region:")?;
                for w in &report.winners {
                    writeln!(
                        out,
                        "  {}  ->  {}:{} {}/{}/{}  {:.4} s/iter  ({} scenarios, worst +{:.1}%)",
                        w.region,
                        w.machine,
                        w.ranks,
                        w.strategy,
                        w.alloc,
                        w.mapping,
                        w.planned_s_per_iter,
                        w.scenarios,
                        w.spread_pct
                    )?;
                }
                for row in report.scenarios.iter().filter(|r| r.error.is_some()) {
                    writeln!(
                        out,
                        "  error: {} ({})",
                        row.error.as_deref().unwrap_or(""),
                        row.key
                    )?;
                }
            }
            if report.errors > 0 {
                return Err(format!("{} scenario(s) failed to plan", report.errors).into());
            }
        }
        Command::Fleet(a) => {
            let planner = Planner::new(a.machine.build())
                .strategy(Strategy::Concurrent)
                .alloc_policy(a.alloc)
                .mapping(a.mapping);
            let plan = planner.plan(&a.parent, &a.nests)?;
            let partitions: Vec<(usize, u64)> = plan
                .partitions
                .iter()
                .map(|p| (p.domain, p.rect.area()))
                .collect();
            let ranks = plan.machine.ranks() as u64;
            let mut cfg = nestwx_fleet::FleetConfig::from_env();
            if let Some(w) = a.workers {
                cfg.workers = w as usize;
            }
            let (listener, addr) = nestwx_fleet::bind_listener("127.0.0.1:0")
                .map_err(|e| format!("fleet: cannot bind a loopback listener: {e}"))?;
            // Real worker processes: each child is this same binary
            // re-invoked as `nestwx fleet-worker`, connecting back over
            // loopback.
            let exe = std::env::current_exe()
                .map_err(|e| format!("fleet: cannot locate own executable: {e}"))?;
            let mut children = Vec::with_capacity(cfg.workers);
            for _ in 0..cfg.workers {
                let child = std::process::Command::new(&exe)
                    .args(["fleet-worker", "--connect", &addr])
                    .stdin(std::process::Stdio::null())
                    .spawn()
                    .map_err(|e| format!("fleet: cannot spawn worker: {e}"))?;
                children.push(child);
            }
            let result = nestwx_fleet::accept_n(
                &listener,
                cfg.workers,
                nestwx_obs::clock::deadline_after(cfg.connect_timeout),
            )
            .map_err(|e| nestwx_fleet::FleetError::Handshake(e.to_string()))
            .and_then(|conns| {
                nestwx_fleet::run_coordinator(
                    &a.parent,
                    &a.nests,
                    a.iterations as u64,
                    ranks,
                    &partitions,
                    conns,
                    &cfg,
                )
            });
            // Reap every child: on success each worker exits after its
            // Done; on failure the coordinator has already aborted the
            // fleet, so the kill is only a backstop for a wedged child.
            for mut child in children {
                if result.is_err() {
                    let _ = child.kill();
                }
                let _ = child.wait();
            }
            let fleet = result?;
            if a.check {
                let reference = nestwx_fleet::execute_in_process(
                    &a.parent,
                    &a.nests,
                    a.iterations as u64,
                    ranks,
                    &partitions,
                    &nestwx_fleet::FleetConfig { workers: 1, ..cfg },
                )?;
                if reference.report != fleet.report {
                    return Err(format!(
                        "fleet check FAILED: {}-worker digest {} != in-process digest {}",
                        fleet.summary.workers, fleet.report.digest, reference.report.digest
                    )
                    .into());
                }
            }
            if let Some(path) = &a.obs_out {
                std::fs::write(path, fleet.summary.to_json())
                    .map_err(|e| format!("cannot write '{path}': {e}"))?;
            }
            if a.json {
                writeln!(out, "{}", fleet.summary.to_json())?;
            } else {
                let s = &fleet.summary;
                writeln!(
                    out,
                    "fleet: {} workers x {} iterations on {} ({} ranks)",
                    s.workers, s.iterations, plan.machine.name, ranks
                )?;
                writeln!(out, "  digest {}  parent {}", s.digest, s.parent_digest)?;
                writeln!(
                    out,
                    "  logical halo bytes {}  socket bytes {} in / {} out  elapsed {:.3}s",
                    s.logical_halo_bytes,
                    s.coordinator.bytes_in,
                    s.coordinator.bytes_out,
                    s.elapsed_s
                )?;
                for w in &s.worker_rows {
                    writeln!(
                        out,
                        "  worker {}: nests {:?}  compute {:.3}s  wait {:.3}s  frames {} in / {} out",
                        w.slot, w.nests, w.obs.compute_s, w.obs.wait_s, w.obs.frames_in, w.obs.frames_out
                    )?;
                }
                if a.check {
                    writeln!(
                        out,
                        "  check: report bitwise-identical to the in-process run"
                    )?;
                }
            }
        }
        Command::FleetWorker(a) => {
            let cfg = nestwx_fleet::FleetConfig::from_env();
            let mut conn = nestwx_fleet::connect(
                &a.connect,
                nestwx_obs::clock::deadline_after(cfg.connect_timeout),
            )
            .map_err(|e| {
                format!(
                    "fleet-worker: cannot reach coordinator at {}: {e}",
                    a.connect
                )
            })?;
            nestwx_fleet::run_worker(&mut conn, cfg.frame_timeout)?;
        }
        Command::Lint(a) => {
            let root = std::path::PathBuf::from(a.root.as_deref().unwrap_or("."));
            // --fixtures --graph pairs the empty per-file scopes with the
            // fixture graph roots, so known-bad graph fixture trees exercise
            // only NW-G001..G003.
            let cfg = match (a.fixtures, a.graph) {
                (true, true) => nestwx_analyze::LintConfig::graph_fixtures(root.clone()),
                (true, false) => nestwx_analyze::LintConfig::fixtures(root.clone()),
                (false, _) => nestwx_analyze::LintConfig::workspace_default(root.clone()),
            };
            let graph_cfg = a.graph.then(|| {
                if a.fixtures {
                    nestwx_analyze::GraphConfig::fixtures()
                } else {
                    nestwx_analyze::GraphConfig::workspace_default()
                }
            });
            let allow_path = match &a.allow {
                Some(p) => std::path::PathBuf::from(p),
                None => root.join("lint.allow"),
            };
            let mut report =
                nestwx_analyze::run_lint_with_allow_file_ex(&cfg, graph_cfg.as_ref(), &allow_path)?;
            if let Some(path) = &a.write_baseline {
                std::fs::write(path, nestwx_analyze::write_baseline(&report.findings))?;
                writeln!(
                    out,
                    "wrote baseline with {} finding(s) to {path}",
                    report.findings.len()
                )?;
                return Ok(());
            }
            let mut baselined = 0usize;
            if let Some(path) = &a.baseline {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
                let keys = nestwx_analyze::parse_baseline(&text)
                    .map_err(|e| format!("bad baseline {path}: {e}"))?;
                baselined = nestwx_analyze::apply_baseline(&mut report, &keys);
            }
            if let Some(path) = &a.sarif {
                std::fs::write(path, nestwx_analyze::to_sarif(&report))?;
            }
            if a.json {
                writeln!(out, "{}", serde_json::to_string_pretty(&report)?)?;
            } else {
                write!(out, "{}", report.render())?;
                if baselined > 0 {
                    writeln!(out, "baseline: {baselined} finding(s) suppressed")?;
                }
            }
            if !report.ok() {
                return Err(format!(
                    "lint failed: {} finding(s), {} allowlist error(s), {} graph error(s)",
                    report.findings.len(),
                    report.allow_errors.len(),
                    report.graph_errors.len()
                )
                .into());
            }
        }
        Command::Compare(a) => {
            let planner = planner_for(&a);
            // With --obs-out, run the observed variant (recording is
            // passive, so the comparison itself is bitwise identical) and
            // write each run's summary JSON next to the given prefix.
            let cmp = if let Some(prefix) = &a.obs_out {
                let obs_cmp =
                    compare_strategies_observed(&planner, &a.parent, &a.nests, a.iterations)?;
                std::fs::write(
                    format!("{prefix}.default.json"),
                    obs_cmp.default_rec.summary_json(),
                )?;
                std::fs::write(
                    format!("{prefix}.planned.json"),
                    obs_cmp.planned_rec.summary_json(),
                )?;
                obs_cmp.comparison
            } else {
                compare_strategies(&planner, &a.parent, &a.nests, a.iterations)?
            };
            if a.json {
                let trace = if a.trace {
                    let plan = planner.plan(&a.parent, &a.nests)?;
                    Some(plan.simulate_traced(a.iterations)?.1)
                } else {
                    None
                };
                let o = CompareOut {
                    machine: cmp.default_run.machine.clone(),
                    iterations: a.iterations,
                    default_s_per_iter: cmp.default_run.per_iteration(),
                    parallel_s_per_iter: cmp.planned_run.per_iteration(),
                    improvement_pct: cmp.improvement_pct(),
                    mpi_wait_improvement_pct: cmp.mpi_wait_improvement_pct(),
                    hops_reduction_pct: cmp.hops_reduction_pct(),
                    io_improvement_pct: cmp.io_improvement_pct(),
                    trace,
                };
                writeln!(out, "{}", serde_json::to_string_pretty(&o)?)?;
            } else {
                writeln!(
                    out,
                    "default (sequential) : {:.3} s/iteration",
                    cmp.default_run.per_iteration()
                )?;
                writeln!(
                    out,
                    "divide-and-conquer   : {:.3} s/iteration",
                    cmp.planned_run.per_iteration()
                )?;
                writeln!(
                    out,
                    "improvement          : {:+.2} %",
                    cmp.improvement_pct()
                )?;
                writeln!(
                    out,
                    "MPI_Wait improvement : {:+.2} %",
                    cmp.mpi_wait_improvement_pct()
                )?;
                writeln!(
                    out,
                    "avg hops reduction   : {:+.2} %",
                    cmp.hops_reduction_pct()
                )?;
                if cmp.default_run.io_time > 0.0 {
                    writeln!(
                        out,
                        "I/O improvement      : {:+.2} %",
                        cmp.io_improvement_pct()
                    )?;
                }
            }
        }
    }
    Ok(())
}

fn planner_for(a: &RunArgs) -> Planner {
    let mut planner = Planner::new(a.machine.build())
        .strategy(Strategy::Concurrent)
        .alloc_policy(a.alloc)
        .mapping(a.mapping);
    if let Some((mode, every)) = a.io {
        planner = planner.output(mode, every);
    }
    planner
}

/// The usage string.
pub fn usage() -> &'static str {
    "nestwx — divide-and-conquer scheduling for multi-nest weather simulations

USAGE:
  nestwx machines
  nestwx plan    --machine bgl:1024 --parent 286x307@24 --nest 259x229r3@10,12 [...]
  nestwx compare --machine bgp:4096 --parent 286x307@24 --nest 394x418r3@10,10 [...]
  nestwx sweep   --spec FILE [--cache-dir DIR] [--iterations N] [--jobs N]
                 [--out FILE] [--json]
  nestwx fleet   --machine bgl:64 --parent 96x84@24 --nest 40x40r3@6,6 [...]
                 [--workers N] [--iterations N] [--json] [--obs-out FILE]
                 [--check]
  nestwx fleet-worker --connect HOST:PORT
  nestwx obs report FILE
  nestwx obs top  FILE [--by duration|compute|halo_wait|bytes|messages|hops|stall] [-n N]
                       (serve traces: --by total|parse|wait|work|write)
  nestwx obs diff A B
  nestwx serve   [--addr 127.0.0.1:7878] [--workers N] [--queue N] [--cache N]
                 [--max-conns N] [--readers N] [--deadline-ms MS] [--rate N]
                 [--burst N] [--client-cap N] [--predictors N] [--idle-ms MS]
                 [--lifetime-ms MS] [--cache-dir DIR]
  nestwx lint    [--root DIR] [--allow FILE] [--json] [--fixtures] [--graph]
                 [--sarif FILE] [--baseline FILE] [--write-baseline FILE]

FLAGS:
  --machine FAMILY:CORES   bgl:16..1024 | bgp:64..8192 (power of two)
  --parent  NXxNY@DXKM     e.g. 286x307@24
  --nest    NXxNYrR@OX,OY[:in=K]
                           repeatable; ':in=K' makes it a second-level nest
                           inside nest K (0-based)
  --iterations N           compare only (default 5)
  --mapping  oblivious|txyz|partition|multilevel   (default partition)
  --alloc    equal|naive|huffman                   (default huffman)
  --io       pnetcdf:N|split:N                     history output every N iters
  --json                   machine-readable output
  --trace                  include the per-iteration timeline (with --json)
  --obs-out PREFIX         compare only: record both runs and write
                           PREFIX.default.json / PREFIX.planned.json run
                           summaries for 'nestwx obs'

SWEEP:
  Expands a declarative JSON scenario-space spec (lists/ranges over
  machines, parents, nest sets, strategies, allocs, mappings, io),
  dedups by canonical scenario, and plans+simulates every unique
  scenario on a work-stealing thread pool. With --cache-dir (or
  NESTWX_SWEEP_CACHE_DIR) results persist to a disk cache shared with
  'nestwx serve --cache-dir' — a warm sweep pre-heats the service, and
  re-running a sweep replays from disk. --jobs falls back to
  NESTWX_SWEEP_JOBS, then NESTWX_JOBS. Output: Pareto front (ranks vs
  s/iter), winner-per-region table, and a versioned summary envelope
  ('nestwx obs report' understands it; --out writes it to a file).

FLEET:
  Runs the scenario as a real multi-process fleet: the coordinator plans
  the scenario, partitions the level-1 nests across N worker processes
  rank-proportionally, spawns each worker as 'nestwx fleet-worker
  --connect HOST:PORT', and drives the coupled parent<->nest iteration
  with boundary rings and feedback cells crossing process boundaries as
  length-prefixed binary frames. Every f64 crosses as its exact bit
  pattern, so the merged report is bitwise identical to the in-process
  run at any worker count; --check re-runs in-process and fails loudly
  on any divergence. --obs-out writes the 'nestwx-obs-fleet-summary'
  envelope (socket traffic, per-worker stall attribution) that
  'nestwx obs report' renders. Unset --workers falls back to
  NESTWX_FLEET_WORKERS (default 2); handshake and mid-run silence
  budgets come from NESTWX_FLEET_CONNECT_TIMEOUT_MS /
  NESTWX_FLEET_FRAME_TIMEOUT_MS, and frame size is capped by
  NESTWX_FLEET_MAX_FRAME_BYTES. A lost or silent worker aborts the
  whole fleet with a typed worker_lost error — no partial reports.

SERVE:
  Runs the planning daemon: newline-delimited JSON requests over TCP
  (predict|plan|compare|execute|stats|trace|shutdown), served by a nonblocking
  event loop with plan caching, predict micro-batching, per-request
  deadlines, per-client token-bucket rate limits and live latency
  metrics. Unset flags fall back to the NESTWX_SERVE_WORKERS /
  NESTWX_SERVE_READERS / NESTWX_SERVE_QUEUE / NESTWX_SERVE_CACHE /
  NESTWX_SERVE_MAX_CONNS / NESTWX_SERVE_DEADLINE_MS / NESTWX_SERVE_RATE /
  NESTWX_SERVE_BURST / NESTWX_SERVE_CLIENT_CAP / NESTWX_SERVE_PREDICTORS /
  NESTWX_SERVE_IDLE_MS / NESTWX_SERVE_LIFETIME_MS /
  NESTWX_SERVE_CACHE_DIR environment knobs (deadline/rate/idle/lifetime
  default 0 = off; cache-dir unset = memory-only plan cache). With a
  cache dir, plans persist across restarts and are shared with
  'nestwx sweep'. An 'execute' request runs the planned scenario as an
  in-process socket fleet (see FLEET) and returns the merged report plus
  the fleet envelope; execute responses are never cached. The process
  exits (code 0) after a clean drain once a client sends 'shutdown'.

  A flight recorder (NESTWX_SERVE_TRACE, default on) stamps every
  request's lifecycle (parse/queue/work/write) into bounded per-reader
  span rings (NESTWX_SERVE_TRACE_RING per reader) with a slow-request
  log above NESTWX_SERVE_TRACE_SLOW_US (0 = off). The 'trace' endpoint
  drains the rings as a versioned 'nestwx-obs-serve-summary' envelope
  that 'nestwx obs report|top|diff' renders; 'stats' returns the
  unified 'nestwx-serve-stats' v2 envelope. 'plan'/'compare' requests
  with \"explain\":true append per-nest rank shares, predicted s/iter
  and a hop histogram; responses without it stay byte-identical to
  the cached plan bytes whether recording is on or off.

LINT:
  Repo-specific static analysis: determinism rules (NW-D001..D006 — no
  unordered iteration, wall-clock reads, entropy or ambient filesystem
  paths on planner/replay paths) and robustness rules (NW-S001..S007 —
  no panicking calls on the request path, a single poisoning policy, no
  blocking syscalls in lock-holding modules, socket I/O confined to the
  serve readiness loop and the fleet transport module, deadlines and
  span timestamps through the clock shim). Deny by default; suppress
  diagnostics via 'RULE FILE:LINE[:COL] -- reason' lines in lint.allow
  (each entry must match exactly one diagnostic, so stale entries fail
  the run). Exits non-zero on any finding or allowlist error. See
  DESIGN.md's invariant catalog for the full rule list."
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_machine_specs() {
        assert_eq!(
            parse_machine("bgl:1024").unwrap(),
            MachineSpec {
                family: Family::BgL,
                cores: 1024
            }
        );
        assert_eq!(parse_machine("bgp:4096").unwrap().cores, 4096);
        assert!(parse_machine("bgq:1024").is_err());
        assert!(parse_machine("bgl:1000").is_err()); // not a power of two
        assert!(parse_machine("bgl:8").is_err()); // too small
        assert!(parse_machine("bgl").is_err());
    }

    #[test]
    fn parse_parent_spec() {
        let d = parse_parent("286x307@24").unwrap();
        assert_eq!((d.nx, d.ny), (286, 307));
        assert!((d.dx_km - 24.0).abs() < 1e-12);
        assert!(parse_parent("286x307").is_err());
        assert!(parse_parent("286x307@-2").is_err());
    }

    #[test]
    fn parse_nest_specs() {
        let n = parse_nest("259x229r3@10,12").unwrap();
        assert_eq!(
            (n.nx, n.ny, n.refine_ratio, n.offset),
            (259, 229, 3, (10, 12))
        );
        assert_eq!(n.parent_nest, None);
        let c = parse_nest("90x90r3@5,6:in=0").unwrap();
        assert_eq!(c.parent_nest, Some(0));
        assert!(parse_nest("259x229@10,12").is_err()); // missing rR
        assert!(parse_nest("259x229r3@10").is_err()); // bad offset
    }

    #[test]
    fn parse_full_compare_command() {
        let args: Vec<String> = [
            "compare",
            "--machine",
            "bgl:64",
            "--parent",
            "286x307@24",
            "--nest",
            "200x200r3@10,12",
            "--iterations",
            "2",
            "--mapping",
            "multilevel",
            "--alloc",
            "naive",
            "--io",
            "split:2",
            "--json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let Command::Compare(a) = parse_args(&args).unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(a.iterations, 2);
        assert_eq!(a.mapping, MappingKind::MultiLevel);
        assert_eq!(a.alloc, AllocPolicy::NaiveProportional);
        assert_eq!(a.io, Some((IoMode::SplitFiles, 2)));
        assert!(a.json);
    }

    #[test]
    fn parse_rejects_missing_required() {
        let args: Vec<String> = ["plan", "--parent", "100x100@24"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&args).is_err());
        let args: Vec<String> = ["plan", "--machine", "bgl:64", "--parent", "100x100@24"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&args).is_err()); // no nests
    }

    #[test]
    fn run_plan_produces_output() {
        let args: Vec<String> = [
            "plan",
            "--machine",
            "bgl:64",
            "--parent",
            "286x307@24",
            "--nest",
            "200x200r3@10,12",
            "--nest",
            "150x160r3@80,80",
            "--alloc",
            "naive",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cmd = parse_args(&args).unwrap();
        let mut buf = Vec::new();
        run(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("nest 0"));
        assert!(text.contains("nest 1"));
    }

    #[test]
    fn run_compare_json_is_valid() {
        let args: Vec<String> = [
            "compare",
            "--machine",
            "bgl:32",
            "--parent",
            "150x150@24",
            "--nest",
            "100x100r3@5,5",
            "--iterations",
            "1",
            "--alloc",
            "naive",
            "--json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cmd = parse_args(&args).unwrap();
        let mut buf = Vec::new();
        run(cmd, &mut buf).unwrap();
        let v: serde_json::Value = serde_json::from_slice(&buf).unwrap();
        assert!(v["default_s_per_iter"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn machines_and_help() {
        let mut buf = Vec::new();
        run(Command::Machines, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("bgl"));
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
    }

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_obs_commands() {
        assert_eq!(
            parse_args(&argv(&["obs", "report", "run.json"])).unwrap(),
            Command::Obs(ObsCmd::Report {
                path: "run.json".into()
            })
        );
        assert_eq!(
            parse_args(&argv(&[
                "obs",
                "top",
                "run.json",
                "--by",
                "halo_wait",
                "-n",
                "3"
            ]))
            .unwrap(),
            Command::Obs(ObsCmd::Top {
                path: "run.json".into(),
                by: "halo_wait".into(),
                n: 3
            })
        );
        assert_eq!(
            parse_args(&argv(&["obs", "diff", "a.json", "b.json"])).unwrap(),
            Command::Obs(ObsCmd::Diff {
                a: "a.json".into(),
                b: "b.json".into()
            })
        );
        assert!(parse_args(&argv(&["obs"])).is_err());
        assert!(parse_args(&argv(&["obs", "report"])).is_err());
        assert!(parse_args(&argv(&["obs", "top", "run.json", "--by", "bogus"])).is_err());
        assert!(parse_args(&argv(&["obs", "diff", "a.json"])).is_err());
        // --obs-out is compare-only.
        assert!(parse_args(&argv(&[
            "plan",
            "--machine",
            "bgl:64",
            "--parent",
            "286x307@24",
            "--nest",
            "200x200r3@10,12",
            "--obs-out",
            "x"
        ]))
        .is_err());
    }

    #[test]
    fn parse_serve_commands() {
        let Command::Serve(defaults) = parse_args(&argv(&["serve"])).unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(defaults.addr, "127.0.0.1:7878");
        assert_eq!(defaults.workers, None);
        assert_eq!(defaults.queue, None);
        assert_eq!(defaults.cache, None);
        assert_eq!(defaults.max_conns, None);
        assert_eq!(defaults.readers, None);
        assert_eq!(defaults.deadline_ms, None);
        assert_eq!(defaults.rate, None);
        assert_eq!(defaults.idle_ms, None);
        let Command::Serve(a) = parse_args(&argv(&[
            "serve",
            "--addr",
            "0.0.0.0:9999",
            "--workers",
            "8",
            "--queue",
            "32",
            "--cache",
            "512",
            "--max-conns",
            "16",
            "--readers",
            "2",
            "--deadline-ms",
            "250",
            "--rate",
            "100",
            "--burst",
            "20",
            "--client-cap",
            "4096",
            "--predictors",
            "32",
            "--idle-ms",
            "0",
            "--lifetime-ms",
            "60000",
        ]))
        .unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(a.addr, "0.0.0.0:9999");
        assert_eq!(a.workers, Some(8));
        assert_eq!(a.queue, Some(32));
        assert_eq!(a.cache, Some(512));
        assert_eq!(a.max_conns, Some(16));
        assert_eq!(a.readers, Some(2));
        assert_eq!(a.deadline_ms, Some(250));
        assert_eq!(a.rate, Some(100));
        assert_eq!(a.burst, Some(20));
        assert_eq!(a.client_cap, Some(4096));
        assert_eq!(a.predictors, Some(32));
        assert_eq!(a.idle_ms, Some(0));
        assert_eq!(a.lifetime_ms, Some(60000));
        let cfg = a.to_config();
        assert_eq!(cfg.workers, 8);
        assert_eq!(cfg.queue_depth, 32);
        assert_eq!(cfg.cache_capacity, 512);
        assert_eq!(cfg.max_conns, 16);
        assert_eq!(cfg.readers, 2);
        assert_eq!(cfg.deadline_ms, 250);
        assert_eq!(cfg.rate, 100);
        assert_eq!(cfg.burst, 20);
        assert_eq!(cfg.client_cap, 4096);
        assert_eq!(cfg.predictors, 32);
        assert_eq!(cfg.idle_ms, 0);
        assert_eq!(cfg.lifetime_ms, 60000);
        assert!(parse_args(&argv(&["serve", "--workers", "0"])).is_err());
        assert!(parse_args(&argv(&["serve", "--queue"])).is_err());
        assert!(parse_args(&argv(&["serve", "--bogus"])).is_err());
        assert!(parse_args(&argv(&["serve", "--readers", "0"])).is_err());
        assert!(parse_args(&argv(&["serve", "--deadline-ms", "-1"])).is_err());
        assert!(parse_args(&argv(&["serve", "--rate"])).is_err());
    }

    #[test]
    fn parse_sweep_commands() {
        let Command::Sweep(a) = parse_args(&argv(&[
            "sweep",
            "--spec",
            "space.json",
            "--cache-dir",
            "/tmp/cache",
            "--iterations",
            "4",
            "--jobs",
            "3",
            "--out",
            "summary.json",
            "--json",
        ]))
        .unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(a.spec, "space.json");
        assert_eq!(a.cache_dir.as_deref(), Some("/tmp/cache"));
        assert_eq!(a.iterations, Some(4));
        assert_eq!(a.jobs, Some(3));
        assert_eq!(a.out.as_deref(), Some("summary.json"));
        assert!(a.json);
        let opts = a.to_options();
        assert_eq!(
            opts.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/cache"))
        );
        assert_eq!(opts.iterations, Some(4));
        assert_eq!(opts.jobs, Some(3));
        assert!(parse_args(&argv(&["sweep"])).is_err()); // --spec required
        assert!(parse_args(&argv(&["sweep", "--spec"])).is_err());
        assert!(parse_args(&argv(&["sweep", "--spec", "s.json", "--jobs", "0"])).is_err());
        assert!(parse_args(&argv(&["sweep", "--spec", "s.json", "--iterations", "0"])).is_err());
        assert!(parse_args(&argv(&["sweep", "--spec", "s.json", "--bogus"])).is_err());
    }

    #[test]
    fn run_sweep_end_to_end_with_cache_and_obs_report() {
        let dir = nestwx_core::TempDir::new("cli-sweep").unwrap();
        let spec_path = dir.path().join("space.json");
        let out_path = dir.path().join("summary.json");
        let cache_dir = dir.path().join("cache");
        std::fs::write(
            &spec_path,
            r#"{
                "machines": ["bgl:64"],
                "parents": ["286x307@24"],
                "nest_sets": [["150x150r3@10,12"]],
                "allocs": ["equal", "huffman"],
                "mappings": ["partition", "txyz"],
                "iterations": 1
            }"#,
        )
        .unwrap();
        let args = SweepArgs {
            spec: spec_path.to_str().unwrap().into(),
            cache_dir: Some(cache_dir.to_str().unwrap().into()),
            iterations: None,
            jobs: Some(2),
            out: Some(out_path.to_str().unwrap().into()),
            json: false,
        };
        let mut buf = Vec::new();
        run(Command::Sweep(args.clone()), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("swept 4 scenarios"), "{text}");
        assert!(text.contains("pareto front"), "{text}");
        assert!(text.contains("winner per region"), "{text}");

        // The --out envelope loads through `nestwx obs report`.
        let v = obs::load_summary(out_path.to_str().unwrap()).unwrap();
        assert_eq!(v["schema"].as_str(), Some(nestwx_obs::SWEEP_SCHEMA));
        let mut buf = Vec::new();
        run(
            Command::Obs(ObsCmd::Report {
                path: out_path.to_str().unwrap().into(),
            }),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("sweep summary"), "{text}");
        assert!(text.contains("winner per region"), "{text}");

        // Second run replays entirely from the disk cache.
        let mut buf = Vec::new();
        run(Command::Sweep(args), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("computed 0  disk hits 4"), "{text}");
    }

    #[test]
    fn parse_fleet_commands() {
        let Command::Fleet(a) = parse_args(&argv(&[
            "fleet",
            "--machine",
            "bgl:64",
            "--parent",
            "96x84@24",
            "--nest",
            "40x40r3@6,6",
            "--workers",
            "4",
            "--iterations",
            "3",
            "--check",
            "--json",
            "--obs-out",
            "fleet.json",
        ]))
        .unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(a.workers, Some(4));
        assert_eq!(a.iterations, 3);
        assert!(a.check);
        assert!(a.json);
        assert_eq!(a.obs_out.as_deref(), Some("fleet.json"));
        // Defaults: workers fall back to NESTWX_FLEET_WORKERS at run time.
        let Command::Fleet(d) = parse_args(&argv(&[
            "fleet",
            "--machine",
            "bgl:64",
            "--parent",
            "96x84@24",
            "--nest",
            "40x40r3@6,6",
        ]))
        .unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(d.workers, None);
        assert_eq!(d.iterations, 5);
        assert!(!d.check);
        // Bounds and required flags.
        let base = ["fleet", "--machine", "bgl:64", "--parent", "96x84@24"];
        let with = |extra: &[&str]| {
            let mut v: Vec<&str> = base.to_vec();
            v.extend_from_slice(extra);
            parse_args(&argv(&v))
        };
        assert!(with(&["--nest", "40x40r3@6,6", "--workers", "0"]).is_err());
        assert!(with(&["--nest", "40x40r3@6,6", "--workers", "17"]).is_err());
        assert!(with(&["--nest", "40x40r3@6,6", "--iterations", "0"]).is_err());
        assert!(with(&["--nest", "40x40r3@6,6", "--bogus"]).is_err());
        assert!(with(&[]).is_err()); // no nests
        assert!(parse_args(&argv(&["fleet", "--nest", "40x40r3@6,6"])).is_err());
        // fleet-worker needs a coordinator address.
        assert_eq!(
            parse_args(&argv(&["fleet-worker", "--connect", "127.0.0.1:9"])).unwrap(),
            Command::FleetWorker(FleetWorkerArgs {
                connect: "127.0.0.1:9".into()
            })
        );
        assert!(parse_args(&argv(&["fleet-worker"])).is_err());
        assert!(parse_args(&argv(&["fleet-worker", "--connect"])).is_err());
        assert!(parse_args(&argv(&["fleet-worker", "--bogus"])).is_err());
    }

    #[test]
    fn parse_lint_commands() {
        assert_eq!(
            parse_args(&argv(&["lint"])).unwrap(),
            Command::Lint(LintArgs::default())
        );
        assert_eq!(
            parse_args(&argv(&["lint", "--json"])).unwrap(),
            Command::Lint(LintArgs {
                json: true,
                ..LintArgs::default()
            })
        );
        assert_eq!(
            parse_args(&argv(&[
                "lint",
                "--root",
                "sub/dir",
                "--allow",
                "my.allow",
                "--fixtures"
            ]))
            .unwrap(),
            Command::Lint(LintArgs {
                root: Some("sub/dir".into()),
                allow: Some("my.allow".into()),
                json: false,
                fixtures: true,
                ..LintArgs::default()
            })
        );
        assert_eq!(
            parse_args(&argv(&[
                "lint",
                "--graph",
                "--sarif",
                "out.sarif",
                "--baseline",
                "base.json"
            ]))
            .unwrap(),
            Command::Lint(LintArgs {
                graph: true,
                sarif: Some("out.sarif".into()),
                baseline: Some("base.json".into()),
                ..LintArgs::default()
            })
        );
        assert_eq!(
            parse_args(&argv(&["lint", "--write-baseline", "base.json"])).unwrap(),
            Command::Lint(LintArgs {
                write_baseline: Some("base.json".into()),
                ..LintArgs::default()
            })
        );
        assert!(parse_args(&argv(&["lint", "--root"])).is_err());
        assert!(parse_args(&argv(&["lint", "--sarif"])).is_err());
        assert!(parse_args(&argv(&[
            "lint",
            "--baseline",
            "a.json",
            "--write-baseline",
            "b.json"
        ]))
        .is_err());
        assert!(parse_args(&argv(&["lint", "--bogus"])).is_err());
    }

    #[test]
    fn lint_run_reports_fixture_findings() {
        // Fixture tree: every known-bad snippet must fail the run, and the
        // JSON report must carry machine-readable rule ids.
        let fixtures = concat!(env!("CARGO_MANIFEST_DIR"), "/../analyze/tests/fixtures");
        let mut buf = Vec::new();
        let res = run(
            Command::Lint(LintArgs {
                root: Some(fixtures.into()),
                allow: None,
                json: true,
                fixtures: true,
                ..LintArgs::default()
            }),
            &mut buf,
        );
        let err = res.expect_err("fixtures must lint non-zero");
        assert!(err.to_string().contains("lint failed"), "{err}");
        let out = String::from_utf8(buf).unwrap();
        assert!(out.contains("NW-D001"), "{out}");
        assert!(out.contains("NW-S003"), "{out}");
    }

    #[test]
    fn serve_command_round_trips_a_session() {
        // End to end through `run`: spawn on an ephemeral port, drive one
        // plan request and a shutdown over the wire, then check the drain
        // report line and a clean exit.
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel();
        let server = std::thread::spawn(move || {
            let mut buf = SignallingBuf {
                inner: Vec::new(),
                tx: Some(tx),
            };
            let res = run(
                Command::Serve(ServeArgs {
                    addr: "127.0.0.1:0".into(),
                    workers: Some(2),
                    queue: None,
                    cache: None,
                    max_conns: None,
                    readers: None,
                    deadline_ms: None,
                    rate: None,
                    burst: None,
                    client_cap: None,
                    predictors: None,
                    idle_ms: None,
                    lifetime_ms: None,
                    cache_dir: None,
                }),
                &mut buf,
            );
            (res.is_ok(), String::from_utf8(buf.inner).unwrap())
        });
        // First output line carries the bound address.
        let addr: String = rx.recv().unwrap();
        let mut client = nestwx_serve::Client::connect(addr).unwrap();
        let resp = client
            .send_line(
                "{\"v\":1,\"id\":\"p\",\"op\":\"plan\",\"params\":{\"machine\":\"bgl:64\",\
                 \"parent\":{\"nx\":286,\"ny\":307,\"dx_km\":24.0},\
                 \"nests\":[{\"nx\":150,\"ny\":150,\"r\":3,\"ox\":10,\"oy\":12}],\
                 \"alloc\":\"naive\"}}",
            )
            .unwrap();
        assert!(resp.ok(), "plan failed: {}", resp.raw);
        let resp = client.send_line("{\"v\":1,\"op\":\"shutdown\"}").unwrap();
        assert!(resp.ok());
        let (clean, output) = server.join().unwrap();
        assert!(clean, "serve exited uncleanly: {output}");
        assert!(output.contains("\"queue_residual\":0"), "{output}");
    }

    /// Test writer that reports the bound address from the first line.
    struct SignallingBuf {
        inner: Vec<u8>,
        tx: Option<std::sync::mpsc::Sender<String>>,
    }

    impl std::io::Write for SignallingBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.inner.extend_from_slice(buf);
            if let Some(tx) = self
                .tx
                .take_if(|_| std::str::from_utf8(&self.inner).is_ok_and(|s| s.contains('\n')))
            {
                let line = String::from_utf8_lossy(&self.inner);
                let addr = line
                    .trim()
                    .strip_prefix("listening on ")
                    .unwrap_or_default()
                    .to_string();
                let _ = tx.send(addr);
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn obs_out_report_reproduces_allocator_ratios() {
        // The ISSUE acceptance check: record a compare run, then verify the
        // written summary's per-nest time ratios match the ratios the
        // allocator planned with, to within rounding/model noise.
        let dir = nestwx_core::TempDir::new("cli-obs").unwrap();
        let prefix = dir.path().join("acceptance");
        let prefix = prefix.to_str().unwrap();
        let args = argv(&[
            "compare",
            "--machine",
            "bgl:64",
            "--parent",
            "286x307@24",
            "--nest",
            "150x150r3@10,12",
            "--nest",
            "150x150r3@120,120",
            "--iterations",
            "2",
            "--alloc",
            "naive",
            "--obs-out",
            prefix,
        ]);
        let cmd = parse_args(&args).unwrap();
        let mut buf = Vec::new();
        run(cmd, &mut buf).unwrap();

        // What the allocator was given.
        let machine = parse_machine("bgl:64").unwrap().build();
        let parent = parse_parent("286x307@24").unwrap();
        let nests = vec![
            parse_nest("150x150r3@10,12").unwrap(),
            parse_nest("150x150r3@120,120").unwrap(),
        ];
        let plan = Planner::new(machine)
            .strategy(Strategy::Concurrent)
            .alloc_policy(AllocPolicy::NaiveProportional)
            .plan(&parent, &nests)
            .unwrap();
        assert_eq!(plan.predicted_ratios.len(), 2);

        // The sequential default run steps each nest in turn, so its
        // recorded per-nest time split is directly comparable to the
        // ratios the allocator planned from. (The concurrent planned run
        // executes all siblings in one step; its steps carry no single
        // nest id.)
        let default_path = format!("{prefix}.default.json");
        let v = obs::load_summary(&default_path).unwrap();
        let per_nest = v["analysis"]["per_nest"].as_array().unwrap();
        assert_eq!(per_nest.len(), 2);
        for (n, predicted) in per_nest.iter().zip(&plan.predicted_ratios) {
            let recorded = n["time_ratio"].as_f64().unwrap();
            assert!(
                (recorded - predicted).abs() < 0.03,
                "nest ratio {recorded:.4} vs planned {predicted:.4}"
            );
        }

        // The report renders and carries the analysis blocks.
        let mut buf = Vec::new();
        obs::report(&v, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("load imbalance"));
        assert!(text.contains("ratio"));

        // diff against the planned run goes through `run` end to end.
        let planned_path = format!("{prefix}.planned.json");
        let mut buf = Vec::new();
        run(
            Command::Obs(ObsCmd::Diff {
                a: default_path.clone(),
                b: planned_path.clone(),
            }),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("metrics differ"));
        // top via `run` as well.
        let mut buf = Vec::new();
        run(
            Command::Obs(ObsCmd::Top {
                path: planned_path.clone(),
                by: "halo_wait".into(),
                n: 5,
            }),
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("top 5 steps"));
    }
}

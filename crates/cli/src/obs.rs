//! The `nestwx obs` subcommand family: human-readable analysis of the
//! versioned summary-JSON files the recorder writes (`report`), the most
//! expensive recorded steps (`top`), and per-metric deltas between two
//! runs (`diff`).
//!
//! All three consume the `nestwx-obs-run-summary` envelope (see DESIGN.md
//! "Summary JSON schema"); they additionally understand the
//! `nestwx-obs-sweep-summary` envelope `nestwx sweep` writes, the
//! `nestwx-obs-serve-summary` envelope the serve flight recorder's
//! `trace` endpoint returns, and the `nestwx-obs-fleet-summary` envelope
//! `nestwx fleet` / the serve `execute` endpoint produce. An unknown
//! schema tag, a serve-schema version mismatch, or a parse failure is an
//! error, so CI can gate on it.

use nestwx_netsim::SUMMARY_SCHEMA;
use nestwx_obs::serve::check_serve_schema;
use nestwx_obs::{FLEET_SCHEMA, SERVE_SCHEMA, SWEEP_SCHEMA};
use serde_json::Value;
use std::error::Error;
use std::fmt::Write as _;

/// The `obs` subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsCmd {
    /// Render one run's summary as tables.
    Report {
        /// Path of a summary JSON file.
        path: String,
    },
    /// List the most expensive recorded steps.
    Top {
        /// Path of a summary JSON file.
        path: String,
        /// Step metric to rank by.
        by: String,
        /// Rows to print.
        n: usize,
    },
    /// Per-metric deltas between two runs.
    Diff {
        /// Baseline summary JSON.
        a: String,
        /// Candidate summary JSON.
        b: String,
    },
}

/// Loads a summary file and validates the envelope (schema tag + version).
pub fn load_summary(path: &str) -> Result<Value, Box<dyn Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let v: Value =
        serde_json::from_str(&text).map_err(|e| format!("'{path}' is not valid JSON: {e:?}"))?;
    let schema = v
        .get("schema")
        .and_then(|s| s.as_str())
        .ok_or_else(|| format!("'{path}' has no 'schema' tag (not a run summary?)"))?;
    if schema == SERVE_SCHEMA {
        // Serve envelopes carry an exact-version contract: a reader that
        // tolerated future versions would silently misread renamed
        // counters, so a mismatch is a hard error.
        check_serve_schema(&v).map_err(|e| format!("'{path}': {e}"))?;
        return Ok(v);
    }
    if schema != SUMMARY_SCHEMA && schema != SWEEP_SCHEMA && schema != FLEET_SCHEMA {
        return Err(format!(
            "'{path}' has schema '{schema}', expected '{SUMMARY_SCHEMA}', '{SWEEP_SCHEMA}', \
             '{FLEET_SCHEMA}' or '{SERVE_SCHEMA}'"
        )
        .into());
    }
    v.get("version")
        .and_then(|x| x.as_u64())
        .ok_or_else(|| format!("'{path}' has no 'version' field"))?;
    Ok(v)
}

fn f(v: &Value, path: &[&str]) -> f64 {
    let mut cur = v;
    for k in path {
        match cur.get(k) {
            Some(next) => cur = next,
            None => return 0.0,
        }
    }
    cur.as_f64().unwrap_or(0.0)
}

fn fmt_si(x: f64) -> String {
    let ax = x.abs();
    if ax == 0.0 {
        "0".into()
    } else if ax >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if ax >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if ax >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else if ax >= 1.0 {
        format!("{x:.3}")
    } else if ax >= 1e-3 {
        format!("{:.3}m", x * 1e3)
    } else if ax >= 1e-6 {
        format!("{:.3}u", x * 1e6)
    } else {
        format!("{x:.3e}")
    }
}

fn hist_row(name: &str, h: &Value) -> String {
    format!(
        "  {name:<14} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        f(h, &["count"]) as u64,
        fmt_si(f(h, &["mean"])),
        fmt_si(f(h, &["p50"])),
        fmt_si(f(h, &["p90"])),
        fmt_si(f(h, &["p99"])),
        fmt_si(f(h, &["max"])),
    )
}

/// `nestwx obs report FILE` — renders the run's summary, histogram,
/// per-nest and link tables; sweep summaries get counts, the Pareto
/// front and the winner table instead.
pub fn report(v: &Value, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    if v.get("schema").and_then(Value::as_str) == Some(SWEEP_SCHEMA) {
        return sweep_report(v, out);
    }
    if v.get("schema").and_then(Value::as_str) == Some(SERVE_SCHEMA) {
        return serve_report(v, out);
    }
    if v.get("schema").and_then(Value::as_str) == Some(FLEET_SCHEMA) {
        return fleet_report(v, out);
    }
    let s = v.get("summary").ok_or("missing 'summary' block")?;
    writeln!(out, "run summary (schema v{})", f(v, &["version"]) as u64)?;
    writeln!(
        out,
        "  steps {}  compute {}s  mpi_wait {}s  io {}s",
        f(s, &["steps"]) as u64,
        fmt_si(f(s, &["compute"])),
        fmt_si(f(s, &["halo_wait"])),
        fmt_si(f(s, &["io_time"])),
    )?;
    writeln!(
        out,
        "  messages {}  bytes {}  avg hops {:.2}  stall {}s",
        f(s, &["messages"]) as u64,
        fmt_si(f(s, &["bytes"])),
        if f(s, &["transfers"]) > 0.0 {
            f(s, &["hops"]) / f(s, &["transfers"])
        } else {
            0.0
        },
        fmt_si(f(s, &["stall"])),
    )?;

    let ring = v.get("ring").ok_or("missing 'ring' block")?;
    let dropped = f(ring, &["dropped"]) as u64;
    writeln!(
        out,
        "  ring: {} of {} steps retained, {} dropped{}",
        f(ring, &["retained"]) as u64,
        f(ring, &["capacity"]) as u64,
        dropped,
        if dropped > 0 {
            "  (trace truncated!)"
        } else {
            ""
        },
    )?;

    if let Some(hists) = v.get("hists") {
        writeln!(out)?;
        writeln!(
            out,
            "  {:<14} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "histogram", "count", "mean", "p50", "p90", "p99", "max"
        )?;
        if let Some(h) = hists.get("step_time") {
            writeln!(out, "{}", hist_row("step_time", h))?;
        }
        if let Some(h) = hists.get("rank_mpi_wait") {
            writeln!(out, "{}", hist_row("rank_mpi_wait", h))?;
        }
        if let Some(h) = hists.get("msg_latency") {
            writeln!(out, "{}", hist_row("msg_latency", h))?;
        }
    }

    let analysis = v.get("analysis").ok_or("missing 'analysis' block")?;
    writeln!(out)?;
    writeln!(
        out,
        "  load imbalance (max/mean rank busy): {:.3}",
        f(analysis, &["overall_imbalance"])
    )?;
    if let Some(nests) = analysis.get("per_nest").and_then(|n| n.as_array()) {
        if !nests.is_empty() {
            writeln!(
                out,
                "  {:<6} {:>6} {:>9} {:>10} {:>10} {:>7}",
                "nest", "steps", "time", "ratio", "imbalance", "wait%"
            )?;
            for n in nests {
                let time = f(n, &["time"]);
                let wait_pct = if time > 0.0 {
                    100.0 * f(n, &["halo_wait"]) / (f(n, &["compute"]) + f(n, &["halo_wait"]))
                } else {
                    0.0
                };
                writeln!(
                    out,
                    "  {:<6} {:>6} {:>9} {:>10.4} {:>10.3} {:>6.1}%",
                    f(n, &["nest"]) as u64,
                    f(n, &["steps"]) as u64,
                    fmt_si(time),
                    f(n, &["time_ratio"]),
                    f(n, &["imbalance"]),
                    wait_pct,
                )?;
            }
        }
    }
    if let Some(ranks) = analysis.get("critical_ranks").and_then(|r| r.as_array()) {
        if !ranks.is_empty() {
            let mut line = String::from("  critical-path ranks:");
            for r in ranks {
                let _ = write!(
                    line,
                    " r{} ({:.0}%)",
                    f(r, &["rank"]) as u64,
                    100.0 * f(r, &["share"])
                );
            }
            writeln!(out, "{line}")?;
        }
    }
    if let Some(links) = analysis.get("links") {
        writeln!(
            out,
            "  links: {} of {} active, mean util {:.4}, max {:.4}, p99 {:.4}",
            f(links, &["active_links"]) as u64,
            f(links, &["links"]) as u64,
            f(links, &["mean_util"]),
            f(links, &["max_util"]),
            f(links, &["p99_util"]),
        )?;
        if let Some(top) = links.get("top").and_then(|t| t.as_array()) {
            for l in top {
                writeln!(
                    out,
                    "    link {:>5}  node ({},{},{}) {}  busy {}s  util {:.4}",
                    f(l, &["link"]) as u64,
                    f(l, &["coord_x"]) as u64,
                    f(l, &["coord_y"]) as u64,
                    f(l, &["coord_z"]) as u64,
                    l.get("dim").and_then(|d| d.as_str()).unwrap_or("?"),
                    fmt_si(f(l, &["busy"])),
                    f(l, &["util"]),
                )?;
            }
        }
    }
    Ok(())
}

/// Renders a `nestwx sweep` summary: run counts, disk-cache counters,
/// the Pareto front and the winner-per-region table.
fn sweep_report(v: &Value, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    writeln!(out, "sweep summary (schema v{})", f(v, &["version"]) as u64)?;
    writeln!(
        out,
        "  scenarios: {} unique of {} expanded ({} duplicate), {} iterations each",
        f(v, &["unique"]) as u64,
        f(v, &["expanded"]) as u64,
        f(v, &["duplicates"]) as u64,
        f(v, &["iterations"]) as u64,
    )?;
    writeln!(
        out,
        "  computed {}  disk hits {}  errors {}  ({} jobs, {}s)",
        f(v, &["computed"]) as u64,
        f(v, &["disk_hits"]) as u64,
        f(v, &["errors"]) as u64,
        f(v, &["jobs"]) as u64,
        fmt_si(f(v, &["elapsed_seconds"])),
    )?;
    writeln!(
        out,
        "  plans digest: {}",
        v.get("plans_digest").and_then(Value::as_str).unwrap_or("?")
    )?;
    if let Some(d) = v.get("disk") {
        writeln!(
            out,
            "  disk cache: {} hits, {} misses, {} writes, {} corrupt",
            f(d, &["hits"]) as u64,
            f(d, &["misses"]) as u64,
            f(d, &["writes"]) as u64,
            f(d, &["corrupt"]) as u64,
        )?;
    }
    let token = |p: &Value, key: &str| -> String {
        p.get(key)
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string()
    };
    if let Some(front) = v.get("pareto").and_then(Value::as_array) {
        writeln!(out)?;
        writeln!(
            out,
            "  pareto front  {:>7} {:>10} {:<24} region",
            "ranks", "s/iter", "machine strat/alloc/map"
        )?;
        for p in front {
            writeln!(
                out,
                "  {:13} {:>7} {:>10.4} {:<24} {}",
                "",
                f(p, &["ranks"]) as u64,
                f(p, &["planned_s_per_iter"]),
                format!(
                    "{} {}/{}/{}",
                    token(p, "machine"),
                    token(p, "strategy"),
                    token(p, "alloc"),
                    token(p, "mapping")
                ),
                token(p, "region"),
            )?;
        }
    }
    if let Some(winners) = v.get("winners").and_then(Value::as_array) {
        writeln!(out)?;
        writeln!(out, "  winner per region:")?;
        for w in winners {
            writeln!(
                out,
                "    {}  ->  {}:{} {}/{}/{}  {:.4} s/iter  ({} scenarios, worst +{:.1}%)",
                token(w, "region"),
                token(w, "machine"),
                f(w, &["ranks"]) as u64,
                token(w, "strategy"),
                token(w, "alloc"),
                token(w, "mapping"),
                f(w, &["planned_s_per_iter"]),
                f(w, &["scenarios"]) as u64,
                f(w, &["spread_pct"]),
            )?;
        }
    }
    Ok(())
}

/// Renders a fleet envelope: worker count, deterministic digests, and
/// per-side socket traffic with stall attribution.
fn fleet_report(v: &Value, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    writeln!(out, "fleet summary (schema v{})", f(v, &["version"]) as u64)?;
    writeln!(
        out,
        "  {} workers x {} iterations, elapsed {}s",
        f(v, &["workers"]) as u64,
        f(v, &["iterations"]) as u64,
        fmt_si(f(v, &["elapsed_s"])),
    )?;
    writeln!(
        out,
        "  digest {}  parent {}",
        v.get("digest").and_then(Value::as_str).unwrap_or("?"),
        v.get("parent_digest")
            .and_then(Value::as_str)
            .unwrap_or("?"),
    )?;
    writeln!(
        out,
        "  logical halo bytes {}",
        fmt_si(f(v, &["logical_halo_bytes"])),
    )?;
    writeln!(out)?;
    writeln!(
        out,
        "  {:<18} {:>9} {:>9} {:>7} {:>7} {:>9} {:>9} {:>9}",
        "side", "bytes_in", "bytes_out", "fr_in", "fr_out", "compute", "wait", "p99wait"
    )?;
    let side_row = |name: &str, s: &Value| -> String {
        format!(
            "  {name:<18} {:>9} {:>9} {:>7} {:>7} {:>9} {:>9} {:>9}",
            fmt_si(f(s, &["bytes_in"])),
            fmt_si(f(s, &["bytes_out"])),
            f(s, &["frames_in"]) as u64,
            f(s, &["frames_out"]) as u64,
            fmt_si(f(s, &["compute_s"])),
            fmt_si(f(s, &["wait_s"])),
            fmt_si(f(s, &["recv_wait", "p99"])),
        )
    };
    if let Some(c) = v.get("coordinator") {
        writeln!(out, "{}", side_row("coordinator", c))?;
    }
    if let Some(rows) = v.get("worker_rows").and_then(Value::as_array) {
        for w in rows {
            let nests: Vec<String> = w
                .get("nests")
                .and_then(Value::as_array)
                .map(|a| {
                    a.iter()
                        .filter_map(|n| n.as_u64())
                        .map(|n| n.to_string())
                        .collect()
                })
                .unwrap_or_default();
            let name = format!("worker {} [{}]", f(w, &["slot"]) as u64, nests.join(","));
            if let Some(obs) = w.get("obs") {
                writeln!(out, "{}", side_row(&name, obs))?;
            }
        }
    }
    Ok(())
}

/// Renders a serve flight-recorder trace envelope: recorder state, drain
/// and drop counters, path/op breakdowns and the slow-request log.
fn serve_report(v: &Value, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let s = v.get("summary").ok_or("missing 'summary' block")?;
    writeln!(
        out,
        "serve trace summary (schema v{})",
        f(v, &["version"]) as u64
    )?;
    writeln!(
        out,
        "  recording {}  readers {}  ring capacity {}",
        if s.get("recording").and_then(Value::as_bool).unwrap_or(false) {
            "on"
        } else {
            "off"
        },
        f(s, &["readers"]) as u64,
        f(s, &["ring_capacity"]) as u64,
    )?;
    let drained_dropped = f(s, &["dropped"]) as u64;
    writeln!(
        out,
        "  drained {} spans, {} dropped this drain{}",
        f(s, &["drained"]) as u64,
        drained_dropped,
        if drained_dropped > 0 {
            "  (trace truncated!)"
        } else {
            ""
        },
    )?;
    let spans_cut = f(s, &["spans_truncated"]) as u64;
    let slow_cut = f(s, &["slow_truncated"]) as u64;
    if spans_cut + slow_cut > 0 {
        writeln!(
            out,
            "  envelope capped: {spans_cut} span(s) + {slow_cut} slow entr(ies) \
             omitted to fit one protocol line (aggregates still cover them)",
        )?;
    }
    writeln!(
        out,
        "  lifetime: {} recorded, {} dropped, {} slow (threshold {}us)",
        f(s, &["recorded_total"]) as u64,
        f(s, &["dropped_total"]) as u64,
        f(s, &["slow_total"]) as u64,
        f(s, &["slow_threshold_us"]) as u64,
    )?;
    if let Some(bp) = s.get("by_path") {
        writeln!(
            out,
            "  by path: hot {}  inline {}  worker {}  deadline {}",
            f(bp, &["hot"]) as u64,
            f(bp, &["inline"]) as u64,
            f(bp, &["worker"]) as u64,
            f(bp, &["deadline"]) as u64,
        )?;
    }
    if let Some(Value::Object(ops)) = s.get("by_op") {
        let mut line = String::from("  by op:");
        for (op, n) in ops {
            let _ = write!(line, "  {op} {}", n.as_u64().unwrap_or(0));
        }
        writeln!(out, "{line}")?;
    }
    let span_row = |sp: &Value| -> String {
        format!(
            "    {:<8} {:<8} {:<4} {:>9} {:>8} {:>8} {:>8} {:>8}",
            sp.get("op").and_then(Value::as_str).unwrap_or("?"),
            sp.get("path").and_then(Value::as_str).unwrap_or("?"),
            if sp.get("ok").and_then(Value::as_bool).unwrap_or(false) {
                "ok"
            } else {
                "err"
            },
            fmt_si(f(sp, &["total_us"]) * 1e-6),
            fmt_si(f(sp, &["parse_us"]) * 1e-6),
            fmt_si(f(sp, &["wait_us"]) * 1e-6),
            fmt_si(f(sp, &["work_us"]) * 1e-6),
            fmt_si(f(sp, &["write_us"]) * 1e-6),
        )
    };
    if let Some(slow) = v.get("slow").and_then(Value::as_array) {
        if !slow.is_empty() {
            writeln!(out)?;
            writeln!(
                out,
                "  slow requests ({}):\n    {:<8} {:<8} {:<4} {:>9} {:>8} {:>8} {:>8} {:>8}",
                slow.len(),
                "op",
                "path",
                "ok",
                "total",
                "parse",
                "wait",
                "work",
                "write"
            )?;
            for sp in slow {
                writeln!(out, "{}", span_row(sp))?;
            }
        }
    }
    Ok(())
}

/// Step metrics `top` can rank by.
pub const TOP_METRICS: &[&str] = &[
    "duration",
    "compute",
    "halo_wait",
    "bytes",
    "messages",
    "hops",
    "stall",
];

/// Span metrics `top` can rank serve trace envelopes by.
pub const SERVE_TOP_METRICS: &[&str] = &["total", "parse", "wait", "work", "write"];

/// `nestwx obs top` on a serve trace envelope: the N most expensive
/// drained spans by the given lifecycle stage.
fn serve_top(
    v: &Value,
    by: &str,
    n: usize,
    out: &mut dyn std::io::Write,
) -> Result<(), Box<dyn Error>> {
    if !SERVE_TOP_METRICS.contains(&by) {
        return Err(format!(
            "unknown span metric '{by}' (one of {})",
            SERVE_TOP_METRICS.join("|")
        )
        .into());
    }
    let spans = v
        .get("spans")
        .and_then(Value::as_array)
        .ok_or("missing 'spans' array")?;
    let field = format!("{by}_us");
    let mut order: Vec<&Value> = spans.iter().collect();
    order.sort_by(|a, b| {
        f(b, &[field.as_str()])
            .partial_cmp(&f(a, &[field.as_str()]))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    writeln!(
        out,
        "top {} spans by {by} ({} drained):",
        n.min(order.len()),
        order.len()
    )?;
    writeln!(
        out,
        "  {:<8} {:<8} {:<4} {:>10} {:>9} {:>9} {:>9}",
        "op", "path", "ok", by, "total", "wait", "work"
    )?;
    for s in order.iter().take(n) {
        writeln!(
            out,
            "  {:<8} {:<8} {:<4} {:>10} {:>9} {:>9} {:>9}",
            s.get("op").and_then(Value::as_str).unwrap_or("?"),
            s.get("path").and_then(Value::as_str).unwrap_or("?"),
            if s.get("ok").and_then(Value::as_bool).unwrap_or(false) {
                "ok"
            } else {
                "err"
            },
            fmt_si(f(s, &[field.as_str()]) * 1e-6),
            fmt_si(f(s, &["total_us"]) * 1e-6),
            fmt_si(f(s, &["wait_us"]) * 1e-6),
            fmt_si(f(s, &["work_us"]) * 1e-6),
        )?;
    }
    Ok(())
}

/// `nestwx obs top FILE --by METRIC -n N` — the N most expensive retained
/// steps by the given metric.
pub fn top(
    v: &Value,
    by: &str,
    n: usize,
    out: &mut dyn std::io::Write,
) -> Result<(), Box<dyn Error>> {
    if v.get("schema").and_then(Value::as_str) == Some(SERVE_SCHEMA) {
        return serve_top(v, by, n, out);
    }
    if !TOP_METRICS.contains(&by) {
        return Err(format!("unknown metric '{by}' (one of {})", TOP_METRICS.join("|")).into());
    }
    let steps = v
        .get("ring")
        .and_then(|r| r.get("steps"))
        .and_then(|s| s.as_array())
        .ok_or("missing 'ring.steps' array")?;
    let metric = |s: &Value| -> f64 {
        if by == "duration" {
            f(s, &["end"]) - f(s, &["start"])
        } else {
            f(s, &[by])
        }
    };
    let mut order: Vec<&Value> = steps.iter().collect();
    order.sort_by(|a, b| {
        metric(b)
            .partial_cmp(&metric(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    writeln!(
        out,
        "top {} steps by {by} ({} retained):",
        n.min(order.len()),
        order.len()
    )?;
    writeln!(
        out,
        "  {:>6} {:<7} {:>5} {:>10} {:>9} {:>9} {:>9}",
        "step", "phase", "nest", by, "compute", "wait", "bytes"
    )?;
    for s in order.iter().take(n) {
        writeln!(
            out,
            "  {:>6} {:<7} {:>5} {:>10} {:>9} {:>9} {:>9}",
            f(s, &["step"]) as u64,
            s.get("phase").and_then(|p| p.as_str()).unwrap_or("?"),
            s.get("nest").and_then(|x| x.as_f64()).unwrap_or(-1.0) as i64,
            fmt_si(metric(s)),
            fmt_si(f(s, &["compute"])),
            fmt_si(f(s, &["halo_wait"])),
            fmt_si(f(s, &["bytes"])),
        )?;
    }
    Ok(())
}

/// Flattens every numeric leaf into `prefix.key` → value. Arrays of
/// objects are indexed; the (potentially huge) `ring.steps` array is
/// skipped — `diff` compares aggregates, not individual steps — and the
/// serve envelope's `spans`/`slow` arrays collapse to their lengths for
/// the same reason.
fn flatten(v: &Value, prefix: &str, out: &mut Vec<(String, f64)>) {
    match v {
        Value::Number(x) => out.push((prefix.to_string(), *x)),
        Value::Object(fields) => {
            for (k, val) in fields {
                if prefix.is_empty() && k == "ring" {
                    // Only retention counters, not the step array.
                    for stat in ["capacity", "retained", "dropped"] {
                        if let Some(x) = val.get(stat).and_then(|x| x.as_f64()) {
                            out.push((format!("ring.{stat}"), x));
                        }
                    }
                    continue;
                }
                if prefix.is_empty() && (k == "spans" || k == "slow") {
                    if let Some(items) = val.as_array() {
                        out.push((format!("{k}.count"), items.len() as f64));
                        continue;
                    }
                }
                let p = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(val, &p, out);
            }
        }
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten(item, &format!("{prefix}[{i}]"), out);
            }
        }
        _ => {}
    }
}

/// `nestwx obs diff A B` — per-metric deltas between two run summaries.
pub fn diff(a: &Value, b: &Value, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let mut fa = Vec::new();
    let mut fb = Vec::new();
    flatten(a, "", &mut fa);
    flatten(b, "", &mut fb);
    let lookup_b: std::collections::HashMap<&str, f64> =
        fb.iter().map(|(k, x)| (k.as_str(), *x)).collect();
    let keys_a: std::collections::HashSet<&str> = fa.iter().map(|(k, _)| k.as_str()).collect();

    writeln!(
        out,
        "  {:<44} {:>12} {:>12} {:>12} {:>9}",
        "metric", "a", "b", "delta", "pct"
    )?;
    let mut changed = 0usize;
    for (k, xa) in &fa {
        let Some(&xb) = lookup_b.get(k.as_str()) else {
            writeln!(
                out,
                "  {k:<44} {:>12} {:>12}      (only in a)",
                fmt_si(*xa),
                "-"
            )?;
            continue;
        };
        if xa == &xb {
            continue;
        }
        changed += 1;
        let delta = xb - xa;
        let pct = if *xa != 0.0 {
            format!("{:+.2}%", 100.0 * delta / xa)
        } else {
            "n/a".into()
        };
        writeln!(
            out,
            "  {:<44} {:>12} {:>12} {:>12} {:>9}",
            k,
            fmt_si(*xa),
            fmt_si(xb),
            fmt_si(delta),
            pct
        )?;
    }
    for (k, xb) in &fb {
        if !keys_a.contains(k.as_str()) {
            writeln!(
                out,
                "  {k:<44} {:>12} {:>12}      (only in b)",
                "-",
                fmt_si(*xb)
            )?;
        }
    }
    writeln!(out, "  {changed} metrics differ")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nestwx_netsim::{ObsConfig, Recorder, StepMetrics, StepPhase};

    fn recorded_summary() -> Value {
        let mut rec = Recorder::new(ObsConfig::detailed());
        for i in 1..=4u64 {
            rec.record_step(StepMetrics {
                step: i,
                phase: StepPhase::Nest,
                nest: (i % 2) as i32,
                domains: 1,
                start: i as f64,
                end: i as f64 + 0.25 * i as f64,
                compute: 1.0,
                halo_wait: 0.5,
                bytes: 100.0 * i as f64,
                messages: 4,
                transfers: 4,
                hops: 8,
                stall: 0.0,
            });
            rec.record_rank_step(
                4,
                i,
                (i % 2) as i32,
                i as f64,
                i as f64 + 0.25 * i as f64,
                0..4u32,
                |g| 0.25 + 0.05 * g as f64,
                |_| 0.125,
            );
        }
        serde_json::from_str(&rec.summary_json()).unwrap()
    }

    #[test]
    fn report_renders_all_blocks() {
        let v = recorded_summary();
        let mut buf = Vec::new();
        report(&v, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("run summary"));
        assert!(text.contains("rank_mpi_wait"));
        assert!(text.contains("load imbalance"));
        assert!(text.contains("ratio"));
        assert!(text.contains("critical-path ranks"));
    }

    #[test]
    fn top_ranks_steps_by_metric() {
        let v = recorded_summary();
        let mut buf = Vec::new();
        top(&v, "duration", 2, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Step 4 has the longest duration (1.0s), then step 3 (0.75s).
        let pos4 = text.find("\n       4 ").expect("step 4 listed");
        let pos3 = text.find("\n       3 ").expect("step 3 listed");
        assert!(pos4 < pos3, "steps not sorted by duration:\n{text}");
        assert!(top(&v, "nonsense", 2, &mut Vec::new()).is_err());
    }

    #[test]
    fn diff_reports_changed_metrics_only() {
        let a = recorded_summary();
        let mut rec = Recorder::new(ObsConfig::counters());
        rec.record_step(StepMetrics {
            step: 1,
            phase: StepPhase::Parent,
            nest: -1,
            domains: 1,
            start: 0.0,
            end: 2.0,
            compute: 8.0,
            halo_wait: 0.25,
            bytes: 64.0,
            messages: 2,
            transfers: 2,
            hops: 4,
            stall: 0.0,
        });
        let b = serde_json::from_str(&rec.summary_json()).unwrap();
        let mut buf = Vec::new();
        diff(&a, &b, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("summary.compute"));
        assert!(text.contains("metrics differ"));
        // Identical runs diff to zero changed metrics.
        let mut buf = Vec::new();
        diff(&a, &a, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("0 metrics differ"));
    }

    fn serve_envelope(version: u64) -> String {
        format!(
            r#"{{"schema":"{SERVE_SCHEMA}","version":{version},
            "summary":{{"recording":true,"readers":2,"ring_capacity":64,
              "drained":3,"dropped":1,"recorded_total":9,"dropped_total":1,
              "slow_total":1,"slow_threshold_us":1000,
              "by_path":{{"hot":1,"inline":1,"worker":1,"deadline":0}},
              "by_op":{{"predict":0,"plan":2,"compare":0,"stats":1,"trace":0,"shutdown":0}}}},
            "spans":[
              {{"ts_us":10,"op":"plan","path":"worker","ok":true,"parse_us":5,"wait_us":40,"work_us":200,"total_us":260,"write_us":3,"written":true}},
              {{"ts_us":20,"op":"stats","path":"inline","ok":true,"parse_us":2,"wait_us":0,"work_us":8,"total_us":10,"write_us":1,"written":true}},
              {{"ts_us":30,"op":"plan","path":"hot","ok":true,"parse_us":0,"wait_us":0,"work_us":4,"total_us":4,"write_us":0,"written":false}}],
            "slow":[
              {{"ts_us":10,"op":"plan","path":"worker","ok":false,"parse_us":5,"wait_us":40,"work_us":2000,"total_us":2100,"write_us":3,"written":true}}]}}"#
        )
    }

    #[test]
    fn serve_report_renders_trace_envelope() {
        let v: Value = serde_json::from_str(&serve_envelope(1)).unwrap();
        let mut buf = Vec::new();
        report(&v, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("serve trace summary (schema v1)"), "{text}");
        assert!(text.contains("recording on"), "{text}");
        assert!(text.contains("trace truncated"), "{text}");
        assert!(text.contains("by path: hot 1  inline 1  worker 1  deadline 0"));
        assert!(text.contains("plan 2"), "{text}");
        assert!(text.contains("slow requests (1)"), "{text}");
    }

    #[test]
    fn serve_top_ranks_spans_by_stage() {
        let v: Value = serde_json::from_str(&serve_envelope(1)).unwrap();
        let mut buf = Vec::new();
        top(&v, "work", 2, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // The worker plan (200us work) outranks the inline stats (8us).
        let worker = text.find("worker").expect("worker span listed");
        let inline = text.find("inline").expect("inline span listed");
        assert!(worker < inline, "spans not sorted by work:\n{text}");
        // Step metrics don't apply to serve envelopes.
        assert!(top(&v, "halo_wait", 2, &mut Vec::new()).is_err());
    }

    #[test]
    fn diff_collapses_span_arrays_to_counts() {
        let a: Value = serde_json::from_str(&serve_envelope(1)).unwrap();
        let b: Value = serde_json::from_str(
            &serve_envelope(1).replace("\"recorded_total\":9", "\"recorded_total\":42"),
        )
        .unwrap();
        let mut buf = Vec::new();
        diff(&a, &b, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("summary.recorded_total"), "{text}");
        // Per-span leaves never appear — arrays collapse to counts.
        assert!(!text.contains("spans[0]"), "{text}");
        let mut buf = Vec::new();
        diff(&a, &a, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("0 metrics differ"));
    }

    #[test]
    fn serve_schema_version_mismatch_is_an_error() {
        let dir = nestwx_core::TempDir::new("cli-obs-serve-ver").unwrap();
        let ok = dir.path().join("ok.json");
        let stale = dir.path().join("stale.json");
        std::fs::write(&ok, serve_envelope(nestwx_obs::SERVE_VERSION)).unwrap();
        std::fs::write(&stale, serve_envelope(nestwx_obs::SERVE_VERSION + 1)).unwrap();
        assert!(load_summary(ok.to_str().unwrap()).is_ok());
        let e = load_summary(stale.to_str().unwrap())
            .unwrap_err()
            .to_string();
        assert!(e.contains("version"), "{e}");
        // The same failure surfaces through the command entry point, so
        // `nestwx obs report` exits non-zero on a stale envelope.
        let cmd = crate::Command::Obs(ObsCmd::Report {
            path: stale.to_str().unwrap().to_string(),
        });
        assert!(crate::run(cmd, &mut Vec::new()).is_err());
    }

    fn fleet_envelope() -> String {
        let side = r#"{"bytes_in":1024,"bytes_out":2048,"frames_in":12,"frames_out":24,
            "recv_wait":{"count":8,"mean":0.001,"p50":0.001,"p90":0.002,"p99":0.004,"max":0.01},
            "compute_s":0.5,"wait_s":0.1}"#;
        format!(
            r#"{{"schema":"{FLEET_SCHEMA}","version":1,"workers":2,"iterations":4,
            "digest":"abcd1234","parent_digest":"ef567890","logical_halo_bytes":40960,
            "coordinator":{side},
            "worker_rows":[
              {{"slot":0,"nests":[0,2],"obs":{side}}},
              {{"slot":1,"nests":[1],"obs":{side}}}],
            "elapsed_s":1.25}}"#
        )
    }

    #[test]
    fn fleet_report_renders_envelope() {
        let v: Value = serde_json::from_str(&fleet_envelope()).unwrap();
        let mut buf = Vec::new();
        report(&v, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("fleet summary (schema v1)"), "{text}");
        assert!(text.contains("2 workers x 4 iterations"), "{text}");
        assert!(text.contains("digest abcd1234"), "{text}");
        assert!(text.contains("coordinator"), "{text}");
        assert!(text.contains("worker 0 [0,2]"), "{text}");
        assert!(text.contains("worker 1 [1]"), "{text}");
    }

    #[test]
    fn load_summary_accepts_fleet_schema() {
        let dir = nestwx_core::TempDir::new("cli-obs-fleet").unwrap();
        let path = dir.path().join("fleet.json");
        std::fs::write(&path, fleet_envelope()).unwrap();
        let v = load_summary(path.to_str().unwrap()).unwrap();
        assert_eq!(v["schema"].as_str(), Some(FLEET_SCHEMA));
        // And through the command entry point.
        let mut buf = Vec::new();
        crate::run(
            crate::Command::Obs(ObsCmd::Report {
                path: path.to_str().unwrap().into(),
            }),
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("fleet summary"));
    }

    #[test]
    fn load_summary_rejects_wrong_schema() {
        let dir = nestwx_core::TempDir::new("cli-obs-schema").unwrap();
        let good = dir.path().join("good.json");
        let bad = dir.path().join("bad.json");
        let sweep = dir.path().join("sweep.json");
        let rec = Recorder::new(ObsConfig::counters());
        std::fs::write(&good, rec.summary_json()).unwrap();
        std::fs::write(&bad, "{\"schema\": \"other\", \"version\": 1}").unwrap();
        std::fs::write(
            &sweep,
            format!("{{\"schema\": \"{SWEEP_SCHEMA}\", \"version\": 1}}"),
        )
        .unwrap();
        assert!(load_summary(good.to_str().unwrap()).is_ok());
        assert!(load_summary(sweep.to_str().unwrap()).is_ok());
        let e = load_summary(bad.to_str().unwrap()).unwrap_err().to_string();
        assert!(e.contains("schema"), "{e}");
        assert!(load_summary("/nonexistent/nestwx.json").is_err());
    }
}

//! `nestwx` — the command-line entry point (logic in [`nestwx_cli`]).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match nestwx_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", nestwx_cli::usage());
            std::process::exit(2);
        }
    };
    if let Err(e) = nestwx_cli::run(cmd, &mut std::io::stdout()) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

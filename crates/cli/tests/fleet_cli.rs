//! End-to-end `nestwx fleet` over real worker OS processes.
//!
//! Spawns the built `nestwx` binary, which in turn spawns its own
//! `fleet-worker` children via `current_exe`, and checks the merged
//! report against a directly-driven in-process fleet: the core ISSUE
//! invariant (socket halos are bitwise-transparent) holds across real
//! process boundaries, not just threads.

use std::process::Command;

const PARENT: &str = "96x84@24";
const NEST_A: &str = "40x40r3@6,6";
const NEST_B: &str = "32x32r2@52,40";

fn reference_run() -> nestwx_fleet::FleetRun {
    let parent = nestwx_grid::Domain::parent(96, 84, 24.0);
    let nests = vec![
        nestwx_grid::NestSpec::new(40, 40, 3, (6, 6)),
        nestwx_grid::NestSpec::new(32, 32, 2, (52, 40)),
    ];
    let plan = nestwx_core::Planner::new(nestwx_netsim::Machine::bgl(64))
        .strategy(nestwx_core::Strategy::Concurrent)
        .alloc_policy(nestwx_core::AllocPolicy::HuffmanSplitTree)
        .mapping(nestwx_core::MappingKind::Partition)
        .plan(&parent, &nests)
        .unwrap();
    let partitions: Vec<(usize, u64)> = plan
        .partitions
        .iter()
        .map(|p| (p.domain, p.rect.area()))
        .collect();
    nestwx_fleet::execute_in_process(
        &parent,
        &nests,
        3,
        plan.machine.ranks() as u64,
        &partitions,
        &nestwx_fleet::FleetConfig {
            workers: 1,
            ..nestwx_fleet::FleetConfig::from_env()
        },
    )
    .unwrap()
}

#[test]
fn fleet_command_spawns_real_workers_and_matches_in_process_run() {
    let exe = env!("CARGO_BIN_EXE_nestwx");
    let dir = nestwx_core::TempDir::new("cli-fleet").unwrap();
    let obs_path = dir.path().join("fleet.json");
    let out = Command::new(exe)
        .args([
            "fleet",
            "--machine",
            "bgl:64",
            "--parent",
            PARENT,
            "--nest",
            NEST_A,
            "--nest",
            NEST_B,
            "--iterations",
            "3",
            "--workers",
            "2",
            "--check",
            "--json",
            "--obs-out",
            obs_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "fleet exited nonzero\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["schema"].as_str().unwrap(), "nestwx-obs-fleet-summary");
    assert_eq!(v["workers"].as_u64().unwrap(), 2);
    assert_eq!(v["iterations"].as_u64().unwrap(), 3);
    assert_eq!(v["worker_rows"].as_array().unwrap().len(), 2);

    // Bitwise identity against the in-process reference.
    let reference = reference_run();
    assert_eq!(v["digest"].as_str().unwrap(), reference.report.digest);
    assert_eq!(
        v["parent_digest"].as_str().unwrap(),
        reference.report.parent_digest
    );

    // The written envelope loads and renders through `nestwx obs report`.
    let report = Command::new(exe)
        .args(["obs", "report", obs_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        report.status.success(),
        "obs report failed: {}",
        String::from_utf8_lossy(&report.stderr)
    );
    let text = String::from_utf8(report.stdout).unwrap();
    assert!(text.contains("fleet summary"), "{text}");
    assert!(text.contains("coordinator"), "{text}");
    assert!(text.contains("worker 1"), "{text}");
}

#[test]
fn fleet_human_output_reports_check_and_digest() {
    let exe = env!("CARGO_BIN_EXE_nestwx");
    let out = Command::new(exe)
        .args([
            "fleet",
            "--machine",
            "bgl:64",
            "--parent",
            PARENT,
            "--nest",
            NEST_A,
            "--iterations",
            "2",
            "--workers",
            "1",
            "--check",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("fleet: 1 workers x 2 iterations"), "{text}");
    assert!(text.contains("digest "), "{text}");
    assert!(
        text.contains("check: report bitwise-identical to the in-process run"),
        "{text}"
    );
}

#[test]
fn fleet_worker_without_coordinator_fails_fast() {
    // A worker pointed at a dead port must exit nonzero with a clear
    // error, not hang.
    let exe = env!("CARGO_BIN_EXE_nestwx");
    let out = Command::new(exe)
        .args(["fleet-worker", "--connect", "127.0.0.1:1"])
        .env("NESTWX_FLEET_CONNECT_TIMEOUT_MS", "500")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot reach coordinator"), "{err}");
}

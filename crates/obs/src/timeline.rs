//! Bounded-memory per-rank timelines.
//!
//! A [`Timeline`] stores, per recorded step and per sampled rank, the
//! compute / halo-wait / idle seconds of that rank in that step, in a
//! columnar layout (`frames × lanes` of `f32`). Two policies bound memory
//! regardless of run length or machine size:
//!
//! * **Rank sampling:** when the machine has more ranks than
//!   [`TimelineConfig::max_ranks`], only every `rank_stride`-th rank gets a
//!   lane. Critical-path attribution still sees *every* active rank — only
//!   the per-rank columns are sampled.
//! * **Step decimation:** when the frame buffer reaches
//!   [`TimelineConfig::max_frames`], adjacent frames are merged pairwise in
//!   place and the per-frame step stride doubles, so a 10k-step run costs
//!   the same memory as a 100-step run at coarser time resolution.
//!
//! Recording is purely additive — producers hand in values they already
//! computed — so an attached timeline cannot perturb simulation results.

/// Timeline recording limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineConfig {
    /// Frame-buffer capacity; reaching it halves the time resolution
    /// (rounded up to an even number, minimum 2).
    pub max_frames: usize,
    /// Maximum per-rank lanes; more ranks than this are stride-sampled.
    pub max_ranks: usize,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            max_frames: 4096,
            max_ranks: 256,
        }
    }
}

/// Per-frame metadata (a frame covers `step_stride` consecutive recorded
/// steps once decimation has kicked in).
#[derive(Debug, Clone, PartialEq)]
pub struct FrameMeta {
    /// First recorded step in this frame (1-based producer counter).
    pub step_first: u64,
    /// Last recorded step in this frame.
    pub step_last: u64,
    /// Nest index of the frame's steps; `-1` for parent/lockstep steps and
    /// [`Timeline::MIXED_NEST`] when merged steps disagree.
    pub nest: i32,
    /// Earliest step start (simulated seconds).
    pub start: f64,
    /// Latest step end (simulated seconds).
    pub end: f64,
    /// Critical-path rank: the rank with the largest compute + wait in any
    /// single step of the frame (over *all* active ranks, not just sampled
    /// lanes).
    pub crit_rank: u32,
    /// That rank's busy (compute + wait) seconds in its step.
    pub crit_busy: f64,
}

/// Columnar per-rank step timeline with bounded memory.
#[derive(Debug, Clone)]
pub struct Timeline {
    cfg: TimelineConfig,
    /// Total ranks of the producer (0 until the first record).
    nranks: u32,
    /// Every `rank_stride`-th rank gets a lane.
    rank_stride: u32,
    /// Sampled lanes (`ceil(nranks / rank_stride)`).
    lanes: u32,
    /// Recorded steps per frame (doubles on each decimation).
    step_stride: u64,
    /// Steps accumulated into the open tail frame (0 = closed).
    open_steps: u64,
    /// Total steps recorded.
    recorded_steps: u64,
    /// Times the buffer was decimated.
    decimations: u32,
    /// `frames × lanes`, frame-major: compute seconds.
    compute: Vec<f32>,
    /// `frames × lanes`: halo-wait seconds.
    wait: Vec<f32>,
    /// `frames × lanes`: idle seconds (`step span − compute − wait`, ≥ 0).
    idle: Vec<f32>,
    meta: Vec<FrameMeta>,
}

impl Timeline {
    /// [`FrameMeta::nest`] value for decimated frames whose merged steps
    /// belonged to different nests.
    pub const MIXED_NEST: i32 = i32::MIN;

    /// An empty timeline; lanes are sized on the first recorded step.
    pub fn new(cfg: TimelineConfig) -> Timeline {
        let cfg = TimelineConfig {
            max_frames: (cfg.max_frames.max(2) + 1) & !1,
            max_ranks: cfg.max_ranks.max(1),
        };
        Timeline {
            cfg,
            nranks: 0,
            rank_stride: 1,
            lanes: 0,
            step_stride: 1,
            open_steps: 0,
            recorded_steps: 0,
            decimations: 0,
            compute: Vec::new(),
            wait: Vec::new(),
            idle: Vec::new(),
            meta: Vec::new(),
        }
    }

    fn init(&mut self, nranks: u32) {
        let nranks = nranks.max(1);
        self.nranks = nranks;
        self.rank_stride = nranks.div_ceil(self.cfg.max_ranks as u32).max(1);
        self.lanes = nranks.div_ceil(self.rank_stride);
    }

    /// Records one step: `active` yields the global ranks that took part,
    /// `compute_of`/`wait_of` return each rank's compute and halo-wait
    /// seconds. `nranks` is the producer's total rank count (fixed for the
    /// timeline's lifetime; the first call sizes the lanes).
    #[allow(clippy::too_many_arguments)]
    pub fn record_step<I, C, W>(
        &mut self,
        nranks: u32,
        step: u64,
        nest: i32,
        start: f64,
        end: f64,
        active: I,
        compute_of: C,
        wait_of: W,
    ) where
        I: IntoIterator<Item = u32>,
        C: Fn(u32) -> f64,
        W: Fn(u32) -> f64,
    {
        if self.nranks == 0 {
            self.init(nranks);
        }
        debug_assert_eq!(nranks.max(1), self.nranks, "rank count changed mid-run");
        let lanes = self.lanes as usize;
        if self.open_steps == 0 {
            if self.meta.len() >= self.cfg.max_frames {
                self.decimate();
            }
            self.meta.push(FrameMeta {
                step_first: step,
                step_last: step,
                nest,
                start,
                end,
                crit_rank: 0,
                crit_busy: f64::NEG_INFINITY,
            });
            let len = self.meta.len() * lanes;
            self.compute.resize(len, 0.0);
            self.wait.resize(len, 0.0);
            self.idle.resize(len, 0.0);
        }
        let fi = self.meta.len() - 1;
        let base = fi * lanes;
        {
            let m = &mut self.meta[fi];
            m.step_last = step;
            if m.nest != nest {
                m.nest = Self::MIXED_NEST;
            }
            m.start = m.start.min(start);
            m.end = m.end.max(end);
        }
        let dur = (end - start).max(0.0);
        let mut crit_rank = self.meta[fi].crit_rank;
        let mut crit_busy = self.meta[fi].crit_busy;
        for g in active {
            let c = compute_of(g);
            let w = wait_of(g);
            let busy = c + w;
            if busy > crit_busy {
                crit_busy = busy;
                crit_rank = g;
            }
            if g % self.rank_stride == 0 {
                let lane = (g / self.rank_stride) as usize;
                if lane < lanes {
                    let idx = base + lane;
                    self.compute[idx] += c as f32;
                    self.wait[idx] += w as f32;
                    self.idle[idx] += (dur - busy).max(0.0) as f32;
                }
            }
        }
        self.meta[fi].crit_rank = crit_rank;
        self.meta[fi].crit_busy = crit_busy;
        self.recorded_steps += 1;
        self.open_steps += 1;
        if self.open_steps >= self.step_stride {
            self.open_steps = 0;
        }
    }

    /// Merges adjacent frame pairs in place and doubles the step stride.
    fn decimate(&mut self) {
        let lanes = self.lanes as usize;
        let pairs = self.meta.len() / 2;
        for i in 0..pairs {
            let (a, b) = (2 * i, 2 * i + 1);
            let (ma, mb) = (self.meta[a].clone(), self.meta[b].clone());
            let (crit_rank, crit_busy) = if ma.crit_busy >= mb.crit_busy {
                (ma.crit_rank, ma.crit_busy)
            } else {
                (mb.crit_rank, mb.crit_busy)
            };
            self.meta[i] = FrameMeta {
                step_first: ma.step_first,
                step_last: mb.step_last,
                nest: if ma.nest == mb.nest {
                    ma.nest
                } else {
                    Self::MIXED_NEST
                },
                start: ma.start.min(mb.start),
                end: ma.end.max(mb.end),
                crit_rank,
                crit_busy,
            };
            for l in 0..lanes {
                self.compute[i * lanes + l] =
                    self.compute[a * lanes + l] + self.compute[b * lanes + l];
                self.wait[i * lanes + l] = self.wait[a * lanes + l] + self.wait[b * lanes + l];
                self.idle[i * lanes + l] = self.idle[a * lanes + l] + self.idle[b * lanes + l];
            }
        }
        // `max_frames` is even, so no odd tail frame survives a decimation.
        self.meta.truncate(pairs);
        let len = pairs * lanes;
        self.compute.truncate(len);
        self.wait.truncate(len);
        self.idle.truncate(len);
        self.step_stride *= 2;
        self.decimations += 1;
    }

    /// Frames currently held.
    pub fn frames(&self) -> usize {
        self.meta.len()
    }

    /// Sampled per-rank lanes.
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// The producer's total rank count (0 before the first record).
    pub fn nranks(&self) -> u32 {
        self.nranks
    }

    /// Every `rank_stride`-th rank gets a lane.
    pub fn rank_stride(&self) -> u32 {
        self.rank_stride
    }

    /// Recorded steps covered by one frame.
    pub fn step_stride(&self) -> u64 {
        self.step_stride
    }

    /// Times the frame buffer was decimated (halved).
    pub fn decimations(&self) -> u32 {
        self.decimations
    }

    /// Total steps recorded (all retained: decimation merges, never drops).
    pub fn recorded_steps(&self) -> u64 {
        self.recorded_steps
    }

    /// The global rank a lane samples.
    pub fn lane_rank(&self, lane: u32) -> u32 {
        lane * self.rank_stride
    }

    /// Per-frame metadata, oldest first.
    pub fn meta(&self) -> &[FrameMeta] {
        &self.meta
    }

    /// Per-lane compute seconds of one frame.
    pub fn frame_compute(&self, frame: usize) -> &[f32] {
        let l = self.lanes as usize;
        &self.compute[frame * l..(frame + 1) * l]
    }

    /// Per-lane halo-wait seconds of one frame.
    pub fn frame_wait(&self, frame: usize) -> &[f32] {
        let l = self.lanes as usize;
        &self.wait[frame * l..(frame + 1) * l]
    }

    /// Per-lane idle seconds of one frame.
    pub fn frame_idle(&self, frame: usize) -> &[f32] {
        let l = self.lanes as usize;
        &self.idle[frame * l..(frame + 1) * l]
    }

    /// Forgets everything recorded; lanes re-size on the next record.
    pub fn clear(&mut self) {
        *self = Timeline::new(self.cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_uniform(tl: &mut Timeline, nranks: u32, steps: u64) {
        for s in 1..=steps {
            tl.record_step(
                nranks,
                s,
                (s % 3) as i32 - 1,
                s as f64,
                s as f64 + 1.0,
                0..nranks,
                |g| 0.25 + g as f64 * 0.01,
                |g| 0.1 + g as f64 * 0.001,
            );
        }
    }

    #[test]
    fn records_per_rank_columns() {
        let mut tl = Timeline::new(TimelineConfig {
            max_frames: 16,
            max_ranks: 8,
        });
        tl.record_step(4, 1, 0, 0.0, 1.0, 0..4u32, |g| g as f64, |g| 0.5 * g as f64);
        assert_eq!(tl.frames(), 1);
        assert_eq!(tl.lanes(), 4);
        assert_eq!(tl.rank_stride(), 1);
        assert_eq!(tl.frame_compute(0), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(tl.frame_wait(0), &[0.0, 0.5, 1.0, 1.5]);
        // idle = span − compute − wait, clamped at 0.
        assert_eq!(tl.frame_idle(0), &[1.0, 0.0, 0.0, 0.0]);
        let m = &tl.meta()[0];
        assert_eq!(m.crit_rank, 3, "rank 3 has the largest compute+wait");
        assert_eq!(m.nest, 0);
    }

    #[test]
    fn decimation_bounds_frames_and_preserves_totals() {
        let mut tl = Timeline::new(TimelineConfig {
            max_frames: 8,
            max_ranks: 4,
        });
        record_uniform(&mut tl, 2, 100);
        assert_eq!(tl.recorded_steps(), 100);
        assert!(tl.frames() <= 8, "frames {} exceed cap", tl.frames());
        assert!(tl.decimations() >= 4);
        assert!(tl.step_stride() >= 16);
        // Every recorded step is covered exactly once.
        let covered: u64 = tl
            .meta()
            .iter()
            .map(|m| m.step_last - m.step_first + 1)
            .sum();
        assert_eq!(covered, 100);
        let mut prev_end = 0;
        for m in tl.meta() {
            assert_eq!(m.step_first, prev_end + 1, "frames must tile the run");
            prev_end = m.step_last;
        }
        // Column sums survive decimation: rank 0 computes 0.25 per step.
        let total_c: f32 = (0..tl.frames()).map(|f| tl.frame_compute(f)[0]).sum();
        assert!((total_c - 25.0).abs() < 1e-3, "compute sum {total_c}");
        // Merged frames spanning different nests carry the mixed marker.
        assert!(tl.meta().iter().any(|m| m.nest == Timeline::MIXED_NEST));
    }

    #[test]
    fn rank_sampling_strides_lanes() {
        let mut tl = Timeline::new(TimelineConfig {
            max_frames: 4,
            max_ranks: 4,
        });
        tl.record_step(16, 1, -1, 0.0, 1.0, 0..16u32, |_| 1.0, |g| g as f64);
        assert_eq!(tl.rank_stride(), 4);
        assert_eq!(tl.lanes(), 4);
        assert_eq!(tl.lane_rank(3), 12);
        assert_eq!(tl.frame_wait(0), &[0.0, 4.0, 8.0, 12.0]);
        // The critical rank is found among unsampled ranks too.
        assert_eq!(tl.meta()[0].crit_rank, 15);
    }

    #[test]
    fn subset_active_ranks_leave_other_lanes_zero() {
        let mut tl = Timeline::new(TimelineConfig {
            max_frames: 4,
            max_ranks: 8,
        });
        tl.record_step(8, 1, 2, 0.0, 1.0, 4..8u32, |_| 0.5, |_| 0.25);
        assert_eq!(tl.frame_compute(0)[..4], [0.0; 4]);
        assert_eq!(tl.frame_compute(0)[4..], [0.5; 4]);
        assert_eq!(tl.meta()[0].nest, 2);
    }

    #[test]
    fn clear_resets_and_resizes_on_next_run() {
        let mut tl = Timeline::new(TimelineConfig {
            max_frames: 4,
            max_ranks: 8,
        });
        record_uniform(&mut tl, 4, 10);
        tl.clear();
        assert_eq!(tl.frames(), 0);
        assert_eq!(tl.recorded_steps(), 0);
        tl.record_step(2, 1, -1, 0.0, 1.0, 0..2u32, |_| 1.0, |_| 0.0);
        assert_eq!(tl.lanes(), 2);
    }
}

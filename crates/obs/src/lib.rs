//! Step-level observability for the `nestwx` workspace (`nestwx-obs`).
//!
//! A near-zero-overhead metrics/tracing facade with two tiers:
//!
//! * **Counter core (always on):** producers accumulate plain counters —
//!   compute seconds, halo-wait seconds, bytes moved, link hops, contention
//!   stalls — and hand the per-step deltas to a [`Recorder`] as
//!   [`StepMetrics`] records. Recording is a handful of adds plus one ring
//!   push per *step* (thousands of messages), so the measured cost in
//!   `bench_netsim` stays well under 2 % of steps/s. With no recorder
//!   attached the producers skip even that.
//! * **Span mode (feature `spans`):** named durations ([`SpanEvent`])
//!   are stored and exported alongside the step records. Without the
//!   feature, [`Recorder::span`] compiles to a no-op.
//!
//! Recorded data exports two ways: [`Recorder::summary_json`] (aggregate
//! totals plus per-nest breakdowns) and [`Recorder::chrome_trace_json`]
//! (Chrome `trace_event` JSON for `chrome://tracing` / Perfetto).
//!
//! The facade is deliberately passive: it never feeds back into producer
//! state, so an instrumented simulation produces **bitwise identical**
//! results with observation on or off (enforced by `nestwx-netsim`'s
//! `tests/obs_equivalence.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ring;
pub mod span;
pub mod trace;

pub use ring::StepRing;
pub use span::{SpanEvent, SPANS_ENABLED};

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// Which schedule phase a step record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum StepPhase {
    /// Parent-domain halo step over the full grid.
    Parent,
    /// Level-1 nest halo step (one nest, or a lockstep multi-nest step).
    Nest,
    /// Second-level child nest halo step.
    Child,
    /// History-output phase (no halo counters).
    Io,
}

/// Counters of one simulated step — the per-step delta of every quantity
/// the paper's time-breakdown tables are built from.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StepMetrics {
    /// Monotone step counter (1-based; unchanged for [`StepPhase::Io`]).
    pub step: u64,
    /// Schedule phase.
    pub phase: StepPhase,
    /// Nest index for single-nest steps, `-1` for the parent, lockstep
    /// multi-nest steps and I/O.
    pub nest: i32,
    /// Domains advanced by this (possibly lockstep) step.
    pub domains: u32,
    /// Simulated seconds when the step began (max rank readiness before).
    pub start: f64,
    /// Simulated seconds when the step ended (max rank readiness after).
    pub end: f64,
    /// Σ over ranks of compute seconds in this step.
    pub compute: f64,
    /// Σ over ranks of halo MPI_Wait seconds in this step.
    pub halo_wait: f64,
    /// Payload bytes moved.
    pub bytes: f64,
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Aggregate network transfers (a transfer batches the messages of one
    /// neighbour exchange).
    pub transfers: u64,
    /// Torus links traversed.
    pub hops: u64,
    /// Seconds message heads spent queued behind busy links.
    pub stall: f64,
}

impl StepMetrics {
    /// Mean hops per transfer in this step.
    pub fn avg_hops(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.hops as f64 / self.transfers as f64
        }
    }
}

/// Per-nest aggregate (single-nest steps only; lockstep multi-nest steps
/// cannot be attributed and are excluded).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct NestBreakdown {
    /// Steps recorded for this nest.
    pub steps: u64,
    /// Σ wall-clock (simulated) seconds of those steps.
    pub time: f64,
    /// Σ compute seconds.
    pub compute: f64,
    /// Σ halo MPI_Wait seconds.
    pub halo_wait: f64,
}

/// Whole-run aggregate counters. Unlike the ring, totals always cover
/// every recorded step.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ObsSummary {
    /// Halo steps recorded (I/O phases excluded).
    pub steps: u64,
    /// Σ compute seconds over ranks and steps.
    pub compute: f64,
    /// Σ halo MPI_Wait seconds — the paper's MPI_Wait metric, rebuilt from
    /// per-step deltas instead of the simulator's internal accumulator.
    pub halo_wait: f64,
    /// Σ payload bytes.
    pub bytes: f64,
    /// Σ point-to-point messages.
    pub messages: u64,
    /// Σ aggregate transfers.
    pub transfers: u64,
    /// Σ torus link hops.
    pub hops: u64,
    /// Σ contention-stall seconds.
    pub stall: f64,
    /// Σ seconds of recorded I/O phases.
    pub io_time: f64,
    /// Per-nest breakdowns, indexed by nest.
    pub per_nest: Vec<NestBreakdown>,
}

impl ObsSummary {
    /// Mean hops per transfer — the paper's "average number of hops"
    /// (Fig. 12b), from recorded metrics.
    pub fn avg_hops(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.hops as f64 / self.transfers as f64
        }
    }
}

/// Recorder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Most recent steps kept in the ring buffer (totals always cover the
    /// whole run).
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            ring_capacity: 65536,
        }
    }
}

impl ObsConfig {
    /// Default configuration (64 Ki most recent steps retained).
    pub fn counters() -> Self {
        Self::default()
    }

    /// Retain at most `n` recent steps.
    pub fn with_ring_capacity(mut self, n: usize) -> Self {
        self.ring_capacity = n;
        self
    }
}

/// Collects [`StepMetrics`] into running totals plus a recent-steps ring,
/// and (with the `spans` feature) span events.
#[derive(Debug, Clone)]
pub struct Recorder {
    ring: StepRing,
    summary: ObsSummary,
    #[cfg(feature = "spans")]
    spans: Vec<SpanEvent>,
}

impl Recorder {
    /// A fresh recorder.
    pub fn new(config: ObsConfig) -> Recorder {
        Recorder {
            ring: StepRing::new(config.ring_capacity),
            summary: ObsSummary::default(),
            #[cfg(feature = "spans")]
            spans: Vec::new(),
        }
    }

    /// Forgets everything recorded (for replaying a simulation).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.summary = ObsSummary::default();
        #[cfg(feature = "spans")]
        self.spans.clear();
    }

    /// Records one step's counters.
    pub fn record_step(&mut self, m: StepMetrics) {
        let s = &mut self.summary;
        if m.phase == StepPhase::Io {
            s.io_time += m.end - m.start;
        } else {
            s.steps += 1;
            s.compute += m.compute;
            s.halo_wait += m.halo_wait;
            s.bytes += m.bytes;
            s.messages += m.messages;
            s.transfers += m.transfers;
            s.hops += m.hops;
            s.stall += m.stall;
            if m.nest >= 0 {
                let idx = m.nest as usize;
                if s.per_nest.len() <= idx {
                    s.per_nest.resize(idx + 1, NestBreakdown::default());
                }
                let pn = &mut s.per_nest[idx];
                pn.steps += 1;
                pn.time += m.end - m.start;
                pn.compute += m.compute;
                pn.halo_wait += m.halo_wait;
            }
        }
        self.ring.push(m);
    }

    /// Records a span (no-op unless the `spans` feature is enabled).
    /// `ts_us` / `dur_us` are microseconds on the trace timeline.
    #[inline]
    pub fn span(&mut self, name: &str, tid: u32, ts_us: f64, dur_us: f64) {
        #[cfg(feature = "spans")]
        self.spans.push(SpanEvent {
            name: name.to_owned(),
            ts: ts_us,
            dur: dur_us,
            tid,
        });
        #[cfg(not(feature = "spans"))]
        {
            let _ = (name, tid, ts_us, dur_us);
        }
    }

    /// Span events stored so far (always empty without the `spans`
    /// feature).
    pub fn spans(&self) -> &[SpanEvent] {
        #[cfg(feature = "spans")]
        {
            &self.spans
        }
        #[cfg(not(feature = "spans"))]
        {
            &[]
        }
    }

    /// The retained recent steps, oldest → newest.
    pub fn steps(&self) -> impl Iterator<Item = &StepMetrics> {
        self.ring.iter()
    }

    /// The underlying ring buffer.
    pub fn ring(&self) -> &StepRing {
        &self.ring
    }

    /// Whole-run totals.
    pub fn summary(&self) -> &ObsSummary {
        &self.summary
    }

    /// Totals as pretty JSON.
    pub fn summary_json(&self) -> String {
        serde_json::to_string_pretty(&self.summary).expect("summary serialization cannot fail")
    }

    /// The retained steps (plus spans, if stored) as Chrome `trace_event`
    /// JSON for `chrome://tracing`.
    pub fn chrome_trace_json(&self) -> String {
        trace::chrome_trace_json(self.ring.iter(), self.spans())
    }

    /// Writes [`Recorder::chrome_trace_json`] to `path`.
    pub fn write_chrome_trace(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.chrome_trace_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(step: u64, phase: StepPhase, nest: i32) -> StepMetrics {
        StepMetrics {
            step,
            phase,
            nest,
            domains: 1,
            start: step as f64,
            end: step as f64 + 0.5,
            compute: 1.0,
            halo_wait: 0.25,
            bytes: 100.0,
            messages: 2,
            transfers: 2,
            hops: 6,
            stall: 0.01,
        }
    }

    #[test]
    fn totals_accumulate_and_split_per_nest() {
        let mut rec = Recorder::new(ObsConfig::counters());
        rec.record_step(metrics(1, StepPhase::Parent, -1));
        rec.record_step(metrics(2, StepPhase::Nest, 1));
        rec.record_step(metrics(3, StepPhase::Nest, 1));
        rec.record_step(metrics(3, StepPhase::Io, -1));
        let s = rec.summary();
        assert_eq!(s.steps, 3);
        assert_eq!(s.messages, 6);
        assert_eq!(s.halo_wait, 0.75);
        assert_eq!(s.io_time, 0.5);
        assert_eq!(s.per_nest.len(), 2);
        assert_eq!(s.per_nest[0].steps, 0);
        assert_eq!(s.per_nest[1].steps, 2);
        assert_eq!(s.per_nest[1].halo_wait, 0.5);
        assert_eq!(s.avg_hops(), 3.0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut rec = Recorder::new(ObsConfig::counters());
        rec.record_step(metrics(1, StepPhase::Parent, -1));
        rec.span("x", 0, 0.0, 1.0);
        rec.clear();
        assert_eq!(rec.summary(), &ObsSummary::default());
        assert_eq!(rec.steps().count(), 0);
        assert!(rec.spans().is_empty());
    }

    #[test]
    fn summary_json_parses() {
        let mut rec = Recorder::new(ObsConfig::counters());
        rec.record_step(metrics(1, StepPhase::Nest, 0));
        let v = serde_json::from_str(&rec.summary_json()).unwrap();
        assert_eq!(v.get("steps").unwrap().as_u64().unwrap(), 1);
        assert_eq!(v.get("hops").unwrap().as_u64().unwrap(), 6);
    }

    #[test]
    fn span_storage_matches_feature() {
        let mut rec = Recorder::new(ObsConfig::counters());
        rec.span("probe", 3, 10.0, 5.0);
        assert_eq!(rec.spans().len(), usize::from(SPANS_ENABLED));
    }
}

//! Step-level observability for the `nestwx` workspace (`nestwx-obs`).
//!
//! A near-zero-overhead metrics/tracing facade with two tiers:
//!
//! * **Counter core (always on):** producers accumulate plain counters —
//!   compute seconds, halo-wait seconds, bytes moved, link hops, contention
//!   stalls — and hand the per-step deltas to a [`Recorder`] as
//!   [`StepMetrics`] records. Recording is a handful of adds plus one ring
//!   push per *step* (thousands of messages), so the measured cost in
//!   `bench_netsim` stays well under 2 % of steps/s. With no recorder
//!   attached the producers skip even that.
//! * **Span mode (feature `spans`):** named durations ([`SpanEvent`])
//!   are stored and exported alongside the step records. Without the
//!   feature, [`Recorder::span`] compiles to a no-op.
//!
//! Recorded data exports two ways: [`Recorder::summary_json`] (aggregate
//! totals plus per-nest breakdowns) and [`Recorder::chrome_trace_json`]
//! (Chrome `trace_event` JSON for `chrome://tracing` / Perfetto).
//!
//! The facade is deliberately passive: it never feeds back into producer
//! state, so an instrumented simulation produces **bitwise identical**
//! results with observation on or off (enforced by `nestwx-netsim`'s
//! `tests/obs_equivalence.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod clock;
pub mod hist;
pub mod ring;
pub mod serve;
pub mod span;
pub mod timeline;
pub mod trace;

pub use analyze::{AnalysisReport, LinkLoad, LinkUtil, NestAnalysis, NetDetail, RankShare};
pub use hist::{HistSummary, LogHistogram};
pub use ring::StepRing;
pub use serve::{SERVE_SCHEMA, SERVE_VERSION};
pub use span::{SpanEvent, SPANS_ENABLED};
pub use timeline::{FrameMeta, Timeline, TimelineConfig};

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// Which schedule phase a step record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum StepPhase {
    /// Parent-domain halo step over the full grid.
    Parent,
    /// Level-1 nest halo step (one nest, or a lockstep multi-nest step).
    Nest,
    /// Second-level child nest halo step.
    Child,
    /// History-output phase (no halo counters).
    Io,
}

/// Counters of one simulated step — the per-step delta of every quantity
/// the paper's time-breakdown tables are built from.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StepMetrics {
    /// Monotone step counter (1-based; unchanged for [`StepPhase::Io`]).
    pub step: u64,
    /// Schedule phase.
    pub phase: StepPhase,
    /// Nest index for single-nest steps, `-1` for the parent, lockstep
    /// multi-nest steps and I/O.
    pub nest: i32,
    /// Domains advanced by this (possibly lockstep) step.
    pub domains: u32,
    /// Simulated seconds when the step began (max rank readiness before).
    pub start: f64,
    /// Simulated seconds when the step ended (max rank readiness after).
    pub end: f64,
    /// Σ over ranks of compute seconds in this step.
    pub compute: f64,
    /// Σ over ranks of halo MPI_Wait seconds in this step.
    pub halo_wait: f64,
    /// Payload bytes moved.
    pub bytes: f64,
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Aggregate network transfers (a transfer batches the messages of one
    /// neighbour exchange).
    pub transfers: u64,
    /// Torus links traversed.
    pub hops: u64,
    /// Seconds message heads spent queued behind busy links.
    pub stall: f64,
}

impl StepMetrics {
    /// Mean hops per transfer in this step.
    pub fn avg_hops(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.hops as f64 / self.transfers as f64
        }
    }
}

/// Per-nest aggregate (single-nest steps only; lockstep multi-nest steps
/// cannot be attributed and are excluded).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct NestBreakdown {
    /// Steps recorded for this nest.
    pub steps: u64,
    /// Σ wall-clock (simulated) seconds of those steps.
    pub time: f64,
    /// Σ compute seconds.
    pub compute: f64,
    /// Σ halo MPI_Wait seconds.
    pub halo_wait: f64,
}

/// Whole-run aggregate counters. Unlike the ring, totals always cover
/// every recorded step.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ObsSummary {
    /// Halo steps recorded (I/O phases excluded).
    pub steps: u64,
    /// Σ compute seconds over ranks and steps.
    pub compute: f64,
    /// Σ halo MPI_Wait seconds — the paper's MPI_Wait metric, rebuilt from
    /// per-step deltas instead of the simulator's internal accumulator.
    pub halo_wait: f64,
    /// Σ payload bytes.
    pub bytes: f64,
    /// Σ point-to-point messages.
    pub messages: u64,
    /// Σ aggregate transfers.
    pub transfers: u64,
    /// Σ torus link hops.
    pub hops: u64,
    /// Σ contention-stall seconds.
    pub stall: f64,
    /// Σ seconds of recorded I/O phases.
    pub io_time: f64,
    /// Per-nest breakdowns, indexed by nest.
    pub per_nest: Vec<NestBreakdown>,
}

impl ObsSummary {
    /// Mean hops per transfer — the paper's "average number of hops"
    /// (Fig. 12b), from recorded metrics.
    pub fn avg_hops(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.hops as f64 / self.transfers as f64
        }
    }
}

/// Recorder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Most recent steps kept in the ring buffer (totals always cover the
    /// whole run).
    pub ring_capacity: usize,
    /// Per-rank timeline recording; `None` keeps the counter-only tier.
    pub timeline: Option<TimelineConfig>,
    /// Per-link busy accounting and message-latency histograms in the
    /// network model.
    pub net_detail: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            ring_capacity: 65536,
            timeline: None,
            net_detail: false,
        }
    }
}

impl ObsConfig {
    /// Counter-only configuration (64 Ki most recent steps retained, no
    /// per-rank or per-link detail).
    pub fn counters() -> Self {
        Self::default()
    }

    /// Full detail: counters plus per-rank timelines and per-link network
    /// recording, with default bounds.
    pub fn detailed() -> Self {
        Self::default()
            .with_timeline(TimelineConfig::default())
            .with_net_detail(true)
    }

    /// Retain at most `n` recent steps.
    pub fn with_ring_capacity(mut self, n: usize) -> Self {
        self.ring_capacity = n;
        self
    }

    /// Enables per-rank timeline recording with the given bounds.
    pub fn with_timeline(mut self, cfg: TimelineConfig) -> Self {
        self.timeline = Some(cfg);
        self
    }

    /// Enables or disables per-link network recording.
    pub fn with_net_detail(mut self, on: bool) -> Self {
        self.net_detail = on;
        self
    }
}

/// Collects [`StepMetrics`] into running totals plus a recent-steps ring,
/// optional per-rank timelines and histograms, and (with the `spans`
/// feature) span events.
#[derive(Debug, Clone)]
pub struct Recorder {
    ring: StepRing,
    summary: ObsSummary,
    step_hist: LogHistogram,
    wait_hist: LogHistogram,
    timeline: Option<Timeline>,
    net: Option<NetDetail>,
    last_end: f64,
    #[cfg(feature = "spans")]
    spans: Vec<SpanEvent>,
}

impl Recorder {
    /// A fresh recorder.
    pub fn new(config: ObsConfig) -> Recorder {
        Recorder {
            ring: StepRing::new(config.ring_capacity),
            summary: ObsSummary::default(),
            step_hist: LogHistogram::new(),
            wait_hist: LogHistogram::new(),
            timeline: config.timeline.map(Timeline::new),
            net: None,
            last_end: 0.0,
            #[cfg(feature = "spans")]
            spans: Vec::new(),
        }
    }

    /// Forgets everything recorded (for replaying a simulation).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.summary = ObsSummary::default();
        self.step_hist.clear();
        self.wait_hist.clear();
        if let Some(tl) = &mut self.timeline {
            tl.clear();
        }
        self.net = None;
        self.last_end = 0.0;
        #[cfg(feature = "spans")]
        self.spans.clear();
    }

    /// Records one step's counters.
    pub fn record_step(&mut self, m: StepMetrics) {
        let s = &mut self.summary;
        self.last_end = self.last_end.max(m.end);
        if m.phase == StepPhase::Io {
            s.io_time += m.end - m.start;
        } else {
            self.step_hist.record(m.end - m.start);
            s.steps += 1;
            s.compute += m.compute;
            s.halo_wait += m.halo_wait;
            s.bytes += m.bytes;
            s.messages += m.messages;
            s.transfers += m.transfers;
            s.hops += m.hops;
            s.stall += m.stall;
            if m.nest >= 0 {
                let idx = m.nest as usize;
                if s.per_nest.len() <= idx {
                    s.per_nest.resize(idx + 1, NestBreakdown::default());
                }
                let pn = &mut s.per_nest[idx];
                pn.steps += 1;
                pn.time += m.end - m.start;
                pn.compute += m.compute;
                pn.halo_wait += m.halo_wait;
            }
        }
        self.ring.push(m);
    }

    /// True when per-rank timeline recording is enabled (producers use
    /// this to decide whether to capture per-rank values at all).
    pub fn wants_ranks(&self) -> bool {
        self.timeline.is_some()
    }

    /// Records the per-rank resolution of one step: `active` yields the
    /// participating global ranks, `compute_of`/`wait_of` their compute and
    /// halo-wait seconds. No-op unless the timeline was configured.
    #[allow(clippy::too_many_arguments)]
    pub fn record_rank_step<I, C, W>(
        &mut self,
        nranks: u32,
        step: u64,
        nest: i32,
        start: f64,
        end: f64,
        active: I,
        compute_of: C,
        wait_of: W,
    ) where
        I: IntoIterator<Item = u32> + Clone,
        C: Fn(u32) -> f64,
        W: Fn(u32) -> f64,
    {
        if let Some(tl) = &mut self.timeline {
            for g in active.clone() {
                self.wait_hist.record(wait_of(g));
            }
            tl.record_step(nranks, step, nest, start, end, active, compute_of, wait_of);
        }
    }

    /// Installs the network model's per-link recordings (link busy seconds,
    /// message-latency histogram, torus dims for decoding link ids).
    pub fn set_net_detail(&mut self, net: NetDetail) {
        self.net = Some(net);
    }

    /// Distribution of per-step wall-clock durations (non-I/O steps).
    pub fn hist_step_time(&self) -> &LogHistogram {
        &self.step_hist
    }

    /// Distribution of per-rank halo MPI_Wait seconds (populated only when
    /// the timeline is enabled).
    pub fn hist_rank_wait(&self) -> &LogHistogram {
        &self.wait_hist
    }

    /// The per-rank timeline, when configured.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    /// The network model's per-link recordings, when installed.
    pub fn net_detail(&self) -> Option<&NetDetail> {
        self.net.as_ref()
    }

    /// Latest simulated end time seen across all recorded phases.
    pub fn last_end(&self) -> f64 {
        self.last_end
    }

    /// Runs the imbalance / link-utilization analysis over everything
    /// recorded so far.
    pub fn analysis(&self) -> AnalysisReport {
        analyze::compute(
            &self.summary,
            self.timeline.as_ref(),
            self.net.as_ref(),
            self.last_end,
        )
    }

    /// Records a span (no-op unless the `spans` feature is enabled).
    /// `ts_us` / `dur_us` are microseconds on the trace timeline.
    #[inline]
    pub fn span(&mut self, name: &str, tid: u32, ts_us: f64, dur_us: f64) {
        #[cfg(feature = "spans")]
        self.spans.push(SpanEvent {
            name: name.to_owned(),
            ts: ts_us,
            dur: dur_us,
            tid,
        });
        #[cfg(not(feature = "spans"))]
        {
            let _ = (name, tid, ts_us, dur_us);
        }
    }

    /// Span events stored so far (always empty without the `spans`
    /// feature).
    pub fn spans(&self) -> &[SpanEvent] {
        #[cfg(feature = "spans")]
        {
            &self.spans
        }
        #[cfg(not(feature = "spans"))]
        {
            &[]
        }
    }

    /// The retained recent steps, oldest → newest.
    pub fn steps(&self) -> impl Iterator<Item = &StepMetrics> {
        self.ring.iter()
    }

    /// The underlying ring buffer.
    pub fn ring(&self) -> &StepRing {
        &self.ring
    }

    /// Whole-run totals.
    pub fn summary(&self) -> &ObsSummary {
        &self.summary
    }

    /// Everything recorded, as pretty JSON in the versioned
    /// `nestwx-obs-run-summary` envelope (see DESIGN.md "Summary JSON
    /// schema"): whole-run totals, ring retention (including the dropped
    /// count, so truncated traces are detectable), histogram summaries,
    /// timeline shape, and the analysis report.
    pub fn summary_json(&self) -> String {
        let run = RunSummary {
            schema: SUMMARY_SCHEMA.to_owned(),
            version: SUMMARY_VERSION,
            summary: self.summary.clone(),
            ring: RingInfo {
                capacity: self.ring.capacity() as u64,
                retained: self.ring.len() as u64,
                dropped: self.ring.dropped(),
                steps: self.ring.to_vec(),
            },
            hists: HistsOut {
                step_time: self.step_hist.summary(),
                rank_mpi_wait: self.wait_hist.summary(),
                msg_latency: self.net.as_ref().map(|n| n.msg_latency.summary()),
            },
            timeline: self.timeline.as_ref().map(|tl| TimelineInfo {
                nranks: tl.nranks(),
                lanes: tl.lanes(),
                rank_stride: tl.rank_stride(),
                step_stride: tl.step_stride(),
                frames: tl.frames() as u64,
                recorded_steps: tl.recorded_steps(),
                decimations: tl.decimations(),
            }),
            analysis: self.analysis(),
        };
        serde_json::to_string_pretty(&run).expect("summary serialization cannot fail")
    }

    /// The retained steps (plus spans, if stored) as Chrome `trace_event`
    /// JSON for `chrome://tracing`.
    pub fn chrome_trace_json(&self) -> String {
        trace::chrome_trace_json(self.ring.iter(), self.spans())
    }

    /// Writes [`Recorder::chrome_trace_json`] to `path`.
    pub fn write_chrome_trace(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.chrome_trace_json().as_bytes())
    }
}

/// `schema` tag of the summary-JSON envelope.
pub const SUMMARY_SCHEMA: &str = "nestwx-obs-run-summary";
/// Current version of the summary-JSON envelope. Version 1 was the bare
/// [`ObsSummary`] object (PR 2); version 2 wraps it in the envelope.
pub const SUMMARY_VERSION: u64 = 2;

/// `schema` tag of the `nestwx sweep` summary envelope (emitted by
/// `nestwx-sweep`, consumed by `nestwx obs report`).
pub const SWEEP_SCHEMA: &str = "nestwx-obs-sweep-summary";
/// Current version of the sweep summary envelope.
pub const SWEEP_VERSION: u64 = 1;

/// `schema` tag of the fleet summary envelope (emitted by `nestwx-fleet`
/// coordinators, consumed by `nestwx obs report`).
pub const FLEET_SCHEMA: &str = "nestwx-obs-fleet-summary";
/// Current version of the fleet summary envelope.
pub const FLEET_VERSION: u64 = 1;

/// The summary-JSON envelope (what [`Recorder::summary_json`] emits).
#[derive(Debug, Clone, Serialize)]
pub struct RunSummary {
    /// Always [`SUMMARY_SCHEMA`].
    pub schema: String,
    /// Always [`SUMMARY_VERSION`].
    pub version: u64,
    /// Whole-run aggregate counters.
    pub summary: ObsSummary,
    /// Ring retention state and the retained steps.
    pub ring: RingInfo,
    /// Histogram percentile summaries.
    pub hists: HistsOut,
    /// Timeline shape; `null` when timelines were off.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub timeline: Option<TimelineInfo>,
    /// Imbalance / link-utilization analysis.
    pub analysis: AnalysisReport,
}

/// Ring-buffer retention block of the envelope. `dropped > 0` means the
/// retained steps are a truncated suffix of the run.
#[derive(Debug, Clone, Serialize)]
pub struct RingInfo {
    /// Ring capacity.
    pub capacity: u64,
    /// Steps currently retained.
    pub retained: u64,
    /// Steps overwritten (lost) because the ring was full.
    pub dropped: u64,
    /// The retained steps, oldest → newest.
    pub steps: Vec<StepMetrics>,
}

/// Histogram block of the envelope.
#[derive(Debug, Clone, Serialize)]
pub struct HistsOut {
    /// Per-step wall-clock durations (non-I/O steps).
    pub step_time: HistSummary,
    /// Per-rank halo MPI_Wait seconds (zero-count unless timelines were
    /// on).
    pub rank_mpi_wait: HistSummary,
    /// Message injection-to-delivery latency; `null` without net detail.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub msg_latency: Option<HistSummary>,
}

/// Timeline-shape block of the envelope (the columns stay in memory; the
/// JSON carries only the bounds actually reached).
#[derive(Debug, Clone, Serialize)]
pub struct TimelineInfo {
    /// Producer's total rank count.
    pub nranks: u32,
    /// Sampled lanes.
    pub lanes: u32,
    /// Rank sampling stride.
    pub rank_stride: u32,
    /// Recorded steps per frame after decimation.
    pub step_stride: u64,
    /// Frames held.
    pub frames: u64,
    /// Total steps recorded into the timeline.
    pub recorded_steps: u64,
    /// Times the frame buffer was decimated.
    pub decimations: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(step: u64, phase: StepPhase, nest: i32) -> StepMetrics {
        StepMetrics {
            step,
            phase,
            nest,
            domains: 1,
            start: step as f64,
            end: step as f64 + 0.5,
            compute: 1.0,
            halo_wait: 0.25,
            bytes: 100.0,
            messages: 2,
            transfers: 2,
            hops: 6,
            stall: 0.01,
        }
    }

    #[test]
    fn totals_accumulate_and_split_per_nest() {
        let mut rec = Recorder::new(ObsConfig::counters());
        rec.record_step(metrics(1, StepPhase::Parent, -1));
        rec.record_step(metrics(2, StepPhase::Nest, 1));
        rec.record_step(metrics(3, StepPhase::Nest, 1));
        rec.record_step(metrics(3, StepPhase::Io, -1));
        let s = rec.summary();
        assert_eq!(s.steps, 3);
        assert_eq!(s.messages, 6);
        assert_eq!(s.halo_wait, 0.75);
        assert_eq!(s.io_time, 0.5);
        assert_eq!(s.per_nest.len(), 2);
        assert_eq!(s.per_nest[0].steps, 0);
        assert_eq!(s.per_nest[1].steps, 2);
        assert_eq!(s.per_nest[1].halo_wait, 0.5);
        assert_eq!(s.avg_hops(), 3.0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut rec = Recorder::new(ObsConfig::counters());
        rec.record_step(metrics(1, StepPhase::Parent, -1));
        rec.span("x", 0, 0.0, 1.0);
        rec.clear();
        assert_eq!(rec.summary(), &ObsSummary::default());
        assert_eq!(rec.steps().count(), 0);
        assert!(rec.spans().is_empty());
    }

    #[test]
    fn summary_json_parses() {
        let mut rec = Recorder::new(ObsConfig::counters());
        rec.record_step(metrics(1, StepPhase::Nest, 0));
        let v = serde_json::from_str(&rec.summary_json()).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str().unwrap(), SUMMARY_SCHEMA);
        assert_eq!(v.get("version").unwrap().as_u64().unwrap(), SUMMARY_VERSION);
        let s = v.get("summary").unwrap();
        assert_eq!(s.get("steps").unwrap().as_u64().unwrap(), 1);
        assert_eq!(s.get("hops").unwrap().as_u64().unwrap(), 6);
        let ring = v.get("ring").unwrap();
        assert_eq!(ring.get("dropped").unwrap().as_u64().unwrap(), 0);
        assert_eq!(ring.get("retained").unwrap().as_u64().unwrap(), 1);
        // Counter-only config: no timeline block, no msg_latency.
        assert!(v.get("timeline").is_none());
        assert!(v.get("hists").unwrap().get("msg_latency").is_none());
        assert!(v.get("analysis").is_some());
    }

    #[test]
    fn summary_json_reports_ring_drops_and_detail_blocks() {
        let mut rec = Recorder::new(ObsConfig::detailed().with_ring_capacity(2));
        for i in 1..=5u64 {
            rec.record_step(metrics(i, StepPhase::Nest, 0));
            rec.record_rank_step(
                4,
                i,
                0,
                i as f64,
                i as f64 + 0.5,
                0..4u32,
                |g| 0.1 * (g + 1) as f64,
                |_| 0.05,
            );
        }
        let v = serde_json::from_str(&rec.summary_json()).unwrap();
        let ring = v.get("ring").unwrap();
        assert_eq!(ring.get("dropped").unwrap().as_u64().unwrap(), 3);
        assert_eq!(ring.get("retained").unwrap().as_u64().unwrap(), 2);
        let tl = v.get("timeline").unwrap();
        assert_eq!(tl.get("nranks").unwrap().as_u64().unwrap(), 4);
        assert_eq!(tl.get("recorded_steps").unwrap().as_u64().unwrap(), 5);
        let hists = v.get("hists").unwrap();
        let wait = hists.get("rank_mpi_wait").unwrap();
        assert_eq!(wait.get("count").unwrap().as_u64().unwrap(), 20);
        let analysis = v.get("analysis").unwrap();
        assert!(analysis.get("overall_imbalance").unwrap().as_f64().unwrap() > 1.0);
    }

    #[test]
    fn span_storage_matches_feature() {
        let mut rec = Recorder::new(ObsConfig::counters());
        rec.span("probe", 3, 10.0, 5.0);
        assert_eq!(rec.spans().len(), usize::from(SPANS_ENABLED));
    }
}

//! Imbalance attribution and link-utilization analysis.
//!
//! Turns the raw recordings ([`ObsSummary`] aggregates, the per-rank
//! [`Timeline`], and the per-link busy accounting) into the quantities the
//! paper argues from: per-nest execution-time ratios (the allocator's
//! input, Algorithm 1), per-nest load-imbalance factors (max/mean), the
//! ranks that most often sit on the critical path, and a torus
//! link-utilization heatmap summarising where routed transfers contend.

use crate::hist::LogHistogram;
use crate::timeline::Timeline;
use crate::ObsSummary;
use serde::Serialize;

/// Per-link network recordings handed over by the network model: one
/// message-latency histogram plus busy-seconds per directed torus link.
#[derive(Debug, Clone)]
pub struct NetDetail {
    /// Injection-to-delivery latency of every transfer.
    pub msg_latency: LogHistogram,
    /// Serialization busy-seconds per directed link, indexed by link id
    /// (`node*6 + dim*2 + direction`).
    pub link_busy: Vec<f64>,
    /// Torus dimensions, for decoding link ids back to coordinates.
    pub torus_dims: [u32; 3],
}

impl NetDetail {
    /// An empty recording for a torus of the given dimensions.
    pub fn new(torus_dims: [u32; 3], links: usize) -> NetDetail {
        NetDetail {
            msg_latency: LogHistogram::new(),
            link_busy: vec![0.0; links],
            torus_dims,
        }
    }

    /// Clears recorded contents, keeping the shape.
    pub fn clear(&mut self) {
        self.msg_latency.clear();
        for b in &mut self.link_busy {
            *b = 0.0;
        }
    }
}

/// Analysis over one recorded run: imbalance factors, critical-path ranks,
/// and (when per-link recording was on) link utilization.
#[derive(Debug, Clone, Serialize)]
pub struct AnalysisReport {
    /// Whole-run load-imbalance factor: max/mean of per-rank busy
    /// (compute + halo-wait) seconds over the sampled lanes. 1.0 is
    /// perfectly balanced; 0.0 when no timeline was recorded.
    pub overall_imbalance: f64,
    /// Per-nest breakdown with time ratios and imbalance factors.
    pub per_nest: Vec<NestAnalysis>,
    /// Ranks most often on the critical path (largest compute + wait in a
    /// frame), descending by frame count. Empty without a timeline.
    pub critical_ranks: Vec<RankShare>,
    /// Torus link utilization; absent when per-link recording was off.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub links: Option<LinkUtil>,
}

/// Per-nest timing and imbalance.
#[derive(Debug, Clone, Serialize)]
pub struct NestAnalysis {
    /// Nest index.
    pub nest: u32,
    /// Steps recorded for this nest.
    pub steps: u64,
    /// Wall-clock seconds spent in this nest's steps.
    pub time: f64,
    /// Compute seconds.
    pub compute: f64,
    /// Halo-wait seconds.
    pub halo_wait: f64,
    /// This nest's share of the summed per-nest time — the execution-time
    /// ratio the paper's allocator consumes.
    pub time_ratio: f64,
    /// Load-imbalance factor (max/mean per-lane compute over this nest's
    /// frames); 0.0 when the timeline holds no frames for it.
    pub imbalance: f64,
}

/// How often one rank was the critical path.
#[derive(Debug, Clone, Serialize)]
pub struct RankShare {
    /// Global rank.
    pub rank: u32,
    /// Frames where this rank had the largest compute + wait.
    pub frames: u64,
    /// Fraction of all frames.
    pub share: f64,
}

/// Torus link-utilization summary (utilization = busy seconds divided by
/// the run's simulated end time).
#[derive(Debug, Clone, Serialize)]
pub struct LinkUtil {
    /// Directed links in the torus.
    pub links: u64,
    /// Links with any traffic.
    pub active_links: u64,
    /// Total busy seconds over all links.
    pub total_busy: f64,
    /// Mean utilization over all links.
    pub mean_util: f64,
    /// Hottest link's utilization.
    pub max_util: f64,
    /// 99th-percentile link utilization.
    pub p99_util: f64,
    /// The hottest links, descending by busy time.
    pub top: Vec<LinkLoad>,
}

/// One directed torus link and its load.
#[derive(Debug, Clone, Serialize)]
pub struct LinkLoad {
    /// Directed link id (`node*6 + dim*2 + direction`).
    pub link: u32,
    /// Source node index.
    pub node: u32,
    /// Source node x coordinate.
    pub coord_x: u32,
    /// Source node y coordinate.
    pub coord_y: u32,
    /// Source node z coordinate.
    pub coord_z: u32,
    /// Direction: `"x+"`, `"x-"`, `"y+"`, `"y-"`, `"z+"`, `"z-"`.
    pub dim: String,
    /// Busy (serialization) seconds.
    pub busy: f64,
    /// Busy seconds / simulated run end.
    pub util: f64,
}

/// How many hottest links [`LinkUtil::top`] lists.
const TOP_LINKS: usize = 8;
/// How many critical-path ranks [`AnalysisReport::critical_ranks`] lists.
const TOP_RANKS: usize = 5;

fn decode_link(link: u32, dims: [u32; 3]) -> (u32, u32, u32, u32, String) {
    let node = link / 6;
    let rem = link % 6;
    let dim = rem / 2;
    let positive = rem.is_multiple_of(2);
    let (dx, dy) = (dims[0].max(1), dims[1].max(1));
    let x = node % dx;
    let y = (node / dx) % dy;
    let z = node / (dx * dy);
    let name = format!(
        "{}{}",
        ["x", "y", "z"][dim as usize % 3],
        if positive { "+" } else { "-" }
    );
    (node, x, y, z, name)
}

fn imbalance_of(busy: &[f64]) -> f64 {
    let active: Vec<f64> = busy.iter().copied().filter(|&b| b > 0.0).collect();
    if active.is_empty() {
        return 0.0;
    }
    let max = active.iter().copied().fold(0.0f64, f64::max);
    let mean = active.iter().sum::<f64>() / active.len() as f64;
    if mean > 0.0 {
        max / mean
    } else {
        0.0
    }
}

/// Computes the analysis from whatever was recorded. `last_end` is the
/// simulated end time of the run (denominator for link utilization).
pub fn compute(
    summary: &ObsSummary,
    timeline: Option<&Timeline>,
    net: Option<&NetDetail>,
    last_end: f64,
) -> AnalysisReport {
    // Per-nest aggregates come straight from the summary (available even
    // without a timeline), ratios from the summed per-nest time.
    let nest_time_total: f64 = summary.per_nest.iter().map(|n| n.time).sum();
    let mut per_nest: Vec<NestAnalysis> = summary
        .per_nest
        .iter()
        .enumerate()
        .map(|(i, n)| NestAnalysis {
            nest: i as u32,
            steps: n.steps,
            time: n.time,
            compute: n.compute,
            halo_wait: n.halo_wait,
            time_ratio: if nest_time_total > 0.0 {
                n.time / nest_time_total
            } else {
                0.0
            },
            imbalance: 0.0,
        })
        .collect();

    let mut overall_imbalance = 0.0;
    let mut critical_ranks = Vec::new();
    if let Some(tl) = timeline {
        let lanes = tl.lanes() as usize;
        if lanes > 0 && tl.frames() > 0 {
            // Whole-run per-lane busy totals.
            let mut busy = vec![0.0f64; lanes];
            // Per-nest per-lane compute (only frames attributed to one nest).
            let mut nest_busy: Vec<Vec<f64>> = per_nest.iter().map(|_| vec![0.0; lanes]).collect();
            let mut crit_counts: Vec<(u32, u64)> = Vec::new();
            for (fi, m) in tl.meta().iter().enumerate() {
                let c = tl.frame_compute(fi);
                let w = tl.frame_wait(fi);
                for l in 0..lanes {
                    busy[l] += c[l] as f64 + w[l] as f64;
                    if m.nest >= 0 {
                        if let Some(nb) = nest_busy.get_mut(m.nest as usize) {
                            nb[l] += c[l] as f64;
                        }
                    }
                }
                match crit_counts.iter_mut().find(|(r, _)| *r == m.crit_rank) {
                    Some((_, n)) => *n += 1,
                    None => crit_counts.push((m.crit_rank, 1)),
                }
            }
            overall_imbalance = imbalance_of(&busy);
            for (n, nb) in per_nest.iter_mut().zip(&nest_busy) {
                n.imbalance = imbalance_of(nb);
            }
            crit_counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let total_frames = tl.frames() as f64;
            critical_ranks = crit_counts
                .into_iter()
                .take(TOP_RANKS)
                .map(|(rank, frames)| RankShare {
                    rank,
                    frames,
                    share: frames as f64 / total_frames,
                })
                .collect();
        }
    }

    let links = net.map(|net| {
        let span = if last_end > 0.0 { last_end } else { 1.0 };
        let nlinks = net.link_busy.len();
        let active = net.link_busy.iter().filter(|&&b| b > 0.0).count();
        let total: f64 = net.link_busy.iter().sum();
        let max = net.link_busy.iter().copied().fold(0.0f64, f64::max);
        let mut utils = LogHistogram::new();
        for &b in &net.link_busy {
            utils.record(b / span);
        }
        let mut order: Vec<u32> = (0..nlinks as u32).collect();
        order.sort_by(|&a, &b| {
            net.link_busy[b as usize]
                .partial_cmp(&net.link_busy[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let top = order
            .into_iter()
            .take(TOP_LINKS)
            .filter(|&l| net.link_busy[l as usize] > 0.0)
            .map(|l| {
                let (node, x, y, z, dim) = decode_link(l, net.torus_dims);
                LinkLoad {
                    link: l,
                    node,
                    coord_x: x,
                    coord_y: y,
                    coord_z: z,
                    dim,
                    busy: net.link_busy[l as usize],
                    util: net.link_busy[l as usize] / span,
                }
            })
            .collect();
        LinkUtil {
            links: nlinks as u64,
            active_links: active as u64,
            total_busy: total,
            mean_util: if nlinks > 0 {
                total / span / nlinks as f64
            } else {
                0.0
            },
            max_util: max / span,
            p99_util: utils.quantile(0.99),
            top,
        }
    });

    AnalysisReport {
        overall_imbalance,
        per_nest,
        critical_ranks,
        links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TimelineConfig;
    use crate::NestBreakdown;

    fn summary_with_nests(times: &[f64]) -> ObsSummary {
        let mut s = ObsSummary::default();
        for &t in times {
            s.per_nest.push(NestBreakdown {
                steps: 10,
                time: t,
                compute: t * 0.8,
                halo_wait: t * 0.2,
            });
        }
        s
    }

    #[test]
    fn time_ratios_follow_per_nest_times() {
        let s = summary_with_nests(&[3.0, 1.0]);
        let r = compute(&s, None, None, 4.0);
        assert_eq!(r.per_nest.len(), 2);
        assert!((r.per_nest[0].time_ratio - 0.75).abs() < 1e-12);
        assert!((r.per_nest[1].time_ratio - 0.25).abs() < 1e-12);
        assert_eq!(r.overall_imbalance, 0.0, "no timeline, no imbalance");
        assert!(r.links.is_none());
    }

    #[test]
    fn imbalance_and_critical_ranks_from_timeline() {
        let s = summary_with_nests(&[1.0]);
        let mut tl = Timeline::new(TimelineConfig {
            max_frames: 8,
            max_ranks: 8,
        });
        // Rank 3 works 3×, ranks 0-2 work 1× — imbalance = 3 / 1.5 = 2.
        for step in 1..=4u64 {
            tl.record_step(
                4,
                step,
                0,
                step as f64,
                step as f64 + 3.0,
                0..4u32,
                |g| if g == 3 { 3.0 } else { 1.0 },
                |_| 0.0,
            );
        }
        let r = compute(&s, Some(&tl), None, 16.0);
        assert!((r.overall_imbalance - 2.0).abs() < 1e-6);
        assert!((r.per_nest[0].imbalance - 2.0).abs() < 1e-6);
        assert_eq!(r.critical_ranks[0].rank, 3);
        assert_eq!(r.critical_ranks[0].frames, 4);
        assert!((r.critical_ranks[0].share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn link_util_decodes_hot_links() {
        let s = summary_with_nests(&[]);
        let mut net = NetDetail::new([2, 2, 2], 48);
        // Node 3 = (1,1,0); dim 1 (y), negative direction → link 3*6+1*2+1.
        net.link_busy[3 * 6 + 3] = 2.0;
        net.link_busy[0] = 0.5;
        net.msg_latency.record(1e-6);
        let r = compute(&s, None, Some(&net), 4.0);
        let links = r.links.expect("link detail present");
        assert_eq!(links.links, 48);
        assert_eq!(links.active_links, 2);
        assert!((links.total_busy - 2.5).abs() < 1e-12);
        assert!((links.max_util - 0.5).abs() < 1e-12);
        let hot = &links.top[0];
        assert_eq!(hot.link, 21);
        assert_eq!(hot.node, 3);
        assert_eq!((hot.coord_x, hot.coord_y, hot.coord_z), (1, 1, 0));
        assert_eq!(hot.dim, "y-");
        assert!((hot.util - 0.5).abs() < 1e-12);
        // Second entry is link 0 = node 0, x+.
        assert_eq!(links.top[1].link, 0);
        assert_eq!(links.top[1].dim, "x+");
    }
}

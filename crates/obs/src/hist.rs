//! Fixed-bucket log-scale histograms for latency-like quantities.
//!
//! Every [`LogHistogram`] uses the *same* bucket layout — bucket 0 for
//! values below [`LogHistogram::MIN_EDGE`], then 63 logarithmically spaced
//! buckets up to [`LogHistogram::MAX_EDGE`] seconds, with everything above
//! saturating into the top bucket — so merging two histograms is a plain
//! element-wise add. Merge is therefore associative and the empty histogram
//! is its identity, which is what makes per-rank histograms reducible
//! across ranks (MPI_Reduce-style) without any renormalisation step.
//!
//! Quantiles come from the cumulative bucket counts and are reported as the
//! bucket's upper edge (clamped to the exact observed maximum), i.e. they
//! are conservative to within one bucket width (~5 buckets per decade).

use serde::Serialize;

/// Number of buckets (fixed for all histograms).
const BUCKETS: usize = 64;
/// Log-spaced buckets above bucket 0.
const LOG_BUCKETS: f64 = (BUCKETS - 1) as f64;
/// Decades spanned by the log-spaced buckets.
const DECADES: f64 = 13.0;

/// A mergeable histogram over positive seconds with a fixed log-scale
/// bucket layout. `min`/`max`/`sum` are tracked exactly; quantiles are
/// bucket-resolution approximations.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Lower edge of bucket 1: values below land in bucket 0.
    pub const MIN_EDGE: f64 = 1e-9;
    /// Upper edge of the top bucket: values at or above saturate into it.
    pub const MAX_EDGE: f64 = 1e4;

    /// An empty histogram (the merge identity).
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    /// Bucket index for a value (non-positive and non-finite values count
    /// as zero seconds, bucket 0).
    fn bucket(v: f64) -> usize {
        if !(v.is_finite() && v >= Self::MIN_EDGE) {
            return 0;
        }
        let b = 1.0 + (v / Self::MIN_EDGE).log10() * (LOG_BUCKETS / DECADES);
        (b as usize).min(BUCKETS - 1)
    }

    /// Upper edge of a bucket, in seconds.
    fn upper_edge(i: usize) -> f64 {
        if i == 0 {
            Self::MIN_EDGE
        } else {
            Self::MIN_EDGE * 10f64.powf(i as f64 * DECADES / LOG_BUCKETS)
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: f64) {
        let x = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        self.counts[Self::bucket(x)] += 1;
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Records a wall-clock duration as seconds — the convenience the
    /// request-latency call sites use.
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    /// Element-wise merge of another histogram into this one. Associative;
    /// merging an empty histogram is a no-op.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `q`-quantile (`0 < q <= 1`) at bucket resolution: the upper edge
    /// of the bucket holding the `ceil(q·count)`-th smallest value, clamped
    /// to the exact observed maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return if i == BUCKETS - 1 {
                    // Saturated top bucket: the edge underestimates, the
                    // exact max is the best bound we have.
                    self.max
                } else {
                    Self::upper_edge(i).min(self.max)
                };
            }
        }
        self.max
    }

    /// The summary row (count, mean, p50/p90/p99, max) for reports.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            mean: self.mean(),
            min: self.min(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }

    /// Clears all recorded values.
    pub fn clear(&mut self) {
        *self = LogHistogram::new();
    }
}

/// Percentile summary of a [`LogHistogram`] (what the JSON export and the
/// report tables carry; the bucket array stays in memory).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HistSummary {
    /// Values recorded.
    pub count: u64,
    /// Exact mean in seconds.
    pub mean: f64,
    /// Exact minimum in seconds.
    pub min: f64,
    /// Median, at bucket resolution.
    pub p50: f64,
    /// 90th percentile, at bucket resolution.
    pub p90: f64,
    /// 99th percentile, at bucket resolution.
    pub p99: f64,
    /// Exact maximum in seconds.
    pub max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: &[f64]) -> LogHistogram {
        let mut h = LogHistogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn merge_is_associative() {
        // Power-of-two values keep the float sums exact, so the merged
        // histograms compare bitwise equal either way around.
        let a = filled(&[0.5, 2.0, 64.0]);
        let b = filled(&[1e-6, 0.25]);
        let c = filled(&[4.0, 4.0, 1e-3]);
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.count(), 8);
    }

    #[test]
    fn empty_merge_is_identity() {
        let a = filled(&[1e-4, 3.0, 0.02]);
        let mut merged = a.clone();
        merged.merge(&LogHistogram::new());
        assert_eq!(merged, a);
        // Identity from the left as well.
        let mut left = LogHistogram::new();
        left.merge(&a);
        assert_eq!(left, a);
    }

    #[test]
    fn top_bucket_saturates() {
        let mut h = LogHistogram::new();
        h.record(1e9); // far above MAX_EDGE
        h.record(7e3); // inside the top bucket (edges ~6.2e3 .. 1e4)
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 1e9, "max stays exact despite saturation");
        // Both land in the saturated bucket, so every quantile reports the
        // exact max rather than the (underestimating) bucket edge.
        assert_eq!(h.quantile(0.5), 1e9);
        assert_eq!(h.quantile(0.99), 1e9);
    }

    #[test]
    fn quantiles_bracket_values() {
        let mut values = vec![1e-5; 90];
        values.extend([1e-2; 10]);
        let h = filled(&values);
        // p50 must cover the small cluster, p99 the large one; bucket
        // resolution is ~5 buckets/decade, so allow a factor of 2.
        assert!(h.quantile(0.5) >= 1e-5 && h.quantile(0.5) < 2e-5);
        assert!(h.quantile(0.99) >= 1e-2 && h.quantile(0.99) <= h.max());
        assert!(h.quantile(0.5) <= h.quantile(0.9));
        assert!(h.quantile(0.9) <= h.quantile(0.99));
    }

    #[test]
    fn non_positive_and_tiny_values_land_in_bucket_zero() {
        let h = filled(&[0.0, -3.0, f64::NAN, 1e-12]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0.0);
        assert!(h.quantile(0.99) <= LogHistogram::MIN_EDGE);
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert!(s.p50 <= LogHistogram::MIN_EDGE);
    }

    #[test]
    fn durations_record_as_seconds() {
        let mut h = LogHistogram::new();
        h.record_duration(std::time::Duration::from_millis(250));
        assert_eq!(h.count(), 1);
        assert!((h.sum() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_zeroed() {
        let s = LogHistogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p99, 0.0);
        assert_eq!(s.max, 0.0);
    }
}

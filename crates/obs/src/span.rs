//! Span events for the feature-gated detailed-span mode.
//!
//! A span is a named duration on a logical thread lane, exported as a
//! Chrome `trace_event` complete ("X") event. Spans are only *stored* when
//! the crate's `spans` feature is enabled; without it every
//! [`crate::Recorder::span`] call is a no-op the optimiser removes, so the
//! always-on counter core pays nothing for the instrumentation points.

use serde::Serialize;

/// Whether span storage is compiled in (`spans` feature).
pub const SPANS_ENABLED: bool = cfg!(feature = "spans");

/// One named duration, in microseconds on the trace timeline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpanEvent {
    /// Display name.
    pub name: String,
    /// Start, microseconds.
    pub ts: f64,
    /// Duration, microseconds.
    pub dur: f64,
    /// Logical lane (thread id in the trace viewer).
    pub tid: u32,
}

//! The workspace's single wall-clock source.
//!
//! Every timing measurement in the workspace flows through [`now`] — this
//! file is the only place outside tests allowed to call
//! `std::time::Instant::now()` (enforced by `nestwx lint` rule NW-D002).
//! Centralizing the read keeps timing out of determinism-sensitive paths
//! by construction: planners, canonicalization and replay code cannot
//! accidentally branch on wall time without importing this module, which
//! the lint flags in those scopes.

use std::time::{Duration, Instant};

/// Reads the monotonic clock. The returned [`Instant`] behaves exactly
/// like `Instant::now()` — use `.elapsed()` or subtraction as usual.
#[inline]
pub fn now() -> Instant {
    Instant::now()
}

/// Convenience: elapsed wall time since `start`, as a [`Duration`].
#[inline]
pub fn since(start: Instant) -> Duration {
    start.elapsed()
}

/// A deadline `timeout` from now. The single construction point for
/// deadlines: code that holds an `Instant` made here can only test it via
/// [`expired`]/[`remaining`], so every deadline comparison flows through
/// this shim (enforced by `nestwx lint` rule NW-S005 on the serve crate).
#[inline]
pub fn deadline_after(timeout: Duration) -> Instant {
    now() + timeout
}

/// True when `deadline` has passed.
#[inline]
pub fn expired(deadline: Instant) -> bool {
    now() >= deadline
}

/// Time left until `deadline` (zero when already expired).
#[inline]
pub fn remaining(deadline: Instant) -> Duration {
    deadline.saturating_duration_since(now())
}

/// Microseconds elapsed since `epoch`, saturating. The rate-limiter's
/// notion of time: buckets refill against this single monotonic scale, so
/// a virtual-time hook here would steer every refill at once.
#[inline]
pub fn micros_since(epoch: Instant) -> u64 {
    since(epoch).as_micros().min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    #[test]
    fn clock_is_monotonic() {
        let a = super::now();
        let b = super::now();
        assert!(b >= a);
        assert!(super::since(a) >= Duration::ZERO);
    }

    #[test]
    fn deadlines_expire_and_report_remaining() {
        let past = super::deadline_after(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert!(super::expired(past));
        assert_eq!(super::remaining(past), Duration::ZERO);
        let future = super::deadline_after(Duration::from_secs(3600));
        assert!(!super::expired(future));
        assert!(super::remaining(future) > Duration::from_secs(3000));
    }

    #[test]
    fn micros_since_advances() {
        let epoch = super::now();
        let a = super::micros_since(epoch);
        std::thread::sleep(Duration::from_millis(2));
        let b = super::micros_since(epoch);
        assert!(b > a);
    }
}

//! The workspace's single wall-clock source.
//!
//! Every timing measurement in the workspace flows through [`now`] — this
//! file is the only place outside tests allowed to call
//! `std::time::Instant::now()` (enforced by `nestwx lint` rule NW-D002).
//! Centralizing the read keeps timing out of determinism-sensitive paths
//! by construction: planners, canonicalization and replay code cannot
//! accidentally branch on wall time without importing this module, which
//! the lint flags in those scopes.

use std::time::{Duration, Instant};

/// Reads the monotonic clock. The returned [`Instant`] behaves exactly
/// like `Instant::now()` — use `.elapsed()` or subtraction as usual.
#[inline]
pub fn now() -> Instant {
    Instant::now()
}

/// Convenience: elapsed wall time since `start`, as a [`Duration`].
#[inline]
pub fn since(start: Instant) -> Duration {
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    #[test]
    fn clock_is_monotonic() {
        let a = super::now();
        let b = super::now();
        assert!(b >= a);
        assert!(super::since(a) >= Duration::ZERO);
    }
}

//! Fixed-capacity ring buffer for [`StepMetrics`] records.
//!
//! The recorder keeps the most recent `capacity` steps; older records are
//! overwritten (and counted in [`StepRing::dropped`]) so a long simulation
//! can stay under a fixed memory budget while the aggregate totals in
//! [`crate::ObsSummary`] still cover the whole run.

use crate::StepMetrics;

/// Ring buffer of the most recent step records.
#[derive(Debug, Clone)]
pub struct StepRing {
    buf: Vec<StepMetrics>,
    cap: usize,
    /// Next write position.
    head: usize,
    /// Records dropped because the ring was full.
    dropped: u64,
}

impl StepRing {
    /// An empty ring holding at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> StepRing {
        let cap = capacity.max(1);
        StepRing {
            buf: Vec::with_capacity(cap.min(1024)),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends a record, overwriting the oldest once full.
    pub fn push(&mut self, m: StepMetrics) {
        if self.buf.len() < self.cap {
            self.buf.push(m);
        } else {
            self.buf[self.head] = m;
            self.dropped += 1;
        }
        self.head = (self.head + 1) % self.cap;
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum records held.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates records oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &StepMetrics> {
        let split = if self.buf.len() < self.cap {
            0
        } else {
            self.head
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    /// The records oldest → newest as a vector.
    pub fn to_vec(&self) -> Vec<StepMetrics> {
        self.iter().cloned().collect()
    }

    /// Forgets every record (capacity is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StepPhase;

    fn m(step: u64) -> StepMetrics {
        StepMetrics {
            step,
            phase: StepPhase::Parent,
            nest: -1,
            domains: 1,
            start: step as f64,
            end: step as f64 + 1.0,
            compute: 0.0,
            halo_wait: 0.0,
            bytes: 0.0,
            messages: 0,
            transfers: 0,
            hops: 0,
            stall: 0.0,
        }
    }

    #[test]
    fn keeps_most_recent_in_order() {
        let mut r = StepRing::new(3);
        for s in 1..=5 {
            r.push(m(s));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let steps: Vec<u64> = r.iter().map(|x| x.step).collect();
        assert_eq!(steps, vec![3, 4, 5]);
    }

    #[test]
    fn below_capacity_keeps_all() {
        let mut r = StepRing::new(8);
        for s in 1..=3 {
            r.push(m(s));
        }
        assert_eq!(r.dropped(), 0);
        let steps: Vec<u64> = r.iter().map(|x| x.step).collect();
        assert_eq!(steps, vec![1, 2, 3]);
    }

    #[test]
    fn clear_resets() {
        let mut r = StepRing::new(2);
        r.push(m(1));
        r.push(m(2));
        r.push(m(3));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        r.push(m(9));
        assert_eq!(r.to_vec()[0].step, 9);
    }
}

//! Chrome `trace_event` export.
//!
//! Converts recorded [`StepMetrics`] (simulated seconds) and
//! [`SpanEvent`]s (already in microseconds) into the JSON object format
//! understood by `chrome://tracing` and <https://ui.perfetto.dev>: a
//! `traceEvents` array of complete ("X") events with per-event `args`
//! carrying the step counters.

use crate::span::SpanEvent;
use crate::{StepMetrics, StepPhase};
use serde::Serialize;

/// Seconds → trace microseconds.
const US_PER_S: f64 = 1e6;

#[derive(Serialize)]
struct EventArgs {
    compute: f64,
    halo_wait: f64,
    bytes: f64,
    messages: u64,
    hops: u64,
    stall: f64,
}

#[derive(Serialize)]
struct Event {
    name: String,
    cat: String,
    ph: String,
    ts: f64,
    dur: f64,
    pid: u32,
    tid: u32,
    args: EventArgs,
}

#[allow(non_snake_case)]
#[derive(Serialize)]
struct TraceFile {
    traceEvents: Vec<Event>,
    displayTimeUnit: String,
}

/// Display name of a step record.
fn step_name(m: &StepMetrics) -> String {
    match (m.phase, m.nest) {
        (StepPhase::Parent, _) => "parent halo step".into(),
        (StepPhase::Nest, n) if n >= 0 => format!("nest {n} halo step"),
        (StepPhase::Nest, _) => format!("nests lockstep halo step ({} domains)", m.domains),
        (StepPhase::Child, n) if n >= 0 => format!("child nest {n} halo step"),
        (StepPhase::Child, _) => format!("children lockstep halo step ({} domains)", m.domains),
        (StepPhase::Io, _) => "history output".into(),
    }
}

/// Lane assignment: parent and I/O on lane 0, lockstep multi-nest steps on
/// lane 1, per-nest steps on `2 + nest`.
fn step_tid(m: &StepMetrics) -> u32 {
    match (m.phase, m.nest) {
        (StepPhase::Parent | StepPhase::Io, _) => 0,
        (_, n) if n >= 0 => 2 + n as u32,
        _ => 1,
    }
}

/// Builds the `chrome://tracing` JSON for the given step records and span
/// events. `steps` timestamps are simulated seconds (scaled to µs here);
/// `spans` are already on a microsecond timeline.
pub fn chrome_trace_json<'a, I>(steps: I, spans: &[SpanEvent]) -> String
where
    I: IntoIterator<Item = &'a StepMetrics>,
{
    let mut events: Vec<Event> = steps
        .into_iter()
        .map(|m| Event {
            name: step_name(m),
            cat: match m.phase {
                StepPhase::Io => "io".into(),
                _ => "halo".into(),
            },
            ph: "X".into(),
            ts: m.start * US_PER_S,
            dur: (m.end - m.start).max(0.0) * US_PER_S,
            pid: 0,
            tid: step_tid(m),
            args: EventArgs {
                compute: m.compute,
                halo_wait: m.halo_wait,
                bytes: m.bytes,
                messages: m.messages,
                hops: m.hops,
                stall: m.stall,
            },
        })
        .collect();
    for s in spans {
        events.push(Event {
            name: s.name.clone(),
            cat: "span".into(),
            ph: "X".into(),
            ts: s.ts,
            dur: s.dur,
            pid: 1,
            tid: s.tid,
            args: EventArgs {
                compute: 0.0,
                halo_wait: 0.0,
                bytes: 0.0,
                messages: 0,
                hops: 0,
                stall: 0.0,
            },
        });
    }
    let file = TraceFile {
        traceEvents: events,
        displayTimeUnit: "ms".into(),
    };
    serde_json::to_string_pretty(&file).expect("trace serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step() -> StepMetrics {
        StepMetrics {
            step: 1,
            phase: StepPhase::Nest,
            nest: 0,
            domains: 1,
            start: 0.5,
            end: 0.75,
            compute: 0.2,
            halo_wait: 0.05,
            bytes: 1024.0,
            messages: 4,
            transfers: 4,
            hops: 8,
            stall: 0.001,
        }
    }

    #[test]
    fn trace_is_valid_json_with_expected_fields() {
        let s = step();
        let json = chrome_trace_json(
            [&s],
            &[SpanEvent {
                name: "iteration".into(),
                ts: 0.0,
                dur: 250.0,
                tid: 0,
            }],
        );
        let v = serde_json::from_str(&json).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        let ev = &events[0];
        assert_eq!(ev.get("ph").unwrap().as_str().unwrap(), "X");
        assert_eq!(
            ev.get("name").unwrap().as_str().unwrap(),
            "nest 0 halo step"
        );
        // 0.5 s → 5e5 µs.
        assert_eq!(ev.get("ts").unwrap().as_f64().unwrap(), 5e5);
        assert_eq!(ev.get("tid").unwrap().as_u64().unwrap(), 2);
        let args = ev.get("args").unwrap();
        assert_eq!(args.get("messages").unwrap().as_u64().unwrap(), 4);
    }

    #[test]
    fn io_steps_land_on_lane_zero() {
        let mut s = step();
        s.phase = StepPhase::Io;
        s.nest = -1;
        let json = chrome_trace_json([&s], &[]);
        let v = serde_json::from_str(&json).unwrap();
        let ev = v.get("traceEvents").unwrap().get_index(0).unwrap();
        assert_eq!(ev.get("tid").unwrap().as_u64().unwrap(), 0);
        assert_eq!(ev.get("cat").unwrap().as_str().unwrap(), "io");
    }
}

//! Serve-side flight-recorder summary schema.
//!
//! `nestwx serve` drains its per-reader span rings through the `trace`
//! protocol endpoint as a versioned envelope (schema [`SERVE_SCHEMA`],
//! version [`SERVE_VERSION`]). This module owns the consumer side: schema
//! validation for `nestwx obs report|top|diff` and conversion of the
//! drained spans into Chrome `trace_event` JSON so serve traces open in
//! the same Perfetto UI as the simulator traces from [`crate::trace`].
//!
//! The envelope layout (all durations in microseconds on the server's
//! epoch timeline):
//!
//! ```json
//! {
//!   "schema": "nestwx-obs-serve-summary",
//!   "version": 1,
//!   "summary": {
//!     "recording": true, "readers": 2, "ring_capacity": 4096,
//!     "drained": 123, "dropped": 0,
//!     "recorded_total": 123, "dropped_total": 0,
//!     "slow_total": 1, "slow_threshold_us": 5000,
//!     "spans_truncated": 0, "slow_truncated": 0,
//!     "by_path": {"hot": 100, "inline": 3, "worker": 20, "deadline": 0},
//!     "by_op": {"predict": 0, "plan": 120, ...}
//!   },
//!   "spans": [ {"ts_us": ..., "op": "plan", "path": "worker", ...} ],
//!   "slow":  [ ...same shape... ]
//! }
//! ```

use crate::span::SpanEvent;
use crate::trace;
use serde_json::Value;

/// `schema` tag of the serve flight-recorder envelope.
pub const SERVE_SCHEMA: &str = "nestwx-obs-serve-summary";
/// Current version of the serve flight-recorder envelope.
pub const SERVE_VERSION: u64 = 1;

/// Lifecycle-path lanes used for the Chrome trace `tid` so hot-cache
/// hits, inline control responses, worker round-trips and deadline
/// expiries each render on their own track.
const PATH_LANES: [&str; 4] = ["hot", "inline", "worker", "deadline"];

/// Checks the `schema`/`version` tags of a serve summary. Returns the
/// version on success; a rendered error otherwise (unknown schema, or a
/// version this build does not understand).
pub fn check_serve_schema(v: &Value) -> Result<u64, String> {
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing 'schema' tag".to_string())?;
    if schema != SERVE_SCHEMA {
        return Err(format!(
            "unsupported schema '{schema}' (expected '{SERVE_SCHEMA}')"
        ));
    }
    let version = v
        .get("version")
        .and_then(Value::as_u64)
        .ok_or_else(|| "missing 'version' tag".to_string())?;
    if version != SERVE_VERSION {
        return Err(format!(
            "unsupported {SERVE_SCHEMA} version {version} (this build reads {SERVE_VERSION})"
        ));
    }
    Ok(version)
}

/// Lane index of a lifecycle path name (unknown paths share lane 0).
fn path_lane(path: &str) -> u32 {
    PATH_LANES
        .iter()
        .position(|p| *p == path)
        .map(|i| i as u32)
        .unwrap_or(0)
}

/// Converts one drained span object into a Chrome trace [`SpanEvent`].
fn span_event(s: &Value) -> Option<SpanEvent> {
    let op = s.get("op").and_then(Value::as_str)?;
    let path = s.get("path").and_then(Value::as_str)?;
    let ts = s.get("ts_us").and_then(Value::as_f64)?;
    let dur = s.get("total_us").and_then(Value::as_f64)?;
    let ok = s.get("ok").and_then(Value::as_bool).unwrap_or(true);
    let mark = if ok { "" } else { " (err)" };
    Some(SpanEvent {
        name: format!("{op}/{path}{mark}"),
        ts,
        dur,
        tid: path_lane(path),
    })
}

/// Renders a serve summary envelope as Chrome `trace_event` JSON: one
/// complete ("X") event per drained span (and per slow-log entry, on the
/// same timeline), lanes keyed by lifecycle path. Validates the schema
/// tag first so `nestwx obs` surfaces version skew instead of emitting an
/// empty trace.
pub fn serve_chrome_trace(v: &Value) -> Result<String, String> {
    check_serve_schema(v)?;
    let mut events = Vec::new();
    for key in ["spans", "slow"] {
        if let Some(arr) = v.get(key).and_then(Value::as_array) {
            for s in arr {
                if let Some(ev) = span_event(s) {
                    events.push(ev);
                }
            }
        }
    }
    Ok(trace::chrome_trace_json(
        std::iter::empty::<&crate::StepMetrics>(),
        &events,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope_json() -> &'static str {
        r#"{
            "schema": "nestwx-obs-serve-summary",
            "version": 1,
            "summary": {"recording": true, "drained": 2},
            "spans": [
                {"ts_us": 10, "op": "plan", "path": "worker",
                 "ok": true, "total_us": 500},
                {"ts_us": 40, "op": "plan", "path": "hot",
                 "ok": true, "total_us": 3}
            ],
            "slow": [
                {"ts_us": 10, "op": "compare", "path": "worker",
                 "ok": false, "total_us": 9000}
            ]
        }"#
    }

    fn envelope() -> Value {
        serde_json::from_str(envelope_json()).unwrap()
    }

    #[test]
    fn schema_check_accepts_current_version() {
        assert_eq!(check_serve_schema(&envelope()).unwrap(), SERVE_VERSION);
    }

    #[test]
    fn schema_check_rejects_wrong_schema_and_version() {
        let bad = envelope_json().replace("nestwx-obs-serve-summary", "bogus");
        let v: Value = serde_json::from_str(&bad).unwrap();
        assert!(check_serve_schema(&v).unwrap_err().contains("bogus"));

        let bad = envelope_json().replace("\"version\": 1", "\"version\": 99");
        let v: Value = serde_json::from_str(&bad).unwrap();
        assert!(check_serve_schema(&v).unwrap_err().contains("99"));
    }

    #[test]
    fn chrome_trace_covers_spans_and_slow_log() {
        let json = serve_chrome_trace(&envelope()).unwrap();
        let v: Value = serde_json::from_str(&json).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0].get("name").unwrap().as_str().unwrap(),
            "plan/worker"
        );
        assert_eq!(events[0].get("ph").unwrap().as_str().unwrap(), "X");
        // Hot-path spans land on lane 0, worker spans on lane 2.
        assert_eq!(events[1].get("tid").unwrap().as_u64().unwrap(), 0);
        assert_eq!(events[0].get("tid").unwrap().as_u64().unwrap(), 2);
        assert_eq!(
            events[2].get("name").unwrap().as_str().unwrap(),
            "compare/worker (err)"
        );
    }

    #[test]
    fn trace_rejects_wrong_version_instead_of_empty_output() {
        let bad = envelope_json().replace("\"version\": 1", "\"version\": 2");
        let v: Value = serde_json::from_str(&bad).unwrap();
        assert!(serve_chrome_trace(&v).is_err());
    }
}

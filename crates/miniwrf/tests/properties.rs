//! Property-based tests of the shallow-water solver and nesting.

use nestwx_miniwrf::nest::{
    feedback_to_parent, initialize_from_parent, interpolate_boundary, NestGeometry,
};
use nestwx_miniwrf::runtime::step_parallel;
use nestwx_miniwrf::solver::{Boundary, ShallowWater};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mass is conserved to round-off under periodic boundaries for any
    /// perturbation and any number of steps.
    #[test]
    fn mass_conserved(
        n in 12usize..48, cx_pct in 10u32..90, cy_pct in 10u32..90,
        amp in -8.0f64..-0.5, radius in 1.5f64..5.0, steps in 1u32..40,
    ) {
        let mut sw = ShallowWater::quiescent(n, n, 1000.0, 100.0, Boundary::Periodic);
        sw.add_gaussian(
            n as f64 * cx_pct as f64 / 100.0,
            n as f64 * cy_pct as f64 / 100.0,
            amp,
            radius,
        );
        let m0 = sw.mass();
        for _ in 0..steps {
            sw.step();
        }
        prop_assert!((sw.mass() - m0).abs() / m0 < 1e-9);
        prop_assert!(sw.cfl() < 1.0);
    }

    /// Banded (threaded) stepping is bitwise identical to serial stepping
    /// for any band count.
    #[test]
    fn threading_bitwise_stable(n in 12usize..40, threads in 2usize..6, steps in 1u32..8) {
        let mut serial = ShallowWater::quiescent(n, n, 1000.0, 100.0, Boundary::Periodic);
        serial.add_gaussian(n as f64 / 2.0, n as f64 / 2.0, -5.0, 3.0);
        let mut banded = serial.clone();
        for _ in 0..steps {
            serial.step();
            step_parallel(&mut banded, threads);
        }
        prop_assert_eq!(serial.h, banded.h);
        prop_assert_eq!(serial.hu, banded.hu);
        prop_assert_eq!(serial.hv, banded.hv);
    }

    /// Zero-gradient runs remain bounded: no value exceeds the initial
    /// extremes by more than a small overshoot factor (Lax–Friedrichs is
    /// diffusive).
    #[test]
    fn bounded_evolution(n in 16usize..40, amp in -10.0f64..-1.0, steps in 1u32..30) {
        let mut sw = ShallowWater::quiescent(n, n, 1000.0, 100.0, Boundary::ZeroGradient);
        sw.add_gaussian(n as f64 / 2.0, n as f64 / 2.0, amp, 3.0);
        for _ in 0..steps {
            sw.step();
        }
        let max = sw.h.max_abs();
        prop_assert!(max.is_finite());
        prop_assert!(max < 100.0 + amp.abs() * 1.5 + 1.0);
        prop_assert!(max > 50.0);
    }

    /// Feedback after initialisation is the identity on the covered parent
    /// region (restriction ∘ prolongation = id for cell means of bilinear
    /// data is not exact in general, but is for constants and near-exact
    /// for smooth fields).
    #[test]
    fn feedback_near_identity_on_smooth_fields(off in 2usize..6, r in 2usize..4) {
        let mut parent = ShallowWater::quiescent(24, 24, 3000.0, 100.0, Boundary::ZeroGradient);
        parent.add_gaussian(12.0, 12.0, -6.0, 6.0);
        let before = parent.h.clone();
        let geo = NestGeometry { ratio: r, offset: (off, off), nx: 10 * r, ny: 10 * r };
        let mut nest =
            ShallowWater::quiescent(10 * r, 10 * r, 3000.0 / r as f64, 100.0, Boundary::External);
        initialize_from_parent(&parent, &mut nest, &geo);
        feedback_to_parent(&nest, &mut parent, &geo);
        // Interior parent cells change by < 1% of the perturbation.
        for j in (off + 1)..(off + 9) {
            for i in (off + 1)..(off + 9) {
                let a = before.get(i as isize, j as isize);
                let b = parent.h.get(i as isize, j as isize);
                prop_assert!((a - b).abs() < 0.15, "feedback changed ({i},{j}): {a} → {b}");
            }
        }
    }

    /// The boundary ring interpolated from a constant parent is constant.
    #[test]
    fn boundary_of_constant_parent_is_constant(nx in 6usize..30, ny in 6usize..30) {
        let parent = ShallowWater::quiescent(40, 40, 3000.0, 77.0, Boundary::ZeroGradient);
        let geo = NestGeometry { ratio: 3, offset: (3, 3), nx, ny };
        prop_assume!(3 + nx.div_ceil(3) <= 40 && 3 + ny.div_ceil(3) <= 40);
        let bc = interpolate_boundary(&parent, &geo);
        let mut nest = ShallowWater::quiescent(nx, ny, 1000.0, 77.0, Boundary::External);
        nestwx_miniwrf::nest::apply_boundary(&mut nest, &bc);
        for i in -1..=(nx as isize) {
            prop_assert!((nest.h.get(i, -1) - 77.0).abs() < 1e-9);
            prop_assert!((nest.h.get(i, ny as isize) - 77.0).abs() < 1e-9);
        }
    }
}

//! Numerical order verification by self-convergence.
//!
//! A smooth low-amplitude gravity-wave initial condition is evolved to a
//! fixed physical time on grids of 32², 64² and 128² cells covering the same
//! physical domain. The error against the finest grid (restricted to the
//! coarse points) should shrink ≈ 2× per refinement for the first-order
//! Lax–Friedrichs scheme and ≈ 4× for the second-order Lax–Wendroff scheme.

use nestwx_miniwrf::solver::{Boundary, Scheme, ShallowWater};

const DOMAIN_M: f64 = 64_000.0;
const DEPTH: f64 = 100.0;

/// Builds an `n × n` grid over the fixed physical domain with a smooth
/// standing-wave depth perturbation, runs to (near) `t_end`, returns state.
fn run(n: usize, scheme: Scheme, t_end: f64) -> ShallowWater {
    let dx = DOMAIN_M / n as f64;
    let mut sw = ShallowWater::quiescent(n, n, dx, DEPTH, Boundary::Periodic).with_scheme(scheme);
    // Smooth initial condition: product of sines (periodic, C∞).
    for j in 0..n {
        for i in 0..n {
            let x = (i as f64 + 0.5) / n as f64;
            let y = (j as f64 + 0.5) / n as f64;
            let bump = 0.2
                * (2.0 * std::f64::consts::PI * x).sin()
                * (2.0 * std::f64::consts::PI * y).sin();
            sw.h.set(i as isize, j as isize, DEPTH + bump);
        }
    }
    // Use a dt that divides t_end exactly and scales with dx, so every
    // resolution reaches precisely t_end (dt ∝ dx keeps CFL constant).
    let steps = (t_end / sw.dt).ceil() as u64;
    sw.dt = t_end / steps as f64;
    for _ in 0..steps {
        sw.step();
    }
    sw
}

/// RMS difference between a coarse solution and the fine reference sampled
/// at the coarse cell centres (block means of the fine field).
fn rms_error(coarse: &ShallowWater, fine: &ShallowWater) -> f64 {
    let ratio = fine.nx / coarse.nx;
    assert!(ratio >= 2 && coarse.nx * ratio == fine.nx);
    let mut sum = 0.0;
    for j in 0..coarse.ny {
        for i in 0..coarse.nx {
            let mut mean = 0.0;
            for fj in 0..ratio {
                for fi in 0..ratio {
                    mean += fine
                        .h
                        .get((i * ratio + fi) as isize, (j * ratio + fj) as isize);
                }
            }
            mean /= (ratio * ratio) as f64;
            let d = coarse.h.get(i as isize, j as isize) - mean;
            sum += d * d;
        }
    }
    (sum / (coarse.nx * coarse.ny) as f64).sqrt()
}

fn convergence_rate(scheme: Scheme) -> f64 {
    // Short horizon: a fraction of a wave period, well-resolved everywhere.
    let t_end = 120.0;
    let fine = run(256, scheme, t_end);
    let e32 = rms_error(&run(32, scheme, t_end), &fine);
    let e64 = rms_error(&run(64, scheme, t_end), &fine);
    let e128 = rms_error(&run(128, scheme, t_end), &fine);
    // Geometric mean of the two observed refinement ratios.
    ((e32 / e64) * (e64 / e128)).sqrt()
}

#[test]
fn lax_friedrichs_is_first_order() {
    let rate = convergence_rate(Scheme::LaxFriedrichs);
    // First order: error halves per refinement (rate ≈ 2).
    assert!(
        rate > 1.6 && rate < 2.9,
        "LF convergence ratio {rate:.2} not ≈ 2"
    );
}

#[test]
fn lax_wendroff_is_second_order() {
    let rate = convergence_rate(Scheme::LaxWendroff);
    // Second order: error quarters per refinement (rate ≈ 4).
    assert!(rate > 3.0, "LW convergence ratio {rate:.2} not ≈ 4");
}

#[test]
fn schemes_agree_in_the_refinement_limit() {
    // Both schemes converge to the same solution: their mutual RMS distance
    // at 128² is far below either one's coarse-grid error.
    let t_end = 120.0;
    let lf = run(128, Scheme::LaxFriedrichs, t_end);
    let lw = run(128, Scheme::LaxWendroff, t_end);
    let mut sum = 0.0;
    for j in 0..128 {
        for i in 0..128 {
            let d = lf.h.get(i, j) - lw.h.get(i, j);
            sum += d * d;
        }
    }
    let dist = (sum / (128.0 * 128.0)).sqrt();
    let fine = run(256, Scheme::LaxFriedrichs, t_end);
    let coarse_err = rms_error(&run(32, Scheme::LaxFriedrichs, t_end), &fine);
    assert!(
        dist < coarse_err,
        "schemes diverge: {dist:.2e} vs coarse error {coarse_err:.2e}"
    );
}

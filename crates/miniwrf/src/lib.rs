//! A real, multi-threaded nested shallow-water mini-app.
//!
//! Where [`nestwx-netsim`](../nestwx_netsim/index.html) *models* a Blue Gene
//! running WRF, this crate actually *computes*: a 2-D shallow-water solver
//! (Lax–Friedrichs) over a coarse parent domain with finer nested regions of
//! interest, exactly WRF's nesting structure — each nest is stepped `r`
//! times per parent step, with boundary conditions interpolated from the
//! parent and two-way feedback of the nest interior.
//!
//! The [`runtime`] module executes the coupled model on real threads under
//! both of the paper's strategies:
//!
//! * **Sequential** (WRF default): every nest solved one after another,
//!   each using all worker threads;
//! * **Concurrent** (the paper): nests solved simultaneously, each on its
//!   own allocated thread group.
//!
//! Because the strategies only reorder independent work, their numerical
//! results are **bitwise identical** — an integration test asserts this —
//! while their wall-clock differs exactly the way the paper describes once
//! per-nest thread counts exceed the solver's scaling saturation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field;
pub mod model;
pub mod nest;
pub mod output;
pub mod report;
pub mod runtime;
pub mod solver;
pub mod transport;

pub use field::Field2D;
pub use model::{NestState, NestedModel};
pub use output::{HistoryWriter, OutputStats};
pub use report::{solver_digest, NestReport, SimReport, REPORT_SCHEMA, REPORT_VERSION};
pub use runtime::{run_iterations, run_iterations_observed, PhaseTimings, ThreadStrategy};
pub use solver::{Scheme, ShallowWater};
pub use transport::{
    channel_transport, drive_nests, drive_parent, ChannelHost, ChannelLink, HaloHost, HaloLink,
    TransportError,
};

//! The coupled parent-with-siblings model.

use crate::nest::{
    apply_boundary, feedback_to_parent, initialize_from_parent, interpolate_boundary, BoundaryData,
    NestGeometry,
};
use crate::solver::{Boundary, ShallowWater};
use serde::{Deserialize, Serialize};

/// One sibling nest: geometry plus solver state, with optional second-level
/// children (the paper's §4.1.1 "sibling domains at the second level").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NestState {
    /// Placement and refinement (relative to this nest's parent).
    pub geo: NestGeometry,
    /// The nest's solver.
    pub solver: ShallowWater,
    /// Second-level nests inside this nest.
    pub children: Vec<NestState>,
}

/// A parent domain with sibling nests — the miniature analogue of the
/// paper's multi-region WRF configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NestedModel {
    /// The coarse parent solver.
    pub parent: ShallowWater,
    /// The sibling nests (all at nesting level 1).
    pub nests: Vec<NestState>,
    /// Parent iterations completed.
    pub iterations: u64,
}

impl NestedModel {
    /// Builds a parent of `nx × ny` cells at `dx` metres with quiescent
    /// depth `depth`, and spawns one nest per geometry, each initialised
    /// from the parent and time-stepped at `dt_parent / r`.
    pub fn new(nx: usize, ny: usize, dx: f64, depth: f64, nest_geos: &[NestGeometry]) -> Self {
        let parent = ShallowWater::quiescent(nx, ny, dx, depth, Boundary::ZeroGradient);
        let mut model = NestedModel {
            parent,
            nests: Vec::with_capacity(nest_geos.len()),
            iterations: 0,
        };
        for geo in nest_geos {
            assert!(
                geo.offset.0 + geo.nx.div_ceil(geo.ratio) <= nx
                    && geo.offset.1 + geo.ny.div_ceil(geo.ratio) <= ny,
                "nest does not fit inside the parent"
            );
            let mut solver = ShallowWater::quiescent(
                geo.nx,
                geo.ny,
                dx / geo.ratio as f64,
                depth,
                Boundary::External,
            );
            solver.dt = model.parent.dt / geo.ratio as f64;
            initialize_from_parent(&model.parent, &mut solver, geo);
            model.nests.push(NestState {
                geo: *geo,
                solver,
                children: Vec::new(),
            });
        }
        model
    }

    /// Adds a depression (negative Gaussian) at parent coordinates, also
    /// imprinting it on any nest whose footprint covers it.
    pub fn add_depression(&mut self, cx: f64, cy: f64, amp: f64, radius_cells: f64) {
        self.parent.add_gaussian(cx, cy, amp, radius_cells);
        for nest in &mut self.nests {
            initialize_from_parent(&self.parent, &mut nest.solver, &nest.geo);
        }
    }

    /// Pre-computes each nest's boundary data from the current parent state
    /// (after the parent step, before the nest solves — the
    /// "interpolated from the overlapping parent region" phase).
    pub fn boundaries(&self) -> Vec<BoundaryData> {
        self.nests
            .iter()
            .map(|n| interpolate_boundary(&self.parent, &n.geo))
            .collect()
    }

    /// Spawns a second-level nest inside first-level nest `parent_idx`.
    /// `geo` is relative to that nest's grid; the child steps at
    /// `dt_parent_nest / r` and is initialised from the enclosing nest.
    pub fn add_child_nest(&mut self, parent_idx: usize, geo: NestGeometry) {
        let host = &mut self.nests[parent_idx];
        assert!(
            geo.offset.0 + geo.nx.div_ceil(geo.ratio) <= host.geo.nx
                && geo.offset.1 + geo.ny.div_ceil(geo.ratio) <= host.geo.ny,
            "child nest does not fit inside its parent nest"
        );
        let mut solver = ShallowWater::quiescent(
            geo.nx,
            geo.ny,
            host.solver.dx / geo.ratio as f64,
            host.solver.h.get(0, 0),
            Boundary::External,
        );
        solver.dt = host.solver.dt / geo.ratio as f64;
        initialize_from_parent(&host.solver, &mut solver, &geo);
        host.children.push(NestState {
            geo,
            solver,
            children: Vec::new(),
        });
    }

    /// Solves one nest's `r` sub-steps given its boundary data, recursing
    /// into its second-level children after each sub-step (pure function of
    /// the nest — safe to run concurrently across siblings).
    pub fn solve_nest(nest: &mut NestState, bc: &BoundaryData) {
        for _ in 0..nest.geo.ratio {
            apply_boundary(&mut nest.solver, bc);
            nest.solver.step();
            let NestState {
                solver, children, ..
            } = nest;
            for child in children.iter_mut() {
                let cbc = interpolate_boundary(solver, &child.geo);
                for _ in 0..child.geo.ratio {
                    apply_boundary(&mut child.solver, &cbc);
                    child.solver.step();
                }
                feedback_to_parent(&child.solver, solver, &child.geo);
            }
        }
    }

    /// Applies all feedbacks in sibling order.
    pub fn apply_feedbacks(&mut self) {
        let NestedModel { parent, nests, .. } = self;
        for n in nests.iter() {
            feedback_to_parent(&n.solver, parent, &n.geo);
        }
        self.iterations += 1;
    }

    /// One fully-coupled single-threaded iteration (reference
    /// implementation; the threaded runtime must reproduce it bitwise).
    pub fn step_coupled(&mut self) {
        self.parent.step();
        let bcs = self.boundaries();
        for (nest, bc) in self.nests.iter_mut().zip(&bcs) {
            NestedModel::solve_nest(nest, bc);
        }
        self.apply_feedbacks();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_sibling_model() -> NestedModel {
        let geos = [
            NestGeometry {
                ratio: 3,
                offset: (4, 4),
                nx: 24,
                ny: 24,
            },
            NestGeometry {
                ratio: 3,
                offset: (22, 22),
                nx: 24,
                ny: 24,
            },
        ];
        let mut m = NestedModel::new(40, 40, 3000.0, 100.0, &geos);
        m.add_depression(8.0, 8.0, -4.0, 2.5);
        m.add_depression(26.0, 26.0, -6.0, 3.0);
        m
    }

    #[test]
    fn nest_dt_is_parent_over_ratio() {
        let m = two_sibling_model();
        for n in &m.nests {
            assert!((n.solver.dt - m.parent.dt / 3.0).abs() < 1e-15);
        }
    }

    #[test]
    fn coupled_steps_stay_finite() {
        let mut m = two_sibling_model();
        for _ in 0..8 {
            m.step_coupled();
        }
        assert!(m.parent.h.max_abs().is_finite());
        for n in &m.nests {
            assert!(n.solver.h.max_abs().is_finite());
            assert!(n.solver.cfl() < 1.0);
        }
        assert_eq!(m.iterations, 8);
    }

    #[test]
    fn nests_track_parent_depression() {
        // After coupling steps, the nest interior must still resemble the
        // overlapping parent region (feedback keeps them consistent).
        let mut m = two_sibling_model();
        for _ in 0..5 {
            m.step_coupled();
        }
        let nest = &m.nests[0];
        let (pi, pj) = (nest.geo.offset.0 + 4, nest.geo.offset.1 + 4);
        let parent_val = m.parent.h.get(pi as isize, pj as isize);
        // Mean of that parent cell's fine cells (what feedback wrote).
        let mut mean = 0.0;
        for fj in 0..3 {
            for fi in 0..3 {
                mean += nest
                    .solver
                    .h
                    .get((4 * 3 + fi) as isize, (4 * 3 + fj) as isize);
            }
        }
        mean /= 9.0;
        assert!((parent_val - mean).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_oversized_nest() {
        let geos = [NestGeometry {
            ratio: 3,
            offset: (35, 35),
            nx: 30,
            ny: 30,
        }];
        NestedModel::new(40, 40, 3000.0, 100.0, &geos);
    }
}

//! Parent ↔ nest coupling: boundary interpolation and feedback.
//!
//! Exactly WRF's two-way nesting data flow (§1 of the paper): "At the
//! beginning of each nested simulation, data for each finer resolution
//! smaller region is interpolated from the overlapping parent region. At the
//! end of r integration steps, data from the finer region is communicated to
//! the parent region."

use crate::field::Field2D;
use crate::solver::ShallowWater;
use serde::{Deserialize, Serialize};

/// Geometric placement of a nest inside its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NestGeometry {
    /// Refinement ratio `r`.
    pub ratio: usize,
    /// Parent cell (i, j) of the nest's lower-left interior cell.
    pub offset: (usize, usize),
    /// Nest interior width (fine cells).
    pub nx: usize,
    /// Nest interior height (fine cells).
    pub ny: usize,
}

impl NestGeometry {
    /// Parent-grid coordinates (continuous) of fine cell `(i, j)`.
    /// Fine cell centres subdivide each parent cell into `r × r`.
    fn parent_coords(&self, i: isize, j: isize) -> (f64, f64) {
        let r = self.ratio as f64;
        (
            self.offset.0 as f64 + (i as f64 + 0.5) / r - 0.5,
            self.offset.1 as f64 + (j as f64 + 0.5) / r - 0.5,
        )
    }

    /// Footprint of the nest in whole parent cells `(i0, j0, w, h)`.
    pub fn parent_footprint(&self) -> (usize, usize, usize, usize) {
        (
            self.offset.0,
            self.offset.1,
            self.nx.div_ceil(self.ratio),
            self.ny.div_ceil(self.ratio),
        )
    }
}

/// Bilinearly samples `f` at continuous interior coordinates, clamped to the
/// valid range (the parent halo is one cell, enough for clamped sampling).
fn bilinear(f: &Field2D, x: f64, y: f64) -> f64 {
    let xc = x.clamp(0.0, (f.nx - 1) as f64);
    let yc = y.clamp(0.0, (f.ny - 1) as f64);
    let (i0, j0) = (xc.floor() as isize, yc.floor() as isize);
    let (fx, fy) = (xc - i0 as f64, yc - j0 as f64);
    let i1 = (i0 + 1).min(f.nx as isize - 1);
    let j1 = (j0 + 1).min(f.ny as isize - 1);
    let v00 = f.get(i0, j0);
    let v10 = f.get(i1, j0);
    let v01 = f.get(i0, j1);
    let v11 = f.get(i1, j1);
    v00 * (1.0 - fx) * (1.0 - fy) + v10 * fx * (1.0 - fy) + v01 * (1.0 - fx) * fy + v11 * fx * fy
}

/// Precomputed Dirichlet boundary data for one nest step: the halo-ring
/// values of each prognostic field, interpolated from the parent.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundaryData {
    /// Halo values keyed `(i, j)` over the halo ring.
    ring: Vec<(isize, isize, f64, f64, f64)>,
}

impl BoundaryData {
    /// The halo-ring cells as `(i, j, h, hu, hv)`, in the deterministic
    /// order [`interpolate_boundary`] produced them. Transports serialize
    /// this slice verbatim (f64 bit patterns included) so a remote
    /// [`apply_boundary`] writes exactly the bytes a local one would.
    pub fn cells(&self) -> &[(isize, isize, f64, f64, f64)] {
        &self.ring
    }

    /// Rebuilds boundary data from transported cells (inverse of
    /// [`BoundaryData::cells`]).
    pub fn from_cells(ring: Vec<(isize, isize, f64, f64, f64)>) -> BoundaryData {
        BoundaryData { ring }
    }
}

/// Two-way feedback data for one nest iteration: the parent-cell writes
/// (`r × r` fine-cell means) that [`feedback_to_parent`] would perform,
/// captured so they can cross a process boundary bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackData {
    /// Parent-cell writes as `(i, j, h, hu, hv)`, in footprint row-major
    /// order.
    cells: Vec<(isize, isize, f64, f64, f64)>,
}

impl FeedbackData {
    /// The parent-cell writes as `(i, j, h, hu, hv)`.
    pub fn cells(&self) -> &[(isize, isize, f64, f64, f64)] {
        &self.cells
    }

    /// Rebuilds feedback data from transported cells.
    pub fn from_cells(cells: Vec<(isize, isize, f64, f64, f64)>) -> FeedbackData {
        FeedbackData { cells }
    }
}

/// Interpolates the nest's halo-ring boundary conditions from the parent
/// state (call after the parent's step, before the nest's sub-steps).
pub fn interpolate_boundary(parent: &ShallowWater, geo: &NestGeometry) -> BoundaryData {
    let (nx, ny) = (geo.nx as isize, geo.ny as isize);
    let mut ring = Vec::with_capacity(2 * (nx + ny) as usize + 4);
    let push = |i: isize, j: isize, p: &ShallowWater, ring: &mut Vec<_>| {
        let (x, y) = geo.parent_coords(i, j);
        ring.push((
            i,
            j,
            bilinear(&p.h, x, y),
            bilinear(&p.hu, x, y),
            bilinear(&p.hv, x, y),
        ));
    };
    for i in -1..=nx {
        push(i, -1, parent, &mut ring);
        push(i, ny, parent, &mut ring);
    }
    for j in 0..ny {
        push(-1, j, parent, &mut ring);
        push(nx, j, parent, &mut ring);
    }
    BoundaryData { ring }
}

/// Writes precomputed boundary data into the nest's halo cells.
pub fn apply_boundary(nest: &mut ShallowWater, bc: &BoundaryData) {
    for &(i, j, h, hu, hv) in &bc.ring {
        nest.h.set(i, j, h);
        nest.hu.set(i, j, hu);
        nest.hv.set(i, j, hv);
    }
}

/// Initialises the whole nest interior from the parent by bilinear
/// interpolation (nest spawn).
pub fn initialize_from_parent(parent: &ShallowWater, nest: &mut ShallowWater, geo: &NestGeometry) {
    debug_assert_eq!(nest.nx, geo.nx);
    debug_assert_eq!(nest.ny, geo.ny);
    for j in 0..geo.ny as isize {
        for i in 0..geo.nx as isize {
            let (x, y) = geo.parent_coords(i, j);
            nest.h.set(i, j, bilinear(&parent.h, x, y));
            nest.hu.set(i, j, bilinear(&parent.hu, x, y));
            nest.hv.set(i, j, bilinear(&parent.hv, x, y));
        }
    }
}

/// Computes the feedback writes for one nest: each parent cell covered by
/// the nest receives the mean of its `r × r` fine cells. Pure function of
/// the nest state, so a remote worker can compute it and ship the cells;
/// [`apply_feedback`] on the parent side then reproduces exactly what
/// [`feedback_to_parent`] would have written in-process.
pub fn collect_feedback(nest: &ShallowWater, geo: &NestGeometry) -> FeedbackData {
    let r = geo.ratio;
    let (pi0, pj0, pw, ph) = geo.parent_footprint();
    let mut cells = Vec::with_capacity(pw * ph);
    for pj in 0..ph {
        for pi in 0..pw {
            let mut sums = [0.0f64; 3];
            let mut n = 0u32;
            for fj in 0..r {
                for fi in 0..r {
                    let i = pi * r + fi;
                    let j = pj * r + fj;
                    if i < geo.nx && j < geo.ny {
                        sums[0] += nest.h.get(i as isize, j as isize);
                        sums[1] += nest.hu.get(i as isize, j as isize);
                        sums[2] += nest.hv.get(i as isize, j as isize);
                        n += 1;
                    }
                }
            }
            if n > 0 {
                let (gi, gj) = ((pi0 + pi) as isize, (pj0 + pj) as isize);
                cells.push((
                    gi,
                    gj,
                    sums[0] / n as f64,
                    sums[1] / n as f64,
                    sums[2] / n as f64,
                ));
            }
        }
    }
    FeedbackData { cells }
}

/// Writes precomputed feedback cells into the parent.
pub fn apply_feedback(parent: &mut ShallowWater, fb: &FeedbackData) {
    for &(i, j, h, hu, hv) in &fb.cells {
        parent.h.set(i, j, h);
        parent.hu.set(i, j, hu);
        parent.hv.set(i, j, hv);
    }
}

/// Two-way feedback: each parent cell covered by the nest receives the mean
/// of its `r × r` fine cells ([`collect_feedback`] + [`apply_feedback`]).
pub fn feedback_to_parent(nest: &ShallowWater, parent: &mut ShallowWater, geo: &NestGeometry) {
    apply_feedback(parent, &collect_feedback(nest, geo));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Boundary;

    fn parent_with_gradient() -> ShallowWater {
        let mut p = ShallowWater::quiescent(20, 20, 3000.0, 100.0, Boundary::ZeroGradient);
        for j in 0..20 {
            for i in 0..20 {
                p.h.set(i, j, 100.0 + i as f64 + 0.5 * j as f64);
            }
        }
        p
    }

    fn geo() -> NestGeometry {
        NestGeometry {
            ratio: 3,
            offset: (5, 5),
            nx: 18,
            ny: 18,
        }
    }

    #[test]
    fn bilinear_exact_on_linear_fields() {
        // Bilinear interpolation reproduces linear functions exactly, so a
        // nest initialised from a linear parent is itself linear.
        let p = parent_with_gradient();
        let g = geo();
        let mut nest = ShallowWater::quiescent(18, 18, 1000.0, 100.0, Boundary::External);
        initialize_from_parent(&p, &mut nest, &g);
        // Fine cell (0,0) sits at parent coords (5 + 1/6 - 1/2, …).
        let (x, y) = (5.0 + 0.5 / 3.0 - 0.5, 5.0 + 0.5 / 3.0 - 0.5);
        let expect = 100.0 + x + 0.5 * y;
        assert!((nest.h.get(0, 0) - expect).abs() < 1e-10);
        // And a mid-nest cell.
        let (x, y) = (5.0 + 9.5 / 3.0 - 0.5, 5.0 + 4.5 / 3.0 - 0.5);
        let expect = 100.0 + x + 0.5 * y;
        assert!((nest.h.get(9, 4) - expect).abs() < 1e-10);
    }

    #[test]
    fn boundary_ring_covers_halo() {
        let p = parent_with_gradient();
        let g = geo();
        let bc = interpolate_boundary(&p, &g);
        // Ring size: 2(nx+2) + 2·ny cells.
        assert_eq!(bc.ring.len(), 2 * (18 + 2) + 2 * 18);
        let mut nest = ShallowWater::quiescent(18, 18, 1000.0, 100.0, Boundary::External);
        apply_boundary(&mut nest, &bc);
        // A halo cell now carries interpolated (not initial) data.
        assert!((nest.h.get(-1, 0) - 100.0).abs() > 0.1);
    }

    #[test]
    fn feedback_restores_constant_field() {
        // Nest initialised from a *constant* parent feeds back the same
        // constant: round-trip identity.
        let mut p = ShallowWater::quiescent(20, 20, 3000.0, 100.0, Boundary::ZeroGradient);
        let g = geo();
        let mut nest = ShallowWater::quiescent(18, 18, 1000.0, 100.0, Boundary::External);
        initialize_from_parent(&p, &mut nest, &g);
        feedback_to_parent(&nest, &mut p, &g);
        for j in 0..20 {
            for i in 0..20 {
                assert!((p.h.get(i, j) - 100.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn feedback_averages_fine_cells() {
        let mut p = ShallowWater::quiescent(20, 20, 3000.0, 100.0, Boundary::ZeroGradient);
        let g = NestGeometry {
            ratio: 2,
            offset: (3, 3),
            nx: 4,
            ny: 4,
        };
        let mut nest = ShallowWater::quiescent(4, 4, 1500.0, 1.0, Boundary::External);
        // Fine cells of parent cell (3,3): values 1,2,3,4 → mean 2.5.
        nest.h.set(0, 0, 1.0);
        nest.h.set(1, 0, 2.0);
        nest.h.set(0, 1, 3.0);
        nest.h.set(1, 1, 4.0);
        feedback_to_parent(&nest, &mut p, &g);
        assert!((p.h.get(3, 3) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn nested_step_remains_stable() {
        // Full coupling cycle: parent step, interp boundary, r nest steps,
        // feedback — values stay finite and near the rest depth.
        let mut p = ShallowWater::quiescent(30, 30, 3000.0, 100.0, Boundary::ZeroGradient);
        p.add_gaussian(15.0, 15.0, -5.0, 3.0);
        let g = NestGeometry {
            ratio: 3,
            offset: (10, 10),
            nx: 30,
            ny: 30,
        };
        let mut nest = ShallowWater::quiescent(30, 30, 1000.0, 100.0, Boundary::External);
        initialize_from_parent(&p, &mut nest, &g);
        for _ in 0..10 {
            p.step();
            let bc = interpolate_boundary(&p, &g);
            for _ in 0..3 {
                apply_boundary(&mut nest, &bc);
                nest.step();
            }
            feedback_to_parent(&nest, &mut p, &g);
        }
        assert!(p.h.max_abs().is_finite());
        assert!(nest.h.max_abs() < 120.0 && nest.h.max_abs() > 80.0);
    }
}

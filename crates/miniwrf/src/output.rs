//! History output for the mini-app.
//!
//! Mirrors the paper's I/O concern in miniature: the forecast fields of the
//! parent and every nest are written periodically for visualisation. The
//! writer records how long each frame took, so examples can report the I/O
//! share of wall-clock exactly like Fig. 14.
//!
//! Frames are self-describing CSV (header + rows), one file per domain per
//! frame — the split-files scheme of BG/L — under a caller-chosen directory.

use crate::model::{NestState, NestedModel};
use crate::solver::ShallowWater;
use nestwx_obs::clock;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Accumulated output statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OutputStats {
    /// Frames written (per domain).
    pub frames: u32,
    /// Bytes written.
    pub bytes: u64,
    /// Wall-clock spent writing.
    pub elapsed: Duration,
}

/// Writes periodic history frames for a [`NestedModel`].
#[derive(Debug)]
pub struct HistoryWriter {
    dir: PathBuf,
    /// Write every `interval` parent iterations.
    pub interval: u64,
    /// Statistics so far.
    pub stats: OutputStats,
}

impl HistoryWriter {
    /// Creates the output directory (and parents) if needed.
    pub fn new(dir: impl AsRef<Path>, interval: u64) -> std::io::Result<Self> {
        assert!(interval >= 1);
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(HistoryWriter {
            dir: dir.as_ref().to_path_buf(),
            interval,
            stats: OutputStats::default(),
        })
    }

    /// Writes a frame if the model's iteration count hits the interval.
    /// Returns `true` when a frame was written.
    pub fn maybe_write(&mut self, model: &NestedModel) -> std::io::Result<bool> {
        if model.iterations == 0 || !model.iterations.is_multiple_of(self.interval) {
            return Ok(false);
        }
        let t0 = clock::now();
        let it = model.iterations;
        self.write_domain(&model.parent, &format!("parent_{it:05}"))?;
        for (i, nest) in model.nests.iter().enumerate() {
            self.write_nest(nest, &format!("nest{i}_{it:05}"))?;
        }
        self.stats.frames += 1;
        self.stats.elapsed += t0.elapsed();
        Ok(true)
    }

    fn write_nest(&mut self, nest: &NestState, name: &str) -> std::io::Result<()> {
        self.write_domain(&nest.solver, name)?;
        for (c, child) in nest.children.iter().enumerate() {
            self.write_nest(child, &format!("{name}_c{c}"))?;
        }
        Ok(())
    }

    fn write_domain(&mut self, sw: &ShallowWater, name: &str) -> std::io::Result<()> {
        let path = self.dir.join(format!("{name}.csv"));
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        writeln!(
            w,
            "# nx={} ny={} dx={} dt={} steps={}",
            sw.nx, sw.ny, sw.dx, sw.dt, sw.steps
        )?;
        writeln!(w, "i,j,h,hu,hv")?;
        let mut bytes = 0u64;
        for j in 0..sw.ny {
            for i in 0..sw.nx {
                let (ii, jj) = (i as isize, j as isize);
                let line = format!(
                    "{i},{j},{:.6},{:.6},{:.6}",
                    sw.h.get(ii, jj),
                    sw.hu.get(ii, jj),
                    sw.hv.get(ii, jj)
                );
                bytes += line.len() as u64 + 1;
                writeln!(w, "{line}")?;
            }
        }
        w.flush()?;
        self.stats.bytes += bytes;
        Ok(())
    }
}

/// Reads a frame back (for round-trip tests and plotting scripts):
/// returns `(nx, ny, h values row-major)`.
pub fn read_frame_h(path: impl AsRef<Path>) -> std::io::Result<(usize, usize, Vec<f64>)> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header = lines.next().unwrap_or_default();
    let parse_kv = |key: &str| -> usize {
        header
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let (nx, ny) = (parse_kv("nx"), parse_kv("ny"));
    let mut h = vec![0.0f64; nx * ny];
    for line in lines.skip(1) {
        let mut cols = line.split(',');
        let (Some(i), Some(j), Some(v)) = (cols.next(), cols.next(), cols.next()) else {
            continue;
        };
        let (i, j): (usize, usize) = (i.parse().unwrap_or(0), j.parse().unwrap_or(0));
        if i < nx && j < ny {
            h[j * nx + i] = v.parse().unwrap_or(0.0);
        }
    }
    Ok((nx, ny, h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::NestGeometry;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("nestwx_miniwrf_out_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn small_model() -> NestedModel {
        let geos = [NestGeometry {
            ratio: 3,
            offset: (3, 3),
            nx: 18,
            ny: 15,
        }];
        let mut m = NestedModel::new(24, 20, 3000.0, 100.0, &geos);
        m.add_depression(8.0, 8.0, -4.0, 2.0);
        m
    }

    #[test]
    fn writes_frames_at_interval() {
        let dir = tmpdir("interval");
        let mut w = HistoryWriter::new(&dir, 2).unwrap();
        let mut m = small_model();
        let mut frames = 0;
        for _ in 0..4 {
            m.step_coupled();
            if w.maybe_write(&m).unwrap() {
                frames += 1;
            }
        }
        assert_eq!(frames, 2); // iterations 2 and 4
        assert_eq!(w.stats.frames, 2);
        assert!(w.stats.bytes > 0);
        assert!(dir.join("parent_00002.csv").exists());
        assert!(dir.join("nest0_00004.csv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn frame_roundtrip_preserves_field() {
        let dir = tmpdir("roundtrip");
        let mut w = HistoryWriter::new(&dir, 1).unwrap();
        let mut m = small_model();
        m.step_coupled();
        w.maybe_write(&m).unwrap();
        let (nx, ny, h) = read_frame_h(dir.join("parent_00001.csv")).unwrap();
        assert_eq!((nx, ny), (24, 20));
        for j in 0..ny {
            for i in 0..nx {
                let expect = m.parent.h.get(i as isize, j as isize);
                assert!((h[j * nx + i] - expect).abs() < 1e-5);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn children_get_their_own_files() {
        let dir = tmpdir("children");
        let mut w = HistoryWriter::new(&dir, 1).unwrap();
        let mut m = small_model();
        m.add_child_nest(
            0,
            NestGeometry {
                ratio: 3,
                offset: (1, 1),
                nx: 9,
                ny: 9,
            },
        );
        m.step_coupled();
        w.maybe_write(&m).unwrap();
        assert!(dir.join("nest0_00001_c0.csv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

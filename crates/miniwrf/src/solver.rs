//! Lax–Friedrichs shallow-water solver.
//!
//! Solves the 2-D shallow-water equations in conservative form
//! `(h, hu, hv)` — the canonical stand-in for an atmospheric dynamical core:
//! hyperbolic, stencil-based, halo-exchanging, CFL-limited. Lax–Friedrichs
//! is diffusive but unconditionally stable under its CFL bound and exactly
//! conservative with periodic boundaries, giving us sharp invariants to
//! test.

use crate::field::Field2D;
use serde::{Deserialize, Serialize};

/// Gravitational acceleration, m/s².
pub const GRAVITY: f64 = 9.81;

/// Numerical scheme for the shallow-water step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Scheme {
    /// First-order Lax–Friedrichs: very robust, diffusive. The default.
    #[default]
    LaxFriedrichs,
    /// Second-order Richtmyer two-step Lax–Wendroff: sharper features,
    /// mildly dispersive.
    LaxWendroff,
}

/// How the domain edges are closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Boundary {
    /// Wrap-around (conservation-exact; used for invariant tests).
    Periodic,
    /// Zero-gradient outflow (used for the parent domain).
    ZeroGradient,
    /// Halo cells are set externally before each step — the nest case,
    /// where the parent supplies Dirichlet boundary data.
    External,
}

/// Shallow-water state on an `nx × ny` grid with spacing `dx` metres.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShallowWater {
    /// Interior width.
    pub nx: usize,
    /// Interior height.
    pub ny: usize,
    /// Grid spacing, metres (isotropic).
    pub dx: f64,
    /// Time step, seconds.
    pub dt: f64,
    /// Boundary treatment.
    pub boundary: Boundary,
    /// Numerical scheme.
    #[serde(default)]
    pub scheme: Scheme,
    /// Coriolis parameter `f` (s⁻¹); 0 disables rotation. Applied as a
    /// split source term after the hyperbolic update.
    #[serde(default)]
    pub coriolis: f64,
    /// Water depth.
    pub h: Field2D,
    /// x-momentum `h·u`.
    pub hu: Field2D,
    /// y-momentum `h·v`.
    pub hv: Field2D,
    next_h: Field2D,
    next_hu: Field2D,
    next_hv: Field2D,
    /// Steps taken.
    pub steps: u64,
}

impl ShallowWater {
    /// Quiescent water of depth `depth` metres, with `dt` set from the CFL
    /// bound for gravity waves on that depth (CFL number 0.4).
    pub fn quiescent(nx: usize, ny: usize, dx: f64, depth: f64, boundary: Boundary) -> Self {
        assert!(depth > 0.0 && dx > 0.0);
        let c = (GRAVITY * depth).sqrt();
        let dt = 0.4 * dx / c;
        ShallowWater {
            nx,
            ny,
            dx,
            dt,
            boundary,
            scheme: Scheme::default(),
            coriolis: 0.0,
            h: Field2D::filled(nx, ny, depth),
            hu: Field2D::zeros(nx, ny),
            hv: Field2D::zeros(nx, ny),
            next_h: Field2D::zeros(nx, ny),
            next_hu: Field2D::zeros(nx, ny),
            next_hv: Field2D::zeros(nx, ny),
            steps: 0,
        }
    }

    /// Switches the numerical scheme (builder style).
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Enables rotation with Coriolis parameter `f` (s⁻¹, ≈ 1e-4 at
    /// mid-latitudes). Builder style.
    pub fn with_coriolis(mut self, f: f64) -> Self {
        self.coriolis = f;
        self
    }

    /// Imposes the geostrophically balanced velocity field for the current
    /// depth field: `f·u = −g ∂h/∂y`, `f·v = g ∂h/∂x`. With rotation on,
    /// such a state is (discretely, approximately) steady.
    pub fn balance_geostrophic(&mut self) {
        assert!(self.coriolis != 0.0, "geostrophic balance needs rotation");
        self.fill_halos();
        for j in 0..self.ny as isize {
            for i in 0..self.nx as isize {
                let h = self.h.get(i, j);
                let dhdx = (self.h.get(i + 1, j) - self.h.get(i - 1, j)) / (2.0 * self.dx);
                let dhdy = (self.h.get(i, j + 1) - self.h.get(i, j - 1)) / (2.0 * self.dx);
                let u = -GRAVITY / self.coriolis * dhdy;
                let v = GRAVITY / self.coriolis * dhdx;
                self.hu.set(i, j, h * u);
                self.hv.set(i, j, h * v);
            }
        }
    }

    /// Adds a Gaussian depth perturbation — a "depression" like the Pacific
    /// systems of Fig. 1 — centred at `(cx, cy)` (grid coordinates) with
    /// amplitude `amp` metres and e-folding radius `radius` cells.
    pub fn add_gaussian(&mut self, cx: f64, cy: f64, amp: f64, radius: f64) {
        for j in 0..self.ny {
            for i in 0..self.nx {
                let d2 = ((i as f64 - cx).powi(2) + (j as f64 - cy).powi(2)) / (radius * radius);
                let v = self.h.get(i as isize, j as isize) + amp * (-d2).exp();
                self.h.set(i as isize, j as isize, v);
            }
        }
    }

    /// Fills halos according to the boundary kind (no-op for `External`).
    pub fn fill_halos(&mut self) {
        match self.boundary {
            Boundary::ZeroGradient => {
                self.h.fill_halo_zero_gradient();
                self.hu.fill_halo_zero_gradient();
                self.hv.fill_halo_zero_gradient();
            }
            Boundary::Periodic => {
                for f in [&mut self.h, &mut self.hu, &mut self.hv] {
                    let (nx, ny) = (f.nx as isize, f.ny as isize);
                    for i in 0..nx {
                        let s = f.get(i, ny - 1);
                        f.set(i, -1, s);
                        let n = f.get(i, 0);
                        f.set(i, ny, n);
                    }
                    for j in -1..=ny {
                        let jc = (j + ny) % ny;
                        let e = f.get(nx - 1, jc);
                        f.set(-1, j, e);
                        let w = f.get(0, jc);
                        f.set(nx, j, w);
                    }
                }
            }
            Boundary::External => {}
        }
    }

    /// Computes one Lax–Friedrichs update for interior rows `j0..j1`,
    /// writing into the scratch buffers. Multiple calls with disjoint row
    /// ranges together update the whole field; [`ShallowWater::commit_step`]
    /// then swaps buffers. (The thread runtime splits the scratch rows;
    /// single-threaded callers use [`ShallowWater::step`].)
    pub fn compute_rows(&self, j0: usize, j1: usize, out: &mut RowBand) {
        match self.scheme {
            Scheme::LaxFriedrichs => self.compute_rows_lf(j0, j1, out),
            Scheme::LaxWendroff => self.compute_rows_lw(j0, j1, out),
        }
    }

    fn compute_rows_lf(&self, j0: usize, j1: usize, out: &mut RowBand) {
        debug_assert!(j1 <= self.ny && j0 < j1);
        debug_assert_eq!(out.width, self.nx);
        let lam = self.dt / (2.0 * self.dx);
        for j in j0..j1 {
            let jj = j as isize;
            for i in 0..self.nx {
                let ii = i as isize;
                // Neighbour states.
                let (hw, he) = (self.h.get(ii - 1, jj), self.h.get(ii + 1, jj));
                let (hn, hs) = (self.h.get(ii, jj - 1), self.h.get(ii, jj + 1));
                let (huw, hue) = (self.hu.get(ii - 1, jj), self.hu.get(ii + 1, jj));
                let (hun, hus) = (self.hu.get(ii, jj - 1), self.hu.get(ii, jj + 1));
                let (hvw, hve) = (self.hv.get(ii - 1, jj), self.hv.get(ii + 1, jj));
                let (hvn, hvs) = (self.hv.get(ii, jj - 1), self.hv.get(ii, jj + 1));

                // Fluxes: F = (hu, hu²/h + gh²/2, hu·hv/h) in x,
                //         G = (hv, hu·hv/h, hv²/h + gh²/2) in y.
                let fx = |_h: f64, hu: f64| hu;
                let fxu = |h: f64, hu: f64| hu * hu / h + 0.5 * GRAVITY * h * h;
                let fxv = |h: f64, hu: f64, hv: f64| hu * hv / h;
                let gy = |_h: f64, hv: f64| hv;
                let gyu = |h: f64, hu: f64, hv: f64| hu * hv / h;
                let gyv = |h: f64, hv: f64| hv * hv / h + 0.5 * GRAVITY * h * h;

                let h_new = 0.25 * (hw + he + hn + hs)
                    - lam * (fx(he, hue) - fx(hw, huw))
                    - lam * (gy(hs, hvs) - gy(hn, hvn));
                let hu_new = 0.25 * (huw + hue + hun + hus)
                    - lam * (fxu(he, hue) - fxu(hw, huw))
                    - lam * (gyu(hs, hus, hvs) - gyu(hn, hun, hvn));
                let hv_new = 0.25 * (hvw + hve + hvn + hvs)
                    - lam * (fxv(he, hue, hve) - fxv(hw, huw, hvw))
                    - lam * (gyv(hs, hvs) - gyv(hn, hvn));

                let k = (j - j0) * self.nx + i;
                out.h[k] = h_new;
                out.hu[k] = hu_new;
                out.hv[k] = hv_new;
            }
        }
    }

    /// Richtmyer two-step Lax–Wendroff: half-step predictor states at the
    /// four cell edges, then a conservative corrector.
    fn compute_rows_lw(&self, j0: usize, j1: usize, out: &mut RowBand) {
        debug_assert!(j1 <= self.ny && j0 < j1);
        debug_assert_eq!(out.width, self.nx);
        let lam = self.dt / self.dx;
        // Fluxes of the state vector (h, hu, hv).
        #[inline(always)]
        fn fx(u: [f64; 3]) -> [f64; 3] {
            let [h, hu, hv] = u;
            [hu, hu * hu / h + 0.5 * GRAVITY * h * h, hu * hv / h]
        }
        #[inline(always)]
        fn gy(u: [f64; 3]) -> [f64; 3] {
            let [h, hu, hv] = u;
            [hv, hu * hv / h, hv * hv / h + 0.5 * GRAVITY * h * h]
        }
        let at = |i: isize, j: isize| -> [f64; 3] {
            [self.h.get(i, j), self.hu.get(i, j), self.hv.get(i, j)]
        };
        // Half-step edge state between u_l and u_r along x (or y with gy).
        let half_x = |l: [f64; 3], r: [f64; 3]| -> [f64; 3] {
            let (fl, fr) = (fx(l), fx(r));
            std::array::from_fn(|k| 0.5 * (l[k] + r[k]) - 0.5 * lam * (fr[k] - fl[k]))
        };
        let half_y = |l: [f64; 3], r: [f64; 3]| -> [f64; 3] {
            let (gl, gr) = (gy(l), gy(r));
            std::array::from_fn(|k| 0.5 * (l[k] + r[k]) - 0.5 * lam * (gr[k] - gl[k]))
        };
        for j in j0..j1 {
            let jj = j as isize;
            for i in 0..self.nx {
                let ii = i as isize;
                let c = at(ii, jj);
                let east = half_x(c, at(ii + 1, jj));
                let west = half_x(at(ii - 1, jj), c);
                let south = half_y(c, at(ii, jj + 1));
                let north = half_y(at(ii, jj - 1), c);
                let (fe, fw) = (fx(east), fx(west));
                let (gs, gn) = (gy(south), gy(north));
                let k = (j - j0) * self.nx + i;
                out.h[k] = c[0] - lam * (fe[0] - fw[0]) - lam * (gs[0] - gn[0]);
                out.hu[k] = c[1] - lam * (fe[1] - fw[1]) - lam * (gs[1] - gn[1]);
                out.hv[k] = c[2] - lam * (fe[2] - fw[2]) - lam * (gs[2] - gn[2]);
            }
        }
    }

    /// Copies computed bands into the scratch fields and swaps buffers.
    /// `bands` are `(j0, j1, data)` triples covering `0..ny` exactly.
    pub fn commit_step(&mut self, bands: Vec<(usize, usize, RowBand)>) {
        for (j0, j1, band) in bands {
            for j in j0..j1 {
                for i in 0..self.nx {
                    let k = (j - j0) * self.nx + i;
                    self.next_h.set(i as isize, j as isize, band.h[k]);
                    self.next_hu.set(i as isize, j as isize, band.hu[k]);
                    self.next_hv.set(i as isize, j as isize, band.hv[k]);
                }
            }
        }
        std::mem::swap(&mut self.h, &mut self.next_h);
        std::mem::swap(&mut self.hu, &mut self.next_hu);
        std::mem::swap(&mut self.hv, &mut self.next_hv);
        // Split-step Coriolis rotation: (hu, hv) rotates by f·dt each step;
        // an exact rotation (rather than forward Euler) preserves kinetic
        // energy and keeps the scheme stable for any f·dt.
        if self.coriolis != 0.0 {
            let (s, c) = (self.coriolis * self.dt).sin_cos();
            for j in 0..self.ny as isize {
                for i in 0..self.nx as isize {
                    let hu = self.hu.get(i, j);
                    let hv = self.hv.get(i, j);
                    self.hu.set(i, j, c * hu + s * hv);
                    self.hv.set(i, j, -s * hu + c * hv);
                }
            }
        }
        self.steps += 1;
    }

    /// One single-threaded step (fill halos, compute, commit).
    pub fn step(&mut self) {
        self.fill_halos();
        let mut band = RowBand::new(self.nx, self.ny);
        self.compute_rows(0, self.ny, &mut band);
        self.commit_step(vec![(0, self.ny, band)]);
    }

    /// Total water volume (mass) in the interior.
    pub fn mass(&self) -> f64 {
        self.h.interior_sum() * self.dx * self.dx
    }

    /// Largest gravity-wave CFL number of the current state — must stay
    /// below 1 for stability.
    pub fn cfl(&self) -> f64 {
        let mut c_max = 0.0f64;
        for j in 0..self.ny {
            for i in 0..self.nx {
                let (ii, jj) = (i as isize, j as isize);
                let h = self.h.get(ii, jj);
                if h <= 0.0 {
                    return f64::INFINITY;
                }
                let u = (self.hu.get(ii, jj) / h).abs();
                let v = (self.hv.get(ii, jj) / h).abs();
                c_max = c_max.max(u.max(v) + (GRAVITY * h).sqrt());
            }
        }
        c_max * self.dt / self.dx
    }
}

/// A scratch buffer for one thread's band of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct RowBand {
    /// Interior width.
    pub width: usize,
    /// New depth values, row-major, `(j1-j0) × width`.
    pub h: Vec<f64>,
    /// New x-momentum values.
    pub hu: Vec<f64>,
    /// New y-momentum values.
    pub hv: Vec<f64>,
}

impl RowBand {
    /// A zeroed band of `rows × width`.
    pub fn new(width: usize, rows: usize) -> Self {
        RowBand {
            width,
            h: vec![0.0; width * rows],
            hu: vec![0.0; width * rows],
            hv: vec![0.0; width * rows],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_state_is_steady() {
        let mut sw = ShallowWater::quiescent(16, 16, 1000.0, 100.0, Boundary::Periodic);
        let m0 = sw.mass();
        for _ in 0..10 {
            sw.step();
        }
        assert!((sw.mass() - m0).abs() / m0 < 1e-12);
        assert!((sw.h.get(5, 5) - 100.0).abs() < 1e-12);
        assert_eq!(sw.hu.max_abs(), 0.0);
    }

    #[test]
    fn mass_conserved_with_periodic_boundary() {
        let mut sw = ShallowWater::quiescent(32, 32, 1000.0, 100.0, Boundary::Periodic);
        sw.add_gaussian(16.0, 16.0, -5.0, 4.0);
        let m0 = sw.mass();
        for _ in 0..50 {
            sw.step();
        }
        assert!((sw.mass() - m0).abs() / m0 < 1e-10, "mass drifted");
    }

    #[test]
    fn wave_propagates_outward() {
        let mut sw = ShallowWater::quiescent(64, 64, 1000.0, 100.0, Boundary::Periodic);
        sw.add_gaussian(32.0, 32.0, -5.0, 3.0);
        let probe_before = sw.h.get(48, 32);
        for _ in 0..40 {
            sw.step();
        }
        let probe_after = sw.h.get(48, 32);
        assert!(
            (probe_after - 100.0).abs() > 1e-6,
            "disturbance never reached the probe: {probe_before} → {probe_after}"
        );
    }

    #[test]
    fn cfl_stays_stable() {
        let mut sw = ShallowWater::quiescent(32, 32, 1000.0, 100.0, Boundary::ZeroGradient);
        sw.add_gaussian(16.0, 16.0, -10.0, 4.0);
        for _ in 0..100 {
            sw.step();
            let c = sw.cfl();
            assert!(c < 1.0, "CFL {c} blew past stability");
            assert!(sw.h.max_abs().is_finite());
        }
    }

    #[test]
    fn geostrophic_balance_is_quasi_steady() {
        // A rotating, geostrophically balanced depression should evolve far
        // more slowly than the same depression without rotation balance
        // (which collapses into gravity waves).
        let f = 1e-4;
        // Second-order scheme (Lax-Friedrichs' diffusion would flatten the
        // vortex regardless of balance) on a domain larger than the Rossby
        // deformation radius √(gH)/f ≈ 990 km.
        let build = |balanced: bool| {
            let mut sw = ShallowWater::quiescent(64, 64, 20_000.0, 1000.0, Boundary::Periodic)
                .with_scheme(Scheme::LaxWendroff)
                .with_coriolis(f);
            sw.add_gaussian(32.0, 32.0, -10.0, 12.0);
            if balanced {
                sw.balance_geostrophic();
            }
            sw
        };
        let centre0 = build(true).h.get(32, 32);
        let mut balanced = build(true);
        let mut unbalanced = build(false);
        for _ in 0..100 {
            balanced.step();
            unbalanced.step();
        }
        let drift_bal = (balanced.h.get(32, 32) - centre0).abs();
        let drift_unb = (unbalanced.h.get(32, 32) - centre0).abs();
        assert!(balanced.cfl() < 1.0);
        assert!(
            drift_bal < 0.3 * drift_unb,
            "balanced drift {drift_bal:.3} not ≪ unbalanced {drift_unb:.3}"
        );
    }

    #[test]
    fn coriolis_rotation_preserves_momentum_magnitude() {
        // The split rotation is exact: |(hu, hv)| unchanged by the source
        // step (checked on a uniform-flow state where fluxes are constant).
        let mut sw =
            ShallowWater::quiescent(16, 16, 1000.0, 100.0, Boundary::Periodic).with_coriolis(2e-4);
        for j in 0..16 {
            for i in 0..16 {
                sw.hu.set(i, j, 300.0);
                sw.hv.set(i, j, 400.0);
            }
        }
        let mag0 = (300.0f64 * 300.0 + 400.0 * 400.0).sqrt();
        sw.step();
        let (hu, hv) = (sw.hu.get(8, 8), sw.hv.get(8, 8));
        let mag1 = (hu * hu + hv * hv).sqrt();
        assert!(
            (mag1 - mag0).abs() / mag0 < 1e-9,
            "momentum magnitude drifted: {mag0} → {mag1}"
        );
        // And the vector actually rotated.
        assert!((hu - 300.0).abs() > 1e-6);
    }

    #[test]
    fn lax_wendroff_conserves_mass_and_is_sharper() {
        let setup = |scheme: Scheme| {
            let mut sw = ShallowWater::quiescent(48, 48, 1000.0, 100.0, Boundary::Periodic)
                .with_scheme(scheme);
            sw.add_gaussian(24.0, 24.0, -5.0, 4.0);
            sw
        };
        let mut lf = setup(Scheme::LaxFriedrichs);
        let mut lw = setup(Scheme::LaxWendroff);
        let m0 = lw.mass();
        for _ in 0..40 {
            lf.step();
            lw.step();
        }
        // Conservative form: mass preserved by both.
        assert!((lw.mass() - m0).abs() / m0 < 1e-10);
        assert!(lw.cfl() < 1.0, "LW unstable: CFL {}", lw.cfl());
        // Second order is less diffusive: the remaining disturbance
        // amplitude exceeds Lax-Friedrichs'.
        let amp = |sw: &ShallowWater| -> f64 {
            let mut a = 0.0f64;
            for j in 0..48 {
                for i in 0..48 {
                    a = a.max((sw.h.get(i, j) - 100.0).abs());
                }
            }
            a
        };
        assert!(
            amp(&lw) > 1.2 * amp(&lf),
            "LW amplitude {:.3} not sharper than LF {:.3}",
            amp(&lw),
            amp(&lf)
        );
    }

    #[test]
    fn lax_wendroff_banded_matches_serial() {
        let mut a = ShallowWater::quiescent(20, 20, 1000.0, 100.0, Boundary::Periodic)
            .with_scheme(Scheme::LaxWendroff);
        a.add_gaussian(10.0, 10.0, -3.0, 3.0);
        let mut b = a.clone();
        for _ in 0..5 {
            a.step();
            crate::runtime::step_parallel(&mut b, 3);
        }
        assert_eq!(a.h, b.h);
    }

    #[test]
    fn banded_computation_matches_full() {
        // Computing in two bands must equal computing in one.
        let mut a = ShallowWater::quiescent(20, 20, 1000.0, 100.0, Boundary::Periodic);
        a.add_gaussian(10.0, 10.0, -3.0, 3.0);
        let mut b = a.clone();
        a.step();
        b.fill_halos();
        let mut band1 = RowBand::new(20, 12);
        let mut band2 = RowBand::new(20, 8);
        b.compute_rows(0, 12, &mut band1);
        b.compute_rows(12, 20, &mut band2);
        b.commit_step(vec![(0, 12, band1), (12, 20, band2)]);
        assert_eq!(a.h, b.h);
        assert_eq!(a.hu, b.hu);
        assert_eq!(a.hv, b.hv);
    }

    #[test]
    fn symmetric_initial_state_stays_symmetric() {
        let n = 33; // odd: symmetric centre cell
        let mut sw = ShallowWater::quiescent(n, n, 1000.0, 100.0, Boundary::Periodic);
        sw.add_gaussian((n / 2) as f64, (n / 2) as f64, -5.0, 4.0);
        for _ in 0..20 {
            sw.step();
        }
        for j in 0..n {
            for i in 0..(n / 2) {
                let l = sw.h.get(i as isize, j as isize);
                let r = sw.h.get((n - 1 - i) as isize, j as isize);
                assert!((l - r).abs() < 1e-9, "asymmetry at ({i},{j}): {l} vs {r}");
            }
        }
    }
}

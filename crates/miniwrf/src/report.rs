//! The deterministic simulation report: field digests plus model-derived
//! halo accounting.
//!
//! Every quantity in a [`SimReport`] is a pure function of the model state
//! and geometry — digests of the prognostic fields, sub-step counts, and
//! *logical* halo traffic (the bytes the parent↔nest coupling moves per
//! iteration, derived from the boundary-ring and footprint sizes). Nothing
//! here reads a clock, so a report assembled by a distributed fleet run
//! must be byte-identical to one computed from an in-process run of the
//! same scenario: that equality is the fleet's core correctness invariant
//! and is asserted by integration tests and the CI `fleet-smoke` job.
//! Wall-clock timings live in [`crate::runtime::PhaseTimings`] and the obs
//! envelopes instead, deliberately outside this contract.

use crate::model::{NestState, NestedModel};
use crate::solver::ShallowWater;
use serde::{Deserialize, Serialize};

/// Schema tag of the serialized report.
pub const REPORT_SCHEMA: &str = "nestwx-miniwrf-sim-report";
/// Schema version. Bump on any field change: reports are compared as
/// serialized bytes, so layout drift must be impossible to miss.
pub const REPORT_VERSION: u64 = 1;

/// Bytes one halo cell occupies on the wire: `(i64, i64, f64, f64, f64)`
/// little-endian — the encoding both the frame codec and the logical
/// accounting use, so reported halo bytes match actual frame payloads.
pub const HALO_CELL_BYTES: u64 = 40;

/// FNV-1a 64-bit hash (same constants as `nestwx_core::fnv1a64`, inlined
/// here because the dependency points the other way).
fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a 64 over the little-endian bit patterns of the interior cells of
/// `h`, `hu`, `hv` in that order — the canonical digest of one solver's
/// prognostic state. Bit patterns, not values: `-0.0` and `0.0` digest
/// differently, which is exactly the sensitivity a bitwise-identity
/// invariant needs.
pub fn solver_digest(s: &ShallowWater) -> u64 {
    let mut bytes = Vec::with_capacity(3 * s.nx * s.ny * 8);
    for f in [&s.h, &s.hu, &s.hv] {
        for v in f.interior_values() {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    fnv1a64(&bytes)
}

fn hex(d: u64) -> String {
    format!("{d:016x}")
}

/// Per-nest slice of the report, computable from the [`NestState`] alone —
/// a remote worker builds these for its owned nests and ships them up.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NestReport {
    /// Nest index in the model's sibling order.
    pub nest: usize,
    /// Refinement ratio `r`.
    pub ratio: usize,
    /// Nest sub-steps taken (`iterations × r`).
    pub sub_steps: u64,
    /// Boundary-ring cells interpolated per iteration.
    pub boundary_cells: u64,
    /// Logical halo bytes moved for this nest over the whole run: boundary
    /// cells down plus feedback cells up, [`HALO_CELL_BYTES`] each, per
    /// iteration. Identical for every worker count and transport.
    pub halo_bytes: u64,
    /// Halo messages over the run (one boundary down + one feedback up per
    /// iteration).
    pub halo_messages: u64,
    /// Digest of the nest's prognostic fields ([`solver_digest`], hex).
    pub digest: String,
    /// Digests of second-level children, in child order.
    pub children: Vec<String>,
}

impl NestReport {
    /// Builds the report slice for nest `index` after `iterations` parent
    /// iterations.
    pub fn from_nest(index: usize, nest: &NestState, iterations: u64) -> NestReport {
        let geo = &nest.geo;
        let ring = 2 * (geo.nx as u64 + 2) + 2 * geo.ny as u64;
        let (_, _, pw, ph) = geo.parent_footprint();
        let feedback_cells = (pw * ph) as u64;
        NestReport {
            nest: index,
            ratio: geo.ratio,
            sub_steps: iterations * geo.ratio as u64,
            boundary_cells: ring,
            halo_bytes: iterations * (ring + feedback_cells) * HALO_CELL_BYTES,
            halo_messages: 2 * iterations,
            digest: hex(solver_digest(&nest.solver)),
            children: nest
                .children
                .iter()
                .map(|c| hex(solver_digest(&c.solver)))
                .collect(),
        }
    }
}

/// The deterministic report of one coupled run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimReport {
    /// Schema tag ([`REPORT_SCHEMA`]).
    pub schema: String,
    /// Schema version ([`REPORT_VERSION`]).
    pub version: u64,
    /// Parent iterations completed.
    pub iterations: u64,
    /// Ranks of the execution plan the run realized (metadata, not used in
    /// any digest).
    pub ranks: u64,
    /// Digest of the parent's prognostic fields (hex).
    pub parent_digest: String,
    /// Per-nest slices in sibling order.
    pub nests: Vec<NestReport>,
    /// Combined digest over the parent and every nest/child digest, so one
    /// hex string witnesses the whole state (what `fleet-smoke` greps).
    pub digest: String,
}

impl SimReport {
    /// Assembles a report from a parent digest and per-nest slices (the
    /// distributed path: the coordinator digests the parent, workers ship
    /// [`NestReport`]s, and this stitches them in sibling order).
    pub fn assemble(
        iterations: u64,
        ranks: u64,
        parent_digest: u64,
        nests: Vec<NestReport>,
    ) -> SimReport {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&parent_digest.to_le_bytes());
        for n in &nests {
            bytes.extend_from_slice(n.digest.as_bytes());
            for c in &n.children {
                bytes.extend_from_slice(c.as_bytes());
            }
        }
        SimReport {
            schema: REPORT_SCHEMA.to_string(),
            version: REPORT_VERSION,
            iterations,
            ranks,
            parent_digest: hex(parent_digest),
            digest: hex(fnv1a64(&bytes)),
            nests,
        }
    }

    /// Builds the report from an in-process model (the reference path the
    /// fleet must match byte for byte).
    pub fn from_model(model: &NestedModel, ranks: u64) -> SimReport {
        let nests = model
            .nests
            .iter()
            .enumerate()
            .map(|(i, n)| NestReport::from_nest(i, n, model.iterations))
            .collect();
        SimReport::assemble(model.iterations, ranks, solver_digest(&model.parent), nests)
    }

    /// Compact JSON encoding — field order follows struct declaration, so
    /// equal reports serialize to equal bytes.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::NestGeometry;

    fn model() -> NestedModel {
        let geos = [
            NestGeometry {
                ratio: 3,
                offset: (4, 4),
                nx: 18,
                ny: 18,
            },
            NestGeometry {
                ratio: 2,
                offset: (20, 20),
                nx: 10,
                ny: 10,
            },
        ];
        let mut m = NestedModel::new(32, 32, 3000.0, 100.0, &geos);
        m.add_depression(8.0, 8.0, -4.0, 2.5);
        m
    }

    #[test]
    fn digest_tracks_state() {
        let mut m = model();
        let d0 = solver_digest(&m.parent);
        assert_eq!(d0, solver_digest(&m.parent), "digest is deterministic");
        m.step_coupled();
        assert_ne!(d0, solver_digest(&m.parent), "stepping changes the digest");
    }

    #[test]
    fn report_is_stable_and_assembles_identically() {
        let mut m = model();
        for _ in 0..3 {
            m.step_coupled();
        }
        let a = SimReport::from_model(&m, 64);
        // Assembling from per-nest slices (the distributed path) must give
        // the same bytes as from_model.
        let nests: Vec<NestReport> = m
            .nests
            .iter()
            .enumerate()
            .map(|(i, n)| NestReport::from_nest(i, n, m.iterations))
            .collect();
        let b = SimReport::assemble(m.iterations, 64, solver_digest(&m.parent), nests);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.iterations, 3);
        assert_eq!(a.nests[0].sub_steps, 9);
        assert_eq!(a.nests[1].sub_steps, 6);
        assert_eq!(a.nests[0].halo_messages, 6);
    }

    #[test]
    fn halo_accounting_matches_geometry() {
        let m = model();
        let rep = SimReport::from_model(&m, 1);
        // Nest 0: ring 2·(18+2) + 2·18 = 76 cells; footprint 6×6 = 36
        // feedback cells; zero iterations so far.
        assert_eq!(rep.nests[0].boundary_cells, 76);
        assert_eq!(rep.nests[0].halo_bytes, 0);
        let mut m2 = model();
        m2.step_coupled();
        let rep2 = SimReport::from_model(&m2, 1);
        assert_eq!(rep2.nests[0].halo_bytes, (76 + 36) * HALO_CELL_BYTES);
    }
}

//! Threaded execution of the coupled model under both strategies.
//!
//! The thread analogue of the paper's processor partitioning: a domain step
//! is data-parallel over row bands ([`step_parallel`]), and the sibling
//! phase either runs each nest **sequentially on all threads** (WRF's
//! default) or **concurrently, each nest on its allocated thread group**
//! (the paper's strategy). Because the sibling solves are independent given
//! precomputed boundary data, the two strategies produce *bitwise identical*
//! states — only wall-clock time differs.

use crate::field::Field2D;
use crate::model::{NestState, NestedModel};
use crate::solver::{RowBand, ShallowWater};
use nestwx_obs::clock;
use nestwx_obs::{Recorder, StepMetrics, StepPhase};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Sibling-phase execution strategy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadStrategy {
    /// Each nest solved one after another using all `total_threads`.
    Sequential,
    /// Nest `i` solved on `allocation[i]` dedicated threads, all nests at
    /// once. The allocation is the thread analogue of Algorithm 1's
    /// processor rectangles.
    Concurrent {
        /// Threads per sibling, in nest order.
        allocation: Vec<usize>,
    },
}

/// Wall-clock breakdown of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Iterations executed.
    pub iterations: u32,
    /// Time in parent steps.
    pub parent: Duration,
    /// Time in the sibling phase (interpolation + nest solves + feedback).
    pub siblings: Duration,
    /// Per-sibling solve time (sum over iterations). Under the concurrent
    /// strategy these overlap, so their sum exceeds `siblings`.
    pub per_sibling: Vec<Duration>,
    /// Total wall-clock.
    pub total: Duration,
}

impl PhaseTimings {
    /// Seconds per iteration.
    pub fn per_iteration(&self) -> f64 {
        self.total.as_secs_f64() / self.iterations as f64
    }
}

/// One multi-threaded solver step over `threads` row bands.
///
/// Fills halos, computes bands in parallel scoped threads, commits. With
/// `threads == 1` no threads are spawned. The result is bitwise identical
/// to [`ShallowWater::step`] because band decomposition does not change
/// the arithmetic.
pub fn step_parallel(sw: &mut ShallowWater, threads: usize) {
    assert!(threads > 0);
    if threads == 1 || sw.ny < 2 * threads {
        sw.step();
        return;
    }
    sw.fill_halos();
    let bands = Field2D::row_bands(sw.ny, threads);
    let mut results: Vec<(usize, usize, RowBand)> = bands
        .iter()
        .map(|&(j0, j1)| (j0, j1, RowBand::new(sw.nx, j1 - j0)))
        .collect();
    std::thread::scope(|scope| {
        for (j0, j1, band) in results.iter_mut() {
            let sw_ref = &*sw;
            let (j0, j1) = (*j0, *j1);
            scope.spawn(move || sw_ref.compute_rows(j0, j1, band));
        }
    });
    sw.commit_step(results);
}

/// Runs `iterations` coupled iterations under the given strategy with
/// `total_threads` workers, returning timings. The model is advanced in
/// place.
pub fn run_iterations(
    model: &mut NestedModel,
    iterations: u32,
    total_threads: usize,
    strategy: &ThreadStrategy,
) -> PhaseTimings {
    run_iterations_inner(model, iterations, total_threads, strategy, None)
}

/// [`run_iterations`] with a [`Recorder`] attached: every parent step and
/// every sibling solve lands in the step-metrics ring (wall-clock seconds
/// since the run started, `compute` = the phase's duration), plus span
/// events when the `obs-spans` feature is on. The model state is bitwise
/// identical to an unobserved run — observation only reads clocks.
pub fn run_iterations_observed(
    model: &mut NestedModel,
    iterations: u32,
    total_threads: usize,
    strategy: &ThreadStrategy,
    rec: &mut Recorder,
) -> PhaseTimings {
    run_iterations_inner(model, iterations, total_threads, strategy, Some(rec))
}

fn run_iterations_inner(
    model: &mut NestedModel,
    iterations: u32,
    total_threads: usize,
    strategy: &ThreadStrategy,
    mut obs: Option<&mut Recorder>,
) -> PhaseTimings {
    assert!(iterations > 0 && total_threads > 0);
    if let ThreadStrategy::Concurrent { allocation } = strategy {
        assert_eq!(
            allocation.len(),
            model.nests.len(),
            "one thread count per sibling"
        );
        assert!(allocation.iter().all(|&t| t > 0));
    }
    let mut parent_t = Duration::ZERO;
    let mut sibling_t = Duration::ZERO;
    let mut per_sibling = vec![Duration::ZERO; model.nests.len()];
    let mut step_no = 0u64;
    let t_start = clock::now();

    for _ in 0..iterations {
        let t0 = clock::now();
        step_parallel(&mut model.parent, total_threads);
        let parent_dt = t0.elapsed();
        parent_t += parent_dt;
        if let Some(rec) = obs.as_deref_mut() {
            step_no += 1;
            let start = t0.duration_since(t_start).as_secs_f64();
            let dur = parent_dt.as_secs_f64();
            rec.record_step(phase_metrics(step_no, StepPhase::Parent, -1, start, dur));
            if nestwx_obs::SPANS_ENABLED {
                rec.span("parent step", 0, start * 1e6, dur * 1e6);
            }
        }

        let t1 = clock::now();
        let bcs = model.boundaries();
        let iter_sibling: Vec<Duration> = match strategy {
            ThreadStrategy::Sequential => model
                .nests
                .iter_mut()
                .zip(&bcs)
                .map(|(nest, bc)| {
                    let ts = clock::now();
                    solve_nest_threaded(nest, bc, total_threads);
                    ts.elapsed()
                })
                .collect(),
            ThreadStrategy::Concurrent { allocation } => std::thread::scope(|scope| {
                let handles: Vec<_> = model
                    .nests
                    .iter_mut()
                    .zip(&bcs)
                    .zip(allocation)
                    .map(|((nest, bc), &threads)| {
                        scope.spawn(move || {
                            let ts = clock::now();
                            solve_nest_threaded(nest, bc, threads);
                            ts.elapsed()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sibling thread panicked"))
                    .collect()
            }),
        };
        for (acc, t) in per_sibling.iter_mut().zip(&iter_sibling) {
            *acc += *t;
        }
        model.apply_feedbacks();
        let sibling_dt = t1.elapsed();
        sibling_t += sibling_dt;
        if let Some(rec) = obs.as_deref_mut() {
            let start = t1.duration_since(t_start).as_secs_f64();
            for (i, d) in iter_sibling.iter().enumerate() {
                step_no += 1;
                rec.record_step(phase_metrics(
                    step_no,
                    StepPhase::Nest,
                    i as i32,
                    start,
                    d.as_secs_f64(),
                ));
            }
            // One timeline frame per iteration with the siblings as lanes:
            // the lane spread is the paper's load-imbalance factor across
            // nests (what the thread allocation is meant to equalise).
            if !iter_sibling.is_empty() {
                let end = start + sibling_dt.as_secs_f64();
                rec.record_rank_step(
                    iter_sibling.len() as u32,
                    step_no,
                    -1,
                    start,
                    end,
                    0..iter_sibling.len() as u32,
                    |i| iter_sibling[i as usize].as_secs_f64(),
                    |_| 0.0,
                );
            }
            if nestwx_obs::SPANS_ENABLED {
                rec.span(
                    "sibling phase",
                    0,
                    start * 1e6,
                    sibling_dt.as_secs_f64() * 1e6,
                );
            }
        }
    }

    PhaseTimings {
        iterations,
        parent: parent_t,
        siblings: sibling_t,
        per_sibling,
        total: t_start.elapsed(),
    }
}

/// A wall-clock phase record: no network in the mini-app, so all message
/// counters stay zero and the phase duration is charged to `compute`.
fn phase_metrics(step: u64, phase: StepPhase, nest: i32, start: f64, dur: f64) -> StepMetrics {
    StepMetrics {
        step,
        phase,
        nest,
        domains: 1,
        start,
        end: start + dur,
        compute: dur,
        halo_wait: 0.0,
        bytes: 0.0,
        messages: 0,
        transfers: 0,
        hops: 0,
        stall: 0.0,
    }
}

/// Solves one nest's `r` sub-steps with its own thread group, recursing
/// into second-level children after each sub-step (children share their
/// parent nest's thread group, mirroring how they sub-divide their parent's
/// processors in the planner).
fn solve_nest_threaded(nest: &mut NestState, bc: &crate::nest::BoundaryData, threads: usize) {
    for _ in 0..nest.geo.ratio {
        crate::nest::apply_boundary(&mut nest.solver, bc);
        step_parallel(&mut nest.solver, threads);
        let NestState {
            solver, children, ..
        } = nest;
        for child in children.iter_mut() {
            let cbc = crate::nest::interpolate_boundary(solver, &child.geo);
            for _ in 0..child.geo.ratio {
                crate::nest::apply_boundary(&mut child.solver, &cbc);
                step_parallel(&mut child.solver, threads);
            }
            crate::nest::feedback_to_parent(&child.solver, solver, &child.geo);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::NestGeometry;

    fn model() -> NestedModel {
        let geos = [
            NestGeometry {
                ratio: 3,
                offset: (4, 4),
                nx: 30,
                ny: 30,
            },
            NestGeometry {
                ratio: 3,
                offset: (24, 24),
                nx: 30,
                ny: 30,
            },
        ];
        let mut m = NestedModel::new(44, 44, 3000.0, 100.0, &geos);
        m.add_depression(9.0, 9.0, -4.0, 2.5);
        m.add_depression(29.0, 29.0, -6.0, 3.0);
        m
    }

    #[test]
    fn parallel_step_matches_serial_bitwise() {
        let mut a = model();
        let mut b = model();
        for _ in 0..4 {
            a.parent.step();
            step_parallel(&mut b.parent, 4);
        }
        assert_eq!(a.parent.h, b.parent.h);
        assert_eq!(a.parent.hu, b.parent.hu);
    }

    #[test]
    fn strategies_bitwise_identical() {
        // The paper's strategies reorder independent work; results must not
        // change. (WRF itself guarantees this: sibling nests share no
        // state between synchronisation points.)
        let mut seq = model();
        let mut conc = model();
        run_iterations(&mut seq, 5, 4, &ThreadStrategy::Sequential);
        run_iterations(
            &mut conc,
            5,
            4,
            &ThreadStrategy::Concurrent {
                allocation: vec![2, 2],
            },
        );
        assert_eq!(seq.parent.h, conc.parent.h);
        for (a, b) in seq.nests.iter().zip(&conc.nests) {
            assert_eq!(a.solver.h, b.solver.h);
            assert_eq!(a.solver.hu, b.solver.hu);
            assert_eq!(a.solver.hv, b.solver.hv);
        }
    }

    #[test]
    fn threaded_run_matches_reference_coupled() {
        let mut reference = model();
        for _ in 0..3 {
            reference.step_coupled();
        }
        let mut threaded = model();
        run_iterations(&mut threaded, 3, 3, &ThreadStrategy::Sequential);
        assert_eq!(reference.parent.h, threaded.parent.h);
        assert_eq!(reference.nests[0].solver.h, threaded.nests[0].solver.h);
    }

    #[test]
    fn timings_populated() {
        let mut m = model();
        let t = run_iterations(&mut m, 2, 2, &ThreadStrategy::Sequential);
        assert_eq!(t.iterations, 2);
        assert!(t.total >= t.parent);
        assert_eq!(t.per_sibling.len(), 2);
        assert!(t.per_sibling.iter().all(|d| !d.is_zero()));
        assert!(t.per_iteration() > 0.0);
    }

    #[test]
    #[should_panic]
    fn concurrent_requires_allocation_per_sibling() {
        let mut m = model();
        run_iterations(
            &mut m,
            1,
            2,
            &ThreadStrategy::Concurrent {
                allocation: vec![2],
            },
        );
    }

    #[test]
    fn second_level_nests_bitwise_stable_across_strategies() {
        let build = || {
            let mut m = model();
            m.add_child_nest(
                0,
                NestGeometry {
                    ratio: 3,
                    offset: (4, 4),
                    nx: 24,
                    ny: 21,
                },
            );
            m.add_child_nest(
                1,
                NestGeometry {
                    ratio: 3,
                    offset: (6, 6),
                    nx: 18,
                    ny: 18,
                },
            );
            m
        };
        let mut reference = build();
        for _ in 0..3 {
            reference.step_coupled();
        }
        let mut seq = build();
        run_iterations(&mut seq, 3, 3, &ThreadStrategy::Sequential);
        let mut conc = build();
        run_iterations(
            &mut conc,
            3,
            3,
            &ThreadStrategy::Concurrent {
                allocation: vec![2, 1],
            },
        );
        assert_eq!(reference.parent.h, seq.parent.h);
        assert_eq!(seq.parent.h, conc.parent.h);
        for (a, b) in seq.nests.iter().zip(&conc.nests) {
            assert_eq!(a.solver.h, b.solver.h);
            for (ca, cb) in a.children.iter().zip(&b.children) {
                assert_eq!(ca.solver.h, cb.solver.h);
                assert!(ca.solver.cfl() < 1.0);
            }
        }
    }

    #[test]
    fn observed_run_records_phases_and_matches_unobserved() {
        let mut plain = model();
        let mut observed = model();
        run_iterations(&mut plain, 3, 2, &ThreadStrategy::Sequential);
        let mut rec = Recorder::new(nestwx_obs::ObsConfig::counters());
        let t = run_iterations_observed(&mut observed, 3, 2, &ThreadStrategy::Sequential, &mut rec);
        // Observation only reads clocks; the model state must be identical.
        assert_eq!(plain.parent.h, observed.parent.h);
        for (a, b) in plain.nests.iter().zip(&observed.nests) {
            assert_eq!(a.solver.h, b.solver.h);
        }
        // 3 iterations × (1 parent + 2 siblings) records.
        let s = rec.summary();
        assert_eq!(s.steps, 9);
        assert_eq!(s.per_nest.len(), 2);
        assert_eq!(s.per_nest[0].steps, 3);
        assert!(s.compute > 0.0);
        // Recorded compute covers the timed phases (same clock sources).
        let timed =
            t.parent.as_secs_f64() + t.per_sibling.iter().map(|d| d.as_secs_f64()).sum::<f64>();
        assert!((s.compute - timed).abs() < 0.5 * timed + 1e-6);
    }

    #[test]
    fn observed_run_fills_sibling_timeline_lanes() {
        let mut m = model();
        let mut rec = Recorder::new(nestwx_obs::ObsConfig::detailed());
        run_iterations_observed(&mut m, 3, 2, &ThreadStrategy::Sequential, &mut rec);
        let tl = rec.timeline().expect("detailed config has a timeline");
        // One frame per iteration, one lane per sibling nest.
        assert_eq!(tl.recorded_steps(), 3);
        assert_eq!(tl.lanes(), 2);
        for f in 0..tl.frames() {
            assert!(tl.frame_compute(f).iter().all(|&c| c > 0.0));
        }
        let analysis = rec.analysis();
        assert!(analysis.overall_imbalance >= 1.0);
    }

    #[test]
    fn tiny_domain_falls_back_to_serial() {
        // ny < 2×threads: no banding, still correct.
        let mut sw = ShallowWater::quiescent(8, 3, 1000.0, 50.0, crate::solver::Boundary::Periodic);
        sw.add_gaussian(4.0, 1.0, -1.0, 1.0);
        let mut reference = sw.clone();
        reference.step();
        step_parallel(&mut sw, 8);
        assert_eq!(sw.h, reference.h);
    }
}

//! Pluggable halo transport: the parent↔nest coupling split across an
//! ownership boundary.
//!
//! The coupled iteration moves exactly two kinds of halo data: boundary
//! rings down (parent → nest, after the parent step) and feedback cells up
//! (nest → parent, after the nest's `r` sub-steps). [`HaloHost`] is the
//! parent-owner's side of that exchange and [`HaloLink`] the nest-owner's;
//! [`drive_parent`] and [`drive_nests`] run the two halves of the coupled
//! loop against those traits, so the same arithmetic executes whether the
//! counterpart lives on another thread ([`channel_transport`]) or in
//! another process behind a socket (`nestwx-fleet`'s transport). Because
//! [`BoundaryData`]/[`FeedbackData`] cross the boundary as exact f64 bit
//! patterns, a distributed run is bitwise identical to
//! [`crate::runtime::run_iterations`] — the invariant
//! [`crate::report::SimReport`] digests witness.

use crate::model::{NestState, NestedModel};
use crate::nest::{
    apply_feedback, collect_feedback, interpolate_boundary, BoundaryData, FeedbackData,
};
use crate::runtime::step_parallel;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::mpsc;
use std::time::Duration;

/// How long a channel transport waits for its counterpart before giving
/// up — generous, because an in-process peer that stays silent this long
/// has died, not stalled.
const CHANNEL_RECV_TIMEOUT: Duration = Duration::from_secs(30);

/// A halo-exchange failure. `Closed` and `Timeout` are how worker loss
/// surfaces: the driver maps them to a typed `worker_lost` error instead
/// of hanging or reporting a partial run as complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The counterpart disconnected or dropped its endpoint.
    Closed(String),
    /// The counterpart stayed silent past the transport's deadline.
    Timeout(String),
    /// The counterpart sent something structurally invalid.
    Protocol(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed(d) => write!(f, "transport closed: {d}"),
            TransportError::Timeout(d) => write!(f, "transport timeout: {d}"),
            TransportError::Protocol(d) => write!(f, "transport protocol error: {d}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// The parent-owner's side: pushes boundary rings to whichever worker owns
/// each nest and collects that nest's feedback. Implementations route by
/// nest index and may buffer out-of-order arrivals; `recv_feedback` must
/// return the feedback for exactly `(nest, iteration)`.
pub trait HaloHost {
    /// Sends nest `nest`'s boundary ring for `iteration`.
    fn send_boundary(
        &mut self,
        nest: usize,
        iteration: u64,
        bc: &BoundaryData,
    ) -> Result<(), TransportError>;

    /// Receives nest `nest`'s feedback for `iteration`.
    fn recv_feedback(
        &mut self,
        nest: usize,
        iteration: u64,
    ) -> Result<FeedbackData, TransportError>;
}

/// The nest-owner's side: receives boundary rings for its owned nests and
/// returns their feedback.
pub trait HaloLink {
    /// Receives nest `nest`'s boundary ring for `iteration`.
    fn recv_boundary(
        &mut self,
        nest: usize,
        iteration: u64,
    ) -> Result<BoundaryData, TransportError>;

    /// Sends nest `nest`'s feedback for `iteration`.
    fn send_feedback(
        &mut self,
        nest: usize,
        iteration: u64,
        fb: &FeedbackData,
    ) -> Result<(), TransportError>;
}

/// Runs the parent-owner half of `iterations` coupled iterations: step the
/// parent, send every nest's boundary, then apply every nest's feedback in
/// sibling order — the same order [`NestedModel::apply_feedbacks`] uses,
/// so the parent state is independent of which worker answers first.
pub fn drive_parent<H: HaloHost>(
    model: &mut NestedModel,
    iterations: u64,
    threads: usize,
    host: &mut H,
) -> Result<(), TransportError> {
    for iter in 0..iterations {
        step_parallel(&mut model.parent, threads);
        for (idx, nest) in model.nests.iter().enumerate() {
            let bc = interpolate_boundary(&model.parent, &nest.geo);
            host.send_boundary(idx, iter, &bc)?;
        }
        for idx in 0..model.nests.len() {
            let fb = host.recv_feedback(idx, iter)?;
            apply_feedback(&mut model.parent, &fb);
        }
        model.iterations += 1;
    }
    Ok(())
}

/// Runs the nest-owner half over `owned` (global nest index, state) pairs:
/// per iteration and owned nest, receive the boundary, solve the `r`
/// sub-steps (recursing into children), and send the feedback.
pub fn drive_nests<L: HaloLink>(
    owned: &mut [(usize, NestState)],
    iterations: u64,
    link: &mut L,
) -> Result<(), TransportError> {
    for iter in 0..iterations {
        for (idx, nest) in owned.iter_mut() {
            let bc = link.recv_boundary(*idx, iter)?;
            NestedModel::solve_nest(nest, &bc);
            let fb = collect_feedback(&nest.solver, &nest.geo);
            link.send_feedback(*idx, iter, &fb)?;
        }
    }
    Ok(())
}

type Cells = Vec<(isize, isize, f64, f64, f64)>;

/// The in-process transport: a pair of mpsc channels carrying the halo
/// cells between two threads of one process.
pub struct ChannelHost {
    down: mpsc::Sender<(usize, u64, Cells)>,
    up: mpsc::Receiver<(usize, u64, Cells)>,
    pending: BTreeMap<(u64, usize), Cells>,
}

/// The nest-owner end of [`channel_transport`].
pub struct ChannelLink {
    down: mpsc::Receiver<(usize, u64, Cells)>,
    up: mpsc::Sender<(usize, u64, Cells)>,
    pending: BTreeMap<(u64, usize), Cells>,
}

/// Builds a connected in-process transport pair: the [`ChannelHost`] drives
/// the parent on one thread, the [`ChannelLink`] the nests on another.
pub fn channel_transport() -> (ChannelHost, ChannelLink) {
    let (down_tx, down_rx) = mpsc::channel();
    let (up_tx, up_rx) = mpsc::channel();
    (
        ChannelHost {
            down: down_tx,
            up: up_rx,
            pending: BTreeMap::new(),
        },
        ChannelLink {
            down: down_rx,
            up: up_tx,
            pending: BTreeMap::new(),
        },
    )
}

/// Drains `rx` until `(iteration, nest)` is available, buffering anything
/// that arrives ahead of it.
fn recv_keyed(
    rx: &mpsc::Receiver<(usize, u64, Cells)>,
    pending: &mut BTreeMap<(u64, usize), Cells>,
    nest: usize,
    iteration: u64,
    what: &str,
) -> Result<Cells, TransportError> {
    loop {
        if let Some(cells) = pending.remove(&(iteration, nest)) {
            return Ok(cells);
        }
        match rx.recv_timeout(CHANNEL_RECV_TIMEOUT) {
            Ok((n, it, cells)) => {
                pending.insert((it, n), cells);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                return Err(TransportError::Timeout(format!(
                    "waiting for {what} of nest {nest} iteration {iteration}"
                )))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(TransportError::Closed(format!(
                    "counterpart gone while waiting for {what} of nest {nest}"
                )))
            }
        }
    }
}

impl HaloHost for ChannelHost {
    fn send_boundary(
        &mut self,
        nest: usize,
        iteration: u64,
        bc: &BoundaryData,
    ) -> Result<(), TransportError> {
        self.down
            .send((nest, iteration, bc.cells().to_vec()))
            .map_err(|_| TransportError::Closed(format!("sending boundary of nest {nest}")))
    }

    fn recv_feedback(
        &mut self,
        nest: usize,
        iteration: u64,
    ) -> Result<FeedbackData, TransportError> {
        recv_keyed(&self.up, &mut self.pending, nest, iteration, "feedback")
            .map(FeedbackData::from_cells)
    }
}

impl HaloLink for ChannelLink {
    fn recv_boundary(
        &mut self,
        nest: usize,
        iteration: u64,
    ) -> Result<BoundaryData, TransportError> {
        recv_keyed(&self.down, &mut self.pending, nest, iteration, "boundary")
            .map(BoundaryData::from_cells)
    }

    fn send_feedback(
        &mut self,
        nest: usize,
        iteration: u64,
        fb: &FeedbackData,
    ) -> Result<(), TransportError> {
        self.up
            .send((nest, iteration, fb.cells().to_vec()))
            .map_err(|_| TransportError::Closed(format!("sending feedback of nest {nest}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::NestGeometry;
    use crate::report::SimReport;

    fn model() -> NestedModel {
        let geos = [
            NestGeometry {
                ratio: 3,
                offset: (4, 4),
                nx: 18,
                ny: 18,
            },
            NestGeometry {
                ratio: 2,
                offset: (20, 20),
                nx: 10,
                ny: 10,
            },
        ];
        let mut m = NestedModel::new(32, 32, 3000.0, 100.0, &geos);
        m.add_child_nest(
            0,
            NestGeometry {
                ratio: 2,
                offset: (3, 3),
                nx: 8,
                ny: 8,
            },
        );
        m.add_depression(8.0, 8.0, -4.0, 2.5);
        m.add_depression(23.0, 23.0, -6.0, 3.0);
        m
    }

    #[test]
    fn channel_transport_matches_in_process_bitwise() {
        const ITERS: u64 = 4;
        // Reference: the plain coupled loop.
        let mut reference = model();
        for _ in 0..ITERS {
            reference.step_coupled();
        }

        // Distributed: parent on this thread, nests on another, halos over
        // the channel transport.
        let mut parent_side = model();
        let owned: Vec<(usize, NestState)> =
            parent_side.nests.iter().cloned().enumerate().collect();
        let (mut host, mut link) = channel_transport();
        let nest_thread = std::thread::spawn(move || {
            let mut owned = owned;
            drive_nests(&mut owned, ITERS, &mut link)?;
            Ok::<_, TransportError>(owned)
        });
        drive_parent(&mut parent_side, ITERS, 1, &mut host).expect("parent side");
        let owned = nest_thread.join().expect("join").expect("nest side");

        // Parent state bitwise identical.
        assert_eq!(parent_side.parent, reference.parent);
        // Nest states bitwise identical.
        for (idx, nest) in &owned {
            assert_eq!(nest, &reference.nests[*idx], "nest {idx} diverged");
        }
        // And the assembled report equals the reference report byte for byte.
        let reassembled = SimReport::assemble(
            ITERS,
            7,
            crate::report::solver_digest(&parent_side.parent),
            owned
                .iter()
                .map(|(i, n)| crate::report::NestReport::from_nest(*i, n, ITERS))
                .collect(),
        );
        assert_eq!(
            reassembled.to_json(),
            SimReport::from_model(&reference, 7).to_json()
        );
    }

    #[test]
    fn dropped_link_surfaces_closed() {
        let mut m = model();
        let (mut host, link) = channel_transport();
        drop(link);
        let err = drive_parent(&mut m, 1, 1, &mut host).unwrap_err();
        assert!(matches!(err, TransportError::Closed(_)), "{err}");
    }
}

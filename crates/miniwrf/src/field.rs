//! A 2-D scalar field with a one-cell halo ring.

use serde::{Deserialize, Serialize};

/// An `nx × ny` field of `f64` stored row-major with a one-cell halo ring
/// around the interior, so stencil code can read `(i±1, j±1)` without bounds
/// branches. Interior indices run `0 ≤ i < nx`, `0 ≤ j < ny`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Field2D {
    /// Interior width.
    pub nx: usize,
    /// Interior height.
    pub ny: usize,
    data: Vec<f64>,
}

impl Field2D {
    /// A field filled with `value`.
    pub fn filled(nx: usize, ny: usize, value: f64) -> Self {
        assert!(nx > 0 && ny > 0, "empty field");
        Field2D {
            nx,
            ny,
            data: vec![value; (nx + 2) * (ny + 2)],
        }
    }

    /// A zero field.
    pub fn zeros(nx: usize, ny: usize) -> Self {
        Field2D::filled(nx, ny, 0.0)
    }

    #[inline(always)]
    fn idx(&self, i: isize, j: isize) -> usize {
        debug_assert!(i >= -1 && i <= self.nx as isize, "i={i} out of range");
        debug_assert!(j >= -1 && j <= self.ny as isize, "j={j} out of range");
        (j + 1) as usize * (self.nx + 2) + (i + 1) as usize
    }

    /// Reads cell `(i, j)`; `-1` and `nx`/`ny` address the halo ring.
    #[inline(always)]
    pub fn get(&self, i: isize, j: isize) -> f64 {
        self.data[self.idx(i, j)]
    }

    /// Writes cell `(i, j)` (halo addressable like [`Field2D::get`]).
    #[inline(always)]
    pub fn set(&mut self, i: isize, j: isize, v: f64) {
        let k = self.idx(i, j);
        self.data[k] = v;
    }

    /// Interior values in row-major order (`j` outer, `i` inner) — the
    /// deterministic traversal field digests use.
    pub fn interior_values(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.ny).flat_map(move |j| (0..self.nx).map(move |i| self.get(i as isize, j as isize)))
    }

    /// Sum over the interior (for conservation checks).
    pub fn interior_sum(&self) -> f64 {
        let mut s = 0.0;
        for j in 0..self.ny {
            for i in 0..self.nx {
                s += self.get(i as isize, j as isize);
            }
        }
        s
    }

    /// Maximum absolute interior value.
    pub fn max_abs(&self) -> f64 {
        let mut m = 0.0f64;
        for j in 0..self.ny {
            for i in 0..self.nx {
                m = m.max(self.get(i as isize, j as isize).abs());
            }
        }
        m
    }

    /// Copies each interior edge into the adjacent halo cell — zero-gradient
    /// (reflective for normal velocity handled by the solver) boundary.
    pub fn fill_halo_zero_gradient(&mut self) {
        let (nx, ny) = (self.nx as isize, self.ny as isize);
        for i in 0..nx {
            let top = self.get(i, 0);
            self.set(i, -1, top);
            let bot = self.get(i, ny - 1);
            self.set(i, ny, bot);
        }
        for j in -1..=ny {
            let l = self.get(0, j.clamp(0, ny - 1));
            self.set(-1, j, l);
            let r = self.get(nx - 1, j.clamp(0, ny - 1));
            self.set(nx, j, r);
        }
    }

    /// Splits the interior rows into `bands` contiguous row ranges
    /// `(j_start, j_end)` of near-equal height for the thread runtime.
    pub fn row_bands(ny: usize, bands: usize) -> Vec<(usize, usize)> {
        assert!(bands > 0);
        let bands = bands.min(ny);
        let base = ny / bands;
        let rem = ny % bands;
        let mut out = Vec::with_capacity(bands);
        let mut j = 0;
        for b in 0..bands {
            let h = base + usize::from(b < rem);
            out.push((j, j + h));
            j += h;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip_including_halo() {
        let mut f = Field2D::zeros(4, 3);
        f.set(0, 0, 1.5);
        f.set(3, 2, 2.5);
        f.set(-1, -1, 9.0);
        f.set(4, 3, 8.0);
        assert_eq!(f.get(0, 0), 1.5);
        assert_eq!(f.get(3, 2), 2.5);
        assert_eq!(f.get(-1, -1), 9.0);
        assert_eq!(f.get(4, 3), 8.0);
    }

    #[test]
    fn interior_sum_ignores_halo() {
        let mut f = Field2D::filled(3, 3, 1.0);
        f.set(-1, 0, 100.0);
        f.set(3, 3, 100.0);
        assert_eq!(f.interior_sum(), 9.0);
    }

    #[test]
    fn zero_gradient_halo() {
        let mut f = Field2D::zeros(3, 2);
        for j in 0..2 {
            for i in 0..3 {
                f.set(i, j, (10 * j + i) as f64);
            }
        }
        f.fill_halo_zero_gradient();
        assert_eq!(f.get(-1, 0), f.get(0, 0));
        assert_eq!(f.get(3, 1), f.get(2, 1));
        assert_eq!(f.get(1, -1), f.get(1, 0));
        assert_eq!(f.get(1, 2), f.get(1, 1));
        // Corners come from the clamped column fill.
        assert_eq!(f.get(-1, -1), f.get(0, 0));
    }

    #[test]
    fn row_bands_cover_exactly() {
        for (ny, bands) in [(10, 3), (7, 7), (5, 8), (100, 16)] {
            let b = Field2D::row_bands(ny, bands);
            assert_eq!(b[0].0, 0);
            assert_eq!(b.last().unwrap().1, ny);
            for w in b.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
            let heights: Vec<usize> = b.iter().map(|(a, z)| z - a).collect();
            let (min, max) = (heights.iter().min().unwrap(), heights.iter().max().unwrap());
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn max_abs_detects_peaks() {
        let mut f = Field2D::zeros(4, 4);
        f.set(2, 2, -7.0);
        assert_eq!(f.max_abs(), 7.0);
    }
}

//! Worker-loss robustness: a worker that disconnects or goes silent
//! mid-run must surface as a typed `worker_lost` error, with the
//! coordinator draining cleanly (surviving workers aborted, no hang, no
//! partial report).

use nestwx_fleet::wire::{to_payload, Hello, FLEET_WIRE_VERSION};
use nestwx_fleet::{
    accept_n, bind_listener, connect, run_coordinator, run_worker, FleetConfig, FleetError, Tag,
};
use nestwx_grid::{Domain, NestSpec};
use nestwx_obs::clock;
use std::time::{Duration, Instant};

fn scenario() -> (Domain, Vec<NestSpec>) {
    let parent = Domain::parent(32, 32, 24.0);
    let nests = vec![
        NestSpec::new(18, 18, 3, (3, 3)),
        NestSpec::new(10, 10, 2, (20, 20)),
    ];
    (parent, nests)
}

fn config(frame_timeout: Duration) -> FleetConfig {
    FleetConfig {
        workers: 2,
        threads: 1,
        connect_timeout: Duration::from_secs(10),
        frame_timeout,
    }
}

/// How a rogue worker misbehaves after its handshake.
#[derive(Clone, Copy)]
enum Sabotage {
    /// Drop the connection right after receiving the assignment.
    DisconnectAfterAssign,
    /// Accept the assignment, then never answer another frame.
    GoSilent,
}

/// Runs a 2-worker fleet where one worker is well-behaved and the other
/// sabotages the run; returns the coordinator's error and how long the
/// coordinator took to surface it.
fn run_sabotaged(
    sabotage: Sabotage,
    cfg: &FleetConfig,
) -> (FleetError, Duration, Result<(), FleetError>) {
    let (parent, nests) = scenario();
    let (listener, addr) = bind_listener("127.0.0.1:0").expect("bind");

    let good_addr = addr.clone();
    let good = std::thread::spawn(move || {
        let mut conn = connect(&good_addr, clock::deadline_after(Duration::from_secs(10)))
            .expect("good worker connects");
        // Generous frame timeout: the good worker must outlast the
        // coordinator's (possibly short) deadline so the Abort reaches it.
        run_worker(&mut conn, Duration::from_secs(30))
    });

    let rogue_addr = addr.clone();
    let rogue = std::thread::spawn(move || {
        let mut conn = connect(&rogue_addr, clock::deadline_after(Duration::from_secs(10)))
            .expect("rogue worker connects");
        conn.queue(
            Tag::Hello,
            &to_payload(&Hello {
                version: FLEET_WIRE_VERSION,
            }),
        );
        conn.flush_fully(clock::deadline_after(Duration::from_secs(5)))
            .expect("hello flushes");
        let (tag, _) = conn
            .wait_frame(clock::deadline_after(Duration::from_secs(10)))
            .expect("assign arrives");
        assert_eq!(tag, Tag::Assign);
        match sabotage {
            Sabotage::DisconnectAfterAssign => drop(conn),
            Sabotage::GoSilent => {
                // Hold the connection open, swallow boundaries, never
                // answer; the coordinator's frame deadline must fire. Exit
                // on Abort so the thread ends once the coordinator gives up.
                let deadline = clock::deadline_after(Duration::from_secs(30));
                loop {
                    match conn.wait_frame(deadline) {
                        Ok((Tag::Abort, _)) => break,
                        Ok(_) => continue,
                        Err(_) => break,
                    }
                }
            }
        }
    });

    let conns = accept_n(&listener, 2, clock::deadline_after(cfg.connect_timeout)).expect("accept");
    let started = Instant::now();
    let result = run_coordinator(&parent, &nests, 50_000, 8, &[], conns, cfg);
    let elapsed = started.elapsed();

    let err = result.map(|_| ()).expect_err("sabotaged run must fail");
    let good_result = good.join().expect("good worker thread");
    rogue.join().expect("rogue worker thread");
    (err, elapsed, good_result)
}

#[test]
fn disconnect_mid_run_is_typed_worker_lost_with_clean_drain() {
    let cfg = config(Duration::from_secs(30));
    let (err, elapsed, good_result) = run_sabotaged(Sabotage::DisconnectAfterAssign, &cfg);
    assert_eq!(err.kind(), "worker_lost", "got: {err}");
    assert!(
        matches!(err, FleetError::WorkerLost { .. }),
        "typed variant expected, got {err}"
    );
    // A disconnect is detected by EOF, not by waiting out the 30 s frame
    // deadline — the "no hang" half of the guarantee.
    assert!(
        elapsed < Duration::from_secs(10),
        "coordinator took {elapsed:?} to notice a dead worker"
    );
    // The surviving worker was aborted and exited cleanly.
    assert!(good_result.is_ok(), "good worker: {good_result:?}");
}

#[test]
fn silent_worker_times_out_as_worker_lost() {
    let cfg = config(Duration::from_millis(300));
    let (err, _elapsed, good_result) = run_sabotaged(Sabotage::GoSilent, &cfg);
    match &err {
        FleetError::WorkerLost { reason, .. } => {
            assert!(
                reason.contains("timeout") || reason.contains("no "),
                "reason should describe the silence: {reason}"
            );
        }
        other => panic!("expected WorkerLost, got {other}"),
    }
    assert!(good_result.is_ok(), "good worker: {good_result:?}");
}

//! The fleet's core invariant: a socket-distributed run at any worker
//! count produces a `SimReport` byte-identical to the in-process threaded
//! run — same digests, same halo accounting, same serialized bytes.

use nestwx_fleet::build_model;
use nestwx_fleet::{execute_in_process, FleetConfig, FleetError};
use nestwx_grid::{Domain, NestSpec};
use nestwx_miniwrf::runtime::{run_iterations_observed, ThreadStrategy};
use nestwx_miniwrf::SimReport;
use nestwx_obs::{ObsConfig, Recorder};
use std::time::Duration;

const ITERATIONS: u64 = 5;
const RANKS: u64 = 64;

fn scenario() -> (Domain, Vec<NestSpec>) {
    let parent = Domain::parent(40, 36, 24.0);
    let nests = vec![
        NestSpec::new(24, 24, 3, (3, 3)),
        NestSpec::new(16, 16, 2, (24, 20)),
        NestSpec::new(12, 12, 2, (24, 4)),
        NestSpec::child_of(0, 8, 8, 2, (2, 2)),
    ];
    (parent, nests)
}

fn config(workers: usize) -> FleetConfig {
    FleetConfig {
        workers,
        threads: 1,
        connect_timeout: Duration::from_secs(10),
        frame_timeout: Duration::from_secs(30),
    }
}

/// The reference: the in-process threaded runtime over the same model.
fn reference_report() -> SimReport {
    let (parent, nests) = scenario();
    let mut model = build_model(&parent, &nests);
    let mut rec = Recorder::new(ObsConfig::default());
    run_iterations_observed(
        &mut model,
        ITERATIONS as u32,
        2,
        &ThreadStrategy::Sequential,
        &mut rec,
    );
    SimReport::from_model(&model, RANKS)
}

#[test]
fn fleet_at_1_2_4_workers_matches_in_process_bytewise() {
    let reference = reference_report().to_json();
    let (parent, nests) = scenario();
    for workers in [1usize, 2, 4] {
        let run = execute_in_process(&parent, &nests, ITERATIONS, RANKS, &[], &config(workers))
            .unwrap_or_else(|e| panic!("{workers}-worker fleet failed: {e}"));
        assert_eq!(
            run.report.to_json(),
            reference,
            "{workers}-worker fleet diverged from the in-process run"
        );
        assert_eq!(run.summary.workers, workers as u32);
        assert_eq!(run.summary.digest, run.report.digest);
        assert_eq!(
            run.summary.worker_rows.len(),
            workers,
            "one obs row per worker"
        );
        // Socket traffic really happened and was accounted.
        assert!(run.summary.coordinator.bytes_out > 0);
        assert!(run.summary.coordinator.frames_in >= ITERATIONS);
    }
}

#[test]
fn plan_partitions_change_layout_not_results() {
    let reference = reference_report().to_json();
    let (parent, nests) = scenario();
    // Skew all rank weight onto nest 2: ownership moves, bytes don't lie.
    let partitions = [(0usize, 1u64), (1, 1), (2, 62)];
    let run =
        execute_in_process(&parent, &nests, ITERATIONS, RANKS, &partitions, &config(2)).unwrap();
    assert_eq!(run.report.to_json(), reference);
}

#[test]
fn zero_worker_config_is_rejected_cleanly() {
    let (parent, nests) = scenario();
    let err = execute_in_process(&parent, &nests, 1, RANKS, &[], &config(0)).unwrap_err();
    // No workers can never satisfy the nest ownership map.
    assert!(
        matches!(err, FleetError::Handshake(_) | FleetError::Plan(_)),
        "unexpected error: {err}"
    );
}

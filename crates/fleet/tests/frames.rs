//! Property-based tests of the fleet frame codec: every encoded frame and
//! halo-cell payload decodes back to exactly what went in (f64s as bit
//! patterns), truncation is always "incomplete" rather than an error, and
//! malformed input — oversized lengths, unknown tags, cell-count lies — is
//! rejected with the right typed error instead of desyncing the stream.

use nestwx_fleet::frame::{
    decode_cells, decode_frame, encode_cells, encode_frame, FrameError, Tag, CELLS_PREFIX_BYTES,
    CELL_BYTES, DEFAULT_MAX_FRAME_BYTES, FRAME_HEADER_BYTES,
};
use proptest::prelude::*;

const TAGS: &[Tag] = &[
    Tag::Hello,
    Tag::Assign,
    Tag::Boundary,
    Tag::Feedback,
    Tag::Done,
    Tag::Abort,
    Tag::Error,
];

fn arb_tag() -> impl Strategy<Value = Tag> {
    (0usize..TAGS.len()).prop_map(|i| TAGS[i])
}

/// Cells with adversarial floats: the codec must carry bit patterns, not
/// values, so signed zeros, subnormals and huge magnitudes all appear.
fn arb_field() -> impl Strategy<Value = f64> {
    (any::<bool>(), any::<u8>(), -1.0e300f64..1.0e300).prop_map(|(special, pick, x)| {
        if special {
            match pick % 5 {
                0 => -0.0,
                1 => f64::MIN_POSITIVE,
                2 => f64::MIN_POSITIVE / 8.0,
                3 => 1.0 / 3.0,
                _ => f64::MAX,
            }
        } else {
            x
        }
    })
}

fn arb_cells() -> impl Strategy<Value = Vec<(isize, isize, f64, f64, f64)>> {
    prop::collection::vec(
        (
            -1000isize..1000,
            -1000isize..1000,
            arb_field(),
            arb_field(),
            arb_field(),
        ),
        0..40,
    )
}

proptest! {
    #[test]
    fn frame_round_trips(tag in arb_tag(), payload in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut buf = Vec::new();
        encode_frame(tag, &payload, &mut buf);
        let (t, p, used) = decode_frame(&buf, DEFAULT_MAX_FRAME_BYTES).unwrap().unwrap();
        prop_assert_eq!(t, tag);
        prop_assert_eq!(p, &payload[..]);
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(used, FRAME_HEADER_BYTES + 1 + payload.len());
    }

    #[test]
    fn truncation_is_incomplete_never_error(
        tag in arb_tag(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        encode_frame(tag, &payload, &mut buf);
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < buf.len());
        prop_assert_eq!(decode_frame(&buf[..cut], DEFAULT_MAX_FRAME_BYTES).unwrap(), None);
    }

    #[test]
    fn back_to_back_frames_decode_in_order(
        frames in prop::collection::vec(
            (arb_tag(), prop::collection::vec(any::<u8>(), 0..64)), 1..8),
    ) {
        let mut buf = Vec::new();
        for (tag, payload) in &frames {
            encode_frame(*tag, payload, &mut buf);
        }
        let mut at = 0;
        for (tag, payload) in &frames {
            let (t, p, used) = decode_frame(&buf[at..], DEFAULT_MAX_FRAME_BYTES).unwrap().unwrap();
            prop_assert_eq!(t, *tag);
            prop_assert_eq!(p, &payload[..]);
            at += used;
        }
        prop_assert_eq!(at, buf.len());
    }

    #[test]
    fn oversized_length_prefix_rejected(excess in 1u32..1000) {
        let len = DEFAULT_MAX_FRAME_BYTES as u32 + excess;
        let buf = len.to_le_bytes();
        prop_assert!(matches!(
            decode_frame(&buf, DEFAULT_MAX_FRAME_BYTES),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn unknown_tags_rejected(raw in 8u8..=255) {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(raw);
        prop_assert_eq!(
            decode_frame(&buf, DEFAULT_MAX_FRAME_BYTES),
            Err(FrameError::UnknownTag(raw))
        );
    }

    #[test]
    fn cells_round_trip_bitwise(nest in 0u32..64, iteration in 0u64..10_000, cells in arb_cells()) {
        let payload = encode_cells(nest, iteration, &cells);
        prop_assert_eq!(payload.len(), CELLS_PREFIX_BYTES + cells.len() * CELL_BYTES);
        let (n, it, back) = decode_cells(&payload).unwrap();
        prop_assert_eq!((n, it), (nest, iteration));
        prop_assert_eq!(back.len(), cells.len());
        for (a, b) in cells.iter().zip(&back) {
            prop_assert_eq!((a.0, a.1), (b.0, b.1));
            prop_assert_eq!(a.2.to_bits(), b.2.to_bits());
            prop_assert_eq!(a.3.to_bits(), b.3.to_bits());
            prop_assert_eq!(a.4.to_bits(), b.4.to_bits());
        }
    }

    #[test]
    fn cell_payload_length_lies_rejected(cells in arb_cells(), delta in 1usize..CELL_BYTES) {
        let payload = encode_cells(1, 1, &cells);
        // Longer than declared.
        let mut long = payload.clone();
        long.extend(std::iter::repeat_n(0u8, delta));
        prop_assert!(matches!(decode_cells(&long), Err(FrameError::Malformed(_))));
        // Shorter than declared (when there is a body to shorten).
        if !cells.is_empty() {
            let short = &payload[..payload.len() - delta];
            prop_assert!(matches!(decode_cells(short), Err(FrameError::Malformed(_))));
        }
    }
}

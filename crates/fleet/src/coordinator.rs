//! The fleet coordinator: owns the parent domain, partitions the nests
//! across workers, and merges their reports.
//!
//! The coordinator is the only participant that steps the parent. It
//! drives [`drive_parent`] against a [`SocketHost`] that routes each
//! nest's halo traffic to the worker owning it; feedbacks are applied in
//! sibling order regardless of arrival order, so the merged run is
//! bitwise identical to the in-process one (the invariant the
//! determinism tests pin at 1/2/4 workers).
//!
//! Failure discipline: any transport error mid-run aborts the whole
//! fleet — every surviving worker is sent `Abort` and drained — and the
//! run returns a typed [`FleetError::WorkerLost`]. A partial run never
//! yields a `SimReport`.

use crate::error::FleetError;
use crate::frame::{decode_cells, encode_cells, HaloCell, Tag};
use crate::net::{accept_n, bind_listener, connect, FrameConn};
use crate::scenario::{build_model, nest_weights, partition_nests};
use crate::summary::{FleetSummary, WorkerRow};
use crate::wire::{to_payload, Assign, Done, Hello, SideObs, FLEET_WIRE_VERSION};
use crate::worker::run_worker;
use nestwx_grid::{Domain, NestSpec};
use nestwx_miniwrf::nest::{BoundaryData, FeedbackData};
use nestwx_miniwrf::{drive_parent, solver_digest, NestReport, SimReport, TransportError};
use nestwx_obs::{clock, LogHistogram};
use std::collections::BTreeMap;
use std::time::Duration;

/// Fleet sizing and deadline knobs, all overridable from the environment.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Worker processes (`NESTWX_FLEET_WORKERS`, default 2).
    pub workers: usize,
    /// Threads for the coordinator's parent step (1 keeps the parent step
    /// identical to `run_iterations`'s serial reference; `step_parallel`
    /// is bitwise-stable for any value).
    pub threads: usize,
    /// How long workers get to connect + greet
    /// (`NESTWX_FLEET_CONNECT_TIMEOUT_MS`, default 10 s).
    pub connect_timeout: Duration,
    /// Per-frame silence budget mid-run
    /// (`NESTWX_FLEET_FRAME_TIMEOUT_MS`, default 30 s).
    pub frame_timeout: Duration,
}

impl FleetConfig {
    /// Reads the `NESTWX_FLEET_*` knobs.
    pub fn from_env() -> FleetConfig {
        FleetConfig {
            workers: nestwx_core::env_usize("NESTWX_FLEET_WORKERS", 2),
            threads: 1,
            connect_timeout: Duration::from_millis(nestwx_core::env_usize(
                "NESTWX_FLEET_CONNECT_TIMEOUT_MS",
                10_000,
            ) as u64),
            frame_timeout: Duration::from_millis(nestwx_core::env_usize(
                "NESTWX_FLEET_FRAME_TIMEOUT_MS",
                30_000,
            ) as u64),
        }
    }
}

type Cells = Vec<HaloCell>;

/// Halo transport over framed sockets, coordinator side: routes each
/// nest's traffic to its owning worker's connection and buffers
/// out-of-order feedback keyed `(iteration, nest)`.
pub struct SocketHost {
    conns: Vec<FrameConn>,
    /// Global level-1 nest index → owning slot.
    owner: Vec<usize>,
    pending: BTreeMap<(u64, usize), Cells>,
    /// `Done` frames that arrive while still waiting on feedbacks.
    done: Vec<Option<Done>>,
    frame_timeout: Duration,
    recv_wait: LogHistogram,
    wait_s: f64,
    /// Slot whose connection produced the last transport error.
    last_error_slot: Option<usize>,
}

impl SocketHost {
    /// Builds a host over handshaken connections and the nest→slot map.
    pub fn new(conns: Vec<FrameConn>, owner: Vec<usize>, frame_timeout: Duration) -> SocketHost {
        let slots = conns.len();
        SocketHost {
            conns,
            owner,
            pending: BTreeMap::new(),
            done: vec![None; slots],
            frame_timeout,
            recv_wait: LogHistogram::new(),
            wait_s: 0.0,
            last_error_slot: None,
        }
    }

    /// The slot that caused the most recent transport error, if known.
    pub fn last_error_slot(&self) -> Option<usize> {
        self.last_error_slot
    }

    /// Dispatches one received frame from `slot`.
    fn take_frame(
        &mut self,
        slot: usize,
        tag: Tag,
        payload: Vec<u8>,
    ) -> Result<(), TransportError> {
        match tag {
            Tag::Feedback => {
                let (nest, iter, cells) =
                    decode_cells(&payload).map_err(|e| TransportError::Protocol(e.to_string()))?;
                self.pending.insert((iter, nest as usize), cells);
                Ok(())
            }
            Tag::Done => {
                let done =
                    Done::decode(&payload).map_err(|e| TransportError::Protocol(e.to_string()))?;
                self.done[slot] = Some(done);
                Ok(())
            }
            Tag::Error => Err(TransportError::Protocol(format!(
                "worker {slot} error: {}",
                String::from_utf8_lossy(&payload)
            ))),
            other => Err(TransportError::Protocol(format!(
                "worker {slot}: unexpected {other:?} frame mid-run"
            ))),
        }
    }

    /// Pumps every connection once, dispatching complete frames. Returns
    /// whether anything progressed.
    fn pump_all(&mut self) -> Result<bool, TransportError> {
        let mut progressed = false;
        for slot in 0..self.conns.len() {
            let pumped = self.conns[slot].pump().inspect_err(|_| {
                self.last_error_slot = Some(slot);
            })?;
            progressed |= pumped;
            loop {
                let frame = self.conns[slot].next_frame().inspect_err(|_| {
                    self.last_error_slot = Some(slot);
                })?;
                match frame {
                    Some((tag, payload)) => {
                        self.take_frame(slot, tag, payload).inspect_err(|_| {
                            self.last_error_slot = Some(slot);
                        })?;
                        progressed = true;
                    }
                    None => break,
                }
            }
        }
        Ok(progressed)
    }

    /// Pumps all connections until `check` finds what the caller waits for.
    fn wait_until<T>(
        &mut self,
        blamed_slot: usize,
        what: &str,
        mut check: impl FnMut(&mut SocketHost) -> Option<T>,
    ) -> Result<T, TransportError> {
        let start = clock::now();
        let deadline = start + self.frame_timeout;
        loop {
            if let Some(found) = check(self) {
                let waited = clock::since(start);
                self.recv_wait.record_duration(waited);
                self.wait_s += waited.as_secs_f64();
                return Ok(found);
            }
            let progressed = self.pump_all()?;
            if let Some(found) = check(self) {
                let waited = clock::since(start);
                self.recv_wait.record_duration(waited);
                self.wait_s += waited.as_secs_f64();
                return Ok(found);
            }
            // Every decodable frame is dispatched after a pump, so an
            // EOF'd source connection can never produce what we wait for.
            if self.conns[blamed_slot].is_eof() {
                self.last_error_slot = Some(blamed_slot);
                return Err(TransportError::Closed(format!(
                    "worker {blamed_slot} disconnected before sending its {what}"
                )));
            }
            if clock::expired(deadline) {
                self.last_error_slot = Some(blamed_slot);
                return Err(TransportError::Timeout(format!(
                    "no {what} from worker {blamed_slot} within {:?}",
                    self.frame_timeout
                )));
            }
            if !progressed {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }

    /// Waits for `slot`'s `Done`, pumping all connections meanwhile.
    pub fn wait_done(&mut self, slot: usize) -> Result<Done, TransportError> {
        self.wait_until(slot, "completion report", |host| host.done[slot].take())
    }

    /// Sends `Abort` to every worker and drains best-effort — called on
    /// the failure path so surviving workers exit instead of hanging on a
    /// boundary that will never come.
    pub fn abort_all(&mut self) {
        let deadline = clock::deadline_after(Duration::from_millis(500));
        for conn in &mut self.conns {
            conn.queue(Tag::Abort, b"");
            let _ = conn.flush_fully(deadline);
        }
    }

    /// Consumes the host, returning its connections and wait attribution.
    fn into_parts(self) -> (Vec<FrameConn>, LogHistogram, f64) {
        (self.conns, self.recv_wait, self.wait_s)
    }
}

impl nestwx_miniwrf::HaloHost for SocketHost {
    fn send_boundary(
        &mut self,
        nest: usize,
        iteration: u64,
        bc: &BoundaryData,
    ) -> Result<(), TransportError> {
        let slot = self.owner[nest];
        let payload = encode_cells(nest as u32, iteration, bc.cells());
        self.conns[slot].queue(Tag::Boundary, &payload);
        self.conns[slot].flush().inspect_err(|_| {
            self.last_error_slot = Some(slot);
        })?;
        Ok(())
    }

    fn recv_feedback(
        &mut self,
        nest: usize,
        iteration: u64,
    ) -> Result<FeedbackData, TransportError> {
        let slot = self.owner[nest];
        let key = (iteration, nest);
        self.wait_until(slot, "feedback", move |host| host.pending.remove(&key))
            .map(FeedbackData::from_cells)
    }
}

/// The merged result of a fleet run: the deterministic report plus the
/// observability envelope.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Deterministic simulation report — bitwise identical across fleet
    /// sizes and to the in-process run.
    pub report: SimReport,
    /// Wall-clock observability (socket traffic, stall attribution).
    pub summary: FleetSummary,
}

/// Runs the whole coordinator protocol over already-accepted connections:
/// handshake, assign, drive the parent, gather `Done`s, merge the report.
///
/// `ranks` is the scenario's rank count, recorded in the report;
/// `partitions` are `(domain, ranks)` pairs from a compiled plan (empty
/// falls back to fine-cell work weights).
pub fn run_coordinator(
    parent: &Domain,
    nests: &[NestSpec],
    iterations: u64,
    ranks: u64,
    partitions: &[(usize, u64)],
    mut conns: Vec<FrameConn>,
    config: &FleetConfig,
) -> Result<FleetRun, FleetError> {
    if conns.is_empty() {
        return Err(FleetError::Plan("a fleet needs at least one worker".into()));
    }
    let started = clock::now();
    let workers = conns.len() as u32;
    // Handshake: every worker greets with the wire version before any
    // binary traffic flows.
    for (slot, conn) in conns.iter_mut().enumerate() {
        let deadline = clock::deadline_after(config.connect_timeout);
        let (tag, payload) = conn
            .wait_frame(deadline)
            .map_err(|e| FleetError::Handshake(format!("worker {slot}: {e}")))?;
        if tag != Tag::Hello {
            return Err(FleetError::Handshake(format!(
                "worker {slot}: expected Hello, got {tag:?}"
            )));
        }
        let hello = Hello::decode(&payload)
            .map_err(|e| FleetError::Handshake(format!("worker {slot}: {e}")))?;
        if hello.version != FLEET_WIRE_VERSION {
            conn.queue(
                Tag::Error,
                format!("version mismatch: want {FLEET_WIRE_VERSION}").as_bytes(),
            );
            let _ = conn.flush_fully(clock::deadline_after(Duration::from_millis(500)));
            return Err(FleetError::Handshake(format!(
                "worker {slot} speaks wire version {} (want {FLEET_WIRE_VERSION})",
                hello.version
            )));
        }
    }

    let mut model = build_model(parent, nests);
    let weights = nest_weights(nests, partitions);
    let groups = partition_nests(&weights, conns.len());
    let mut owner = vec![0usize; model.nests.len()];
    for (slot, group) in groups.iter().enumerate() {
        for &nest in group {
            owner[nest] = slot;
        }
    }
    for (slot, conn) in conns.iter_mut().enumerate() {
        let assign = Assign {
            parent: parent.clone(),
            nests: nests.to_vec(),
            iterations,
            slot: slot as u32,
            owned: groups[slot].iter().map(|&n| n as u32).collect(),
            workers,
        };
        conn.queue(Tag::Assign, &to_payload(&assign));
        conn.flush_fully(clock::deadline_after(config.connect_timeout))
            .map_err(|e| FleetError::Handshake(format!("worker {slot}: {e}")))?;
    }

    let mut host = SocketHost::new(conns, owner, config.frame_timeout);
    if let Err(e) = drive_parent(&mut model, iterations, config.threads, &mut host) {
        let slot = host.last_error_slot().unwrap_or(0);
        host.abort_all();
        return Err(FleetError::lost(slot, &e));
    }

    // Gather every worker's Done (some may already be buffered).
    let mut rows: Vec<WorkerRow> = Vec::with_capacity(groups.len());
    let mut nest_reports: Vec<NestReport> = Vec::with_capacity(model.nests.len());
    for (slot, group) in groups.iter().enumerate() {
        let done = match host.wait_done(slot) {
            Ok(done) => done,
            Err(e) => {
                let blamed = host.last_error_slot().unwrap_or(slot);
                host.abort_all();
                return Err(FleetError::lost(blamed, &e));
            }
        };
        if done.slot as usize != slot
            || !done.nests.iter().map(|n| n.nest).eq(group.iter().copied())
        {
            host.abort_all();
            return Err(FleetError::lost(
                slot,
                &TransportError::Protocol(format!(
                    "worker {slot} reported nests {:?}, expected {group:?}",
                    done.nests.iter().map(|n| n.nest).collect::<Vec<_>>(),
                )),
            ));
        }
        nest_reports.extend(done.nests.iter().cloned());
        rows.push(WorkerRow {
            slot: slot as u32,
            nests: group.iter().map(|&n| n as u32).collect(),
            obs: done.obs,
        });
    }
    nest_reports.sort_by_key(|n| n.nest);

    let report = SimReport::assemble(
        iterations,
        ranks,
        solver_digest(&model.parent),
        nest_reports,
    );
    let elapsed_s = clock::since(started).as_secs_f64();
    let (conns, recv_wait, wait_s) = host.into_parts();
    let coordinator = SideObs {
        bytes_in: conns.iter().map(|c| c.bytes_in).sum(),
        bytes_out: conns.iter().map(|c| c.bytes_out).sum(),
        frames_in: conns.iter().map(|c| c.frames_in).sum(),
        frames_out: conns.iter().map(|c| c.frames_out).sum(),
        recv_wait: recv_wait.summary().into(),
        compute_s: (elapsed_s - wait_s).max(0.0),
        wait_s,
    };
    let summary = FleetSummary::new(&report, workers, coordinator, rows, elapsed_s);
    Ok(FleetRun { report, summary })
}

/// Runs a complete fleet inside one process: binds a loopback listener,
/// spawns `config.workers` worker threads that connect and speak the full
/// socket protocol, and coordinates them. This is what the serve `execute`
/// endpoint calls, and what the determinism tests compare against worker
/// processes — the wire path is identical either way.
pub fn execute_in_process(
    parent: &Domain,
    nests: &[NestSpec],
    iterations: u64,
    ranks: u64,
    partitions: &[(usize, u64)],
    config: &FleetConfig,
) -> Result<FleetRun, FleetError> {
    let (listener, addr) =
        bind_listener("127.0.0.1:0").map_err(|e| FleetError::Io(e.to_string()))?;
    let mut joins = Vec::with_capacity(config.workers);
    for _ in 0..config.workers {
        let addr = addr.clone();
        let connect_timeout = config.connect_timeout;
        let frame_timeout = config.frame_timeout;
        joins.push(std::thread::spawn(move || -> Result<(), FleetError> {
            let mut conn = connect(&addr, clock::deadline_after(connect_timeout))
                .map_err(|e| FleetError::Io(e.to_string()))?;
            run_worker(&mut conn, frame_timeout)
        }));
    }
    let accepted = accept_n(
        &listener,
        config.workers,
        clock::deadline_after(config.connect_timeout),
    )
    .map_err(|e| FleetError::Handshake(e.to_string()));
    let result = accepted.and_then(|conns| {
        run_coordinator(parent, nests, iterations, ranks, partitions, conns, config)
    });
    for join in joins {
        // Worker failures matter only if the coordinator also failed — on
        // the success path every worker already sent a valid Done.
        let _ = join.join();
    }
    result
}

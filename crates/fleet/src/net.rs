//! The fleet's socket layer: nonblocking length-prefixed frame I/O.
//!
//! This is the **designated transport module** of the fleet data path —
//! the only fleet file allowed to touch sockets (lint rule NW-S007
//! enforces this). The connection state machine follows the serve
//! `conn.rs` idioms: a nonblocking stream drained into a growable input
//! buffer, an outbox with a partial-write offset (`sent`) compacted once
//! the consumed prefix grows large, and `WouldBlock`/`Interrupted`
//! handled as "no progress" rather than errors. Framing is binary
//! (length-prefixed, see [`crate::frame`]) instead of serve's
//! newline-JSON, so the machinery is reimplemented here rather than
//! imported — `nestwx-serve` depends on this crate, not the reverse.
//!
//! Waiting is a poll loop ([`FrameConn::wait_frame`]): pump every readable
//! byte, sleep briefly when nothing progressed, give up at the deadline.
//! All deadline checks go through the `nestwx_obs::clock` shim.

use crate::frame::{decode_frame, encode_frame, max_frame_bytes, Tag};
use nestwx_miniwrf::TransportError;
use nestwx_obs::clock;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Compact the outbox once this many sent bytes accumulate at its front.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// Sleep between poll rounds when a pump made no progress. Short enough
/// that halo latency stays dominated by the solver, long enough not to
/// spin a core while the peer computes.
const POLL_SLEEP: Duration = Duration::from_micros(200);

/// One nonblocking framed connection with transfer counters.
#[derive(Debug)]
pub struct FrameConn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    consumed: usize,
    outbuf: Vec<u8>,
    sent: usize,
    max_frame: usize,
    eof: bool,
    /// Peer address, for error messages.
    pub peer: String,
    /// Wire bytes received.
    pub bytes_in: u64,
    /// Wire bytes sent.
    pub bytes_out: u64,
    /// Frames decoded.
    pub frames_in: u64,
    /// Frames queued.
    pub frames_out: u64,
}

impl FrameConn {
    /// Wraps a connected stream: switches it to nonblocking and disables
    /// Nagle (halo frames are latency-critical and already batched).
    pub fn new(stream: TcpStream) -> Result<FrameConn, TransportError> {
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_string());
        stream
            .set_nonblocking(true)
            .map_err(|e| TransportError::Closed(format!("set_nonblocking: {e}")))?;
        let _ = stream.set_nodelay(true);
        Ok(FrameConn {
            stream,
            inbuf: Vec::new(),
            consumed: 0,
            outbuf: Vec::new(),
            sent: 0,
            max_frame: max_frame_bytes(),
            eof: false,
            peer,
            bytes_in: 0,
            bytes_out: 0,
            frames_in: 0,
            frames_out: 0,
        })
    }

    /// Queues one frame for sending (no I/O; call [`FrameConn::flush`]).
    pub fn queue(&mut self, tag: Tag, payload: &[u8]) {
        encode_frame(tag, payload, &mut self.outbuf);
        self.frames_out += 1;
    }

    /// Writes as much queued output as the socket accepts right now.
    /// Returns `true` once the outbox is fully flushed.
    pub fn flush(&mut self) -> Result<bool, TransportError> {
        while self.sent < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.sent..]) {
                Ok(0) => {
                    return Err(TransportError::Closed(format!(
                        "{}: write returned 0",
                        self.peer
                    )))
                }
                Ok(n) => {
                    self.sent += n;
                    self.bytes_out += n as u64;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(TransportError::Closed(format!("{}: write: {e}", self.peer))),
            }
        }
        if self.sent == self.outbuf.len() {
            self.outbuf.clear();
            self.sent = 0;
        } else if self.sent >= COMPACT_THRESHOLD {
            self.outbuf.drain(..self.sent);
            self.sent = 0;
        }
        Ok(self.sent == self.outbuf.len() || self.outbuf.is_empty())
    }

    /// Whether the peer has closed its sending side. Frames already
    /// buffered stay decodable; only *waiting* on an EOF'd connection with
    /// nothing decodable left is an error.
    pub fn is_eof(&self) -> bool {
        self.eof
    }

    /// Reads every currently-available byte into the input buffer.
    /// Returns `true` when new bytes arrived. EOF is recorded, not raised:
    /// a peer may legitimately close right after its final frame, and that
    /// frame must still decode.
    pub fn fill(&mut self) -> Result<bool, TransportError> {
        if self.eof {
            return Ok(false);
        }
        let mut progressed = false;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    self.bytes_in += n as u64;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(TransportError::Closed(format!("{}: read: {e}", self.peer))),
            }
        }
        Ok(progressed)
    }

    /// Decodes the next buffered frame, if a complete one is available.
    pub fn next_frame(&mut self) -> Result<Option<(Tag, Vec<u8>)>, TransportError> {
        match decode_frame(&self.inbuf[self.consumed..], self.max_frame) {
            Ok(None) => {
                // Compact the consumed prefix while idle so a long run's
                // buffer doesn't grow monotonically.
                if self.consumed >= COMPACT_THRESHOLD {
                    self.inbuf.drain(..self.consumed);
                    self.consumed = 0;
                }
                Ok(None)
            }
            Ok(Some((tag, payload, used))) => {
                let owned = payload.to_vec();
                self.consumed += used;
                self.frames_in += 1;
                Ok(Some((tag, owned)))
            }
            Err(e) => Err(TransportError::Protocol(format!("{}: {e}", self.peer))),
        }
    }

    /// One nonblocking duty cycle: flush pending output, read pending
    /// input. Returns `true` when either direction progressed.
    pub fn pump(&mut self) -> Result<bool, TransportError> {
        let had_out = !self.outbuf.is_empty();
        self.flush()?;
        let wrote = had_out && self.outbuf.is_empty();
        let read = self.fill()?;
        Ok(wrote || read)
    }

    /// Pumps until a complete frame arrives or `deadline` passes.
    pub fn wait_frame(&mut self, deadline: Instant) -> Result<(Tag, Vec<u8>), TransportError> {
        loop {
            if let Some(frame) = self.next_frame()? {
                return Ok(frame);
            }
            let progressed = self.pump()?;
            if let Some(frame) = self.next_frame()? {
                return Ok(frame);
            }
            if self.eof {
                return Err(TransportError::Closed(format!(
                    "{}: peer disconnected",
                    self.peer
                )));
            }
            if clock::expired(deadline) {
                return Err(TransportError::Timeout(format!(
                    "{}: no frame before deadline",
                    self.peer
                )));
            }
            if !progressed {
                std::thread::sleep(POLL_SLEEP);
            }
        }
    }

    /// Pumps until the outbox is empty or `deadline` passes — used to push
    /// out `Done`/`Abort` before closing.
    pub fn flush_fully(&mut self, deadline: Instant) -> Result<(), TransportError> {
        loop {
            if self.flush()? {
                return Ok(());
            }
            if clock::expired(deadline) {
                return Err(TransportError::Timeout(format!(
                    "{}: outbox not drained before deadline",
                    self.peer
                )));
            }
            std::thread::sleep(POLL_SLEEP);
        }
    }
}

/// Binds the coordinator's listener (nonblocking, for deadline-bounded
/// accepts) and returns it with the bound address.
pub fn bind_listener(addr: &str) -> Result<(TcpListener, String), TransportError> {
    let listener =
        TcpListener::bind(addr).map_err(|e| TransportError::Closed(format!("bind {addr}: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| TransportError::Closed(format!("listener nonblocking: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| TransportError::Closed(format!("local_addr: {e}")))?;
    Ok((listener, local.to_string()))
}

/// Accepts up to `n` connections before `deadline`.
pub fn accept_n(
    listener: &TcpListener,
    n: usize,
    deadline: Instant,
) -> Result<Vec<FrameConn>, TransportError> {
    let mut conns = Vec::with_capacity(n);
    while conns.len() < n {
        match listener.accept() {
            Ok((stream, _)) => conns.push(FrameConn::new(stream)?),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if clock::expired(deadline) {
                    return Err(TransportError::Timeout(format!(
                        "only {}/{n} workers connected before deadline",
                        conns.len()
                    )));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(TransportError::Closed(format!("accept: {e}"))),
        }
    }
    Ok(conns)
}

/// Connects a worker to the coordinator, retrying until `deadline` (the
/// coordinator may still be binding when a spawned worker starts).
pub fn connect(addr: &str, deadline: Instant) -> Result<FrameConn, TransportError> {
    let sockaddr = addr
        .to_socket_addrs()
        .map_err(|e| TransportError::Closed(format!("resolve {addr}: {e}")))?
        .next()
        .ok_or_else(|| TransportError::Closed(format!("resolve {addr}: no address")))?;
    loop {
        match TcpStream::connect_timeout(&sockaddr, Duration::from_millis(250)) {
            Ok(stream) => return FrameConn::new(stream),
            Err(e) => {
                if clock::expired(deadline) {
                    return Err(TransportError::Timeout(format!("connect {addr}: {e}")));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

//! Multi-process miniwrf execution: worker processes own disjoint subsets
//! of a scenario's nests and exchange halos with a coordinator over TCP.
//!
//! The fleet is the paper's multi-rank execution made literal: instead of
//! simulating ranks inside one process, `nestwx fleet` spawns real worker
//! processes, partitions the level-1 nests across them
//! rank-proportionally (see [`scenario::partition_nests`]), and runs the
//! coupled parent↔nest iteration with boundary rings and feedback cells
//! crossing process boundaries as length-prefixed binary frames
//! ([`frame`]). Because every f64 crosses as its exact bit pattern and
//! feedbacks apply in sibling order, a fleet run of any size produces a
//! [`SimReport`](nestwx_miniwrf::SimReport) byte-identical to the
//! in-process run — the invariant CI's `fleet-smoke` job and the
//! determinism tests enforce.
//!
//! Layering: the coupled-loop halves ([`nestwx_miniwrf::drive_parent`] /
//! [`nestwx_miniwrf::drive_nests`]) live in miniwrf behind transport
//! traits; this crate supplies the socket transport ([`net`] is the only
//! module allowed to touch sockets — lint rule NW-S007), the wire types
//! ([`wire`]), the partitioning ([`scenario`]), and the two protocol
//! drivers ([`coordinator`], [`worker`]). `nestwx-serve` builds its
//! `execute` endpoint on [`execute_in_process`]; the `nestwx fleet` CLI
//! spawns real worker processes around [`run_coordinator`] and
//! [`run_worker`].

#![warn(missing_docs)]

pub mod coordinator;
pub mod error;
pub mod frame;
pub mod net;
pub mod scenario;
pub mod summary;
pub mod wire;
pub mod worker;

pub use coordinator::{execute_in_process, run_coordinator, FleetConfig, FleetRun, SocketHost};
pub use error::FleetError;
pub use frame::{FrameError, Tag, DEFAULT_MAX_FRAME_BYTES};
pub use net::{accept_n, bind_listener, connect, FrameConn};
pub use scenario::{build_model, nest_weights, partition_nests};
pub use summary::{FleetSummary, WorkerRow};
pub use wire::{Assign, Done, Hello, SideObs, WaitStats, FLEET_WIRE_VERSION};
pub use worker::{run_worker, SocketLink};

//! Typed fleet failures.

use nestwx_miniwrf::TransportError;
use std::fmt;

/// A fleet run failure. The coordinator never returns a partial
/// `SimReport`: any of these means the run produced *no* report, and
/// `WorkerLost` in particular is raised only after every surviving worker
/// has been sent `Abort` and drained — the no-hang guarantee the
/// robustness tests pin down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// A worker disconnected, timed out, or sent garbage mid-run.
    WorkerLost {
        /// The lost worker's slot.
        slot: usize,
        /// What happened (transport detail).
        reason: String,
    },
    /// The handshake failed (version mismatch, bad greeting, or not enough
    /// workers connected before the deadline).
    Handshake(String),
    /// The scenario could not be planned or modeled.
    Plan(String),
    /// Listener/socket setup failed.
    Io(String),
}

impl FleetError {
    /// The stable error-kind token (`worker_lost` …) clients match on.
    pub fn kind(&self) -> &'static str {
        match self {
            FleetError::WorkerLost { .. } => "worker_lost",
            FleetError::Handshake(_) => "handshake",
            FleetError::Plan(_) => "plan",
            FleetError::Io(_) => "io",
        }
    }

    /// Wraps a transport failure on `slot`'s connection.
    pub fn lost(slot: usize, err: &TransportError) -> FleetError {
        FleetError::WorkerLost {
            slot,
            reason: err.to_string(),
        }
    }
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::WorkerLost { slot, reason } => {
                write!(f, "worker_lost: slot {slot}: {reason}")
            }
            FleetError::Handshake(d) => write!(f, "handshake: {d}"),
            FleetError::Plan(d) => write!(f, "plan: {d}"),
            FleetError::Io(d) => write!(f, "io: {d}"),
        }
    }
}

impl std::error::Error for FleetError {}

//! The fleet observability envelope (`nestwx-obs-fleet-summary`).
//!
//! Wall-clock truth lives here and only here: the deterministic
//! [`SimReport`] carries digests and logical
//! halo accounting, while this envelope carries the measured socket
//! traffic, per-worker stall attribution, and end-to-end timing that
//! `nestwx obs report` renders.

use crate::wire::SideObs;
use nestwx_miniwrf::SimReport;
use nestwx_obs::{FLEET_SCHEMA, FLEET_VERSION};
use serde::Serialize;

/// One worker's row in the fleet envelope.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkerRow {
    /// Worker slot (0-based).
    pub slot: u32,
    /// Global level-1 nest indices the worker owned.
    pub nests: Vec<u32>,
    /// The worker's transport and stall observability.
    pub obs: SideObs,
}

/// The fleet summary envelope.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetSummary {
    /// Always [`FLEET_SCHEMA`].
    pub schema: String,
    /// Always [`FLEET_VERSION`].
    pub version: u64,
    /// Workers in the fleet.
    pub workers: u32,
    /// Parent iterations run.
    pub iterations: u64,
    /// Combined deterministic digest of the merged [`SimReport`] — equal
    /// across fleet sizes and equal to the in-process run's.
    pub digest: String,
    /// Parent-field digest.
    pub parent_digest: String,
    /// Logical halo bytes from the report (geometry-derived, deterministic).
    pub logical_halo_bytes: u64,
    /// Coordinator-side transport and stall observability.
    pub coordinator: SideObs,
    /// Per-worker rows, ascending by slot.
    pub worker_rows: Vec<WorkerRow>,
    /// End-to-end wall seconds from first Assign to last Done.
    pub elapsed_s: f64,
}

impl FleetSummary {
    /// Builds the envelope from a finished run.
    pub fn new(
        report: &SimReport,
        workers: u32,
        coordinator: SideObs,
        worker_rows: Vec<WorkerRow>,
        elapsed_s: f64,
    ) -> FleetSummary {
        FleetSummary {
            schema: FLEET_SCHEMA.to_owned(),
            version: FLEET_VERSION,
            workers,
            iterations: report.iterations,
            digest: report.digest.clone(),
            parent_digest: report.parent_digest.clone(),
            logical_halo_bytes: report.nests.iter().map(|n| n.halo_bytes).sum(),
            coordinator,
            worker_rows,
            elapsed_s,
        }
    }

    /// Serializes the envelope.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet summary serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WaitStats;

    fn side() -> SideObs {
        SideObs {
            bytes_in: 1,
            bytes_out: 2,
            frames_in: 3,
            frames_out: 4,
            recv_wait: WaitStats {
                count: 0,
                mean: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
            },
            compute_s: 0.5,
            wait_s: 0.1,
        }
    }

    #[test]
    fn envelope_carries_schema_tag_and_digests() {
        let report = SimReport::assemble(4, 8, 0xdead_beef, Vec::new());
        let s = FleetSummary::new(&report, 2, side(), vec![], 1.25);
        let v = serde_json::from_str(&s.to_json()).unwrap();
        assert_eq!(v["schema"].as_str().unwrap(), FLEET_SCHEMA);
        assert_eq!(v["version"].as_u64().unwrap(), FLEET_VERSION);
        assert_eq!(v["digest"].as_str().unwrap(), report.digest);
        assert_eq!(v["iterations"].as_u64().unwrap(), 4);
        assert_eq!(v["coordinator"]["bytes_out"].as_u64().unwrap(), 2);
    }
}

//! Deterministic scenario → model construction and plan-driven nest
//! partitioning.
//!
//! Every fleet participant — coordinator, each worker, and the in-process
//! reference run the determinism tests compare against — builds its model
//! through [`build_model`], so initial state is a pure function of the
//! scenario's parent/nest specs. The construction order is fixed (nests,
//! then depressions, then second-level children) because
//! `NestedModel::add_depression` re-initializes level-1 nests from the
//! parent: reordering would change which state children interpolate from.

use nestwx_grid::{Domain, NestSpec};
use nestwx_miniwrf::nest::NestGeometry;
use nestwx_miniwrf::NestedModel;

/// Quiescent water depth (metres) of every fleet scenario.
pub const MODEL_DEPTH_M: f64 = 100.0;

/// Builds the coupled model for a scenario's domains: one level-1 nest per
/// spec with `parent_nest: None` (in spec order), one deterministic
/// depression centred on each level-1 nest, then the level-2 children.
///
/// Panics if a nest does not fit its parent — callers (coordinator, serve
/// endpoint) validate specs via the planner before building.
pub fn build_model(parent: &Domain, nests: &[NestSpec]) -> NestedModel {
    let level1: Vec<(usize, &NestSpec)> = nests
        .iter()
        .enumerate()
        .filter(|(_, s)| s.parent_nest.is_none())
        .collect();
    let geos: Vec<NestGeometry> = level1.iter().map(|(_, s)| geometry(s)).collect();
    let mut model = NestedModel::new(
        parent.nx as usize,
        parent.ny as usize,
        parent.dx_km * 1000.0,
        MODEL_DEPTH_M,
        &geos,
    );
    // One depression per level-1 nest, centred on its parent footprint —
    // a pure function of the geometry, so every process computes the same
    // initial condition.
    for (ordinal, geo) in geos.iter().enumerate() {
        let (pi0, pj0, pw, ph) = geo.parent_footprint();
        model.add_depression(
            pi0 as f64 + pw as f64 / 2.0,
            pj0 as f64 + ph as f64 / 2.0,
            -4.0 - ordinal as f64,
            2.5 + 0.5 * ordinal as f64,
        );
    }
    // Children last: they initialize from the (already depressed) host
    // nests, in spec order.
    for (_, spec) in nests
        .iter()
        .enumerate()
        .filter(|(_, s)| s.parent_nest.is_some())
    {
        let host_spec = spec.parent_nest.expect("filtered on Some");
        let host_ordinal = level1
            .iter()
            .position(|(i, _)| *i == host_spec)
            .expect("parent_nest refers to a level-1 nest (planner-validated)");
        model.add_child_nest(host_ordinal, geometry(spec));
    }
    model
}

fn geometry(spec: &NestSpec) -> NestGeometry {
    NestGeometry {
        ratio: spec.refine_ratio as usize,
        offset: (spec.offset.0 as usize, spec.offset.1 as usize),
        nx: spec.nx as usize,
        ny: spec.ny as usize,
    }
}

/// Per-level-1-nest rank weights from a compiled plan: each level-1 nest
/// gets its own partition's ranks plus those of its children, so a nest
/// that carries a second-level domain weighs what the plan actually
/// allocated to that subtree. Falls back to fine-cell work (`nx·ny·r`)
/// when the plan has no per-nest partitions (sequential strategy).
pub fn nest_weights(nests: &[NestSpec], partitions: &[(usize, u64)]) -> Vec<u64> {
    let level1: Vec<usize> = (0..nests.len())
        .filter(|&i| nests[i].parent_nest.is_none())
        .collect();
    let owner_of_spec = |spec_idx: usize| -> usize {
        let owner_spec = nests[spec_idx].parent_nest.unwrap_or(spec_idx);
        level1
            .iter()
            .position(|&l| l == owner_spec)
            .expect("parent_nest refers to a level-1 nest")
    };
    let mut weights = vec![0u64; level1.len()];
    for &(domain, ranks) in partitions {
        if domain < nests.len() {
            weights[owner_of_spec(domain)] += ranks;
        }
    }
    for (ordinal, &spec_idx) in level1.iter().enumerate() {
        if weights[ordinal] == 0 {
            weights[ordinal] = nests
                .iter()
                .enumerate()
                .filter(|(i, s)| *i == spec_idx || s.parent_nest == Some(spec_idx))
                .map(|(_, s)| s.nx as u64 * s.ny as u64 * s.refine_ratio as u64)
                .sum();
        }
    }
    weights
}

/// Splits nests `0..weights.len()` into `workers` contiguous groups with
/// balanced weight sums: nest `i` lands in the group its cumulative weight
/// midpoint falls into. Deterministic, order-preserving, and stable under
/// worker count 1 (everything in group 0). Groups may be empty when there
/// are more workers than nests.
pub fn partition_nests(weights: &[u64], workers: usize) -> Vec<Vec<usize>> {
    assert!(workers > 0, "at least one worker");
    let total: u64 = weights.iter().sum::<u64>().max(1);
    let mut groups = vec![Vec::new(); workers];
    let mut cum = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        let mid = cum + w / 2;
        let g = ((mid as u128 * workers as u128) / total as u128) as usize;
        groups[g.min(workers - 1)].push(i);
        cum += w;
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_and_complete() {
        let weights = [5u64, 1, 1, 5, 3, 7, 2, 2];
        for workers in 1..=6 {
            let groups = partition_nests(&weights, workers);
            assert_eq!(groups.len(), workers);
            let flat: Vec<usize> = groups.iter().flatten().copied().collect();
            assert_eq!(
                flat,
                (0..weights.len()).collect::<Vec<_>>(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn partition_balances_rank_weight() {
        let weights = [10u64, 10, 10, 10];
        let groups = partition_nests(&weights, 2);
        assert_eq!(groups[0], vec![0, 1]);
        assert_eq!(groups[1], vec![2, 3]);
    }

    #[test]
    fn more_workers_than_nests_leaves_empty_groups() {
        let groups = partition_nests(&[1, 1], 4);
        let owned: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(owned, 2);
        assert_eq!(groups.len(), 4);
    }

    #[test]
    fn weights_fold_children_into_their_host() {
        let nests = vec![
            NestSpec::new(10, 10, 3, (0, 0)),
            NestSpec::new(10, 10, 2, (20, 20)),
            NestSpec::child_of(0, 4, 4, 2, (1, 1)),
        ];
        // Plan-derived: nest 0 gets 5 ranks, its child 3, sibling 4.
        let w = nest_weights(&nests, &[(0, 5), (1, 4), (2, 3)]);
        assert_eq!(w, vec![8, 4]);
        // Fallback: fine-cell work, child folded into host.
        let w = nest_weights(&nests, &[]);
        assert_eq!(w, vec![10 * 10 * 3 + 4 * 4 * 2, 10 * 10 * 2]);
    }

    #[test]
    fn build_model_is_deterministic() {
        let parent = Domain::parent(48, 48, 24.0);
        let nests = vec![
            NestSpec::new(24, 24, 3, (4, 4)),
            NestSpec::new(16, 16, 2, (28, 28)),
            NestSpec::child_of(0, 8, 8, 2, (3, 3)),
        ];
        let a = build_model(&parent, &nests);
        let b = build_model(&parent, &nests);
        assert_eq!(a, b);
        assert_eq!(a.nests.len(), 2, "level-1 nests only");
        assert_eq!(a.nests[0].children.len(), 1);
    }
}

//! Typed fleet control messages (JSON payloads of the non-halo frames).
//!
//! Halo traffic (`Boundary`/`Feedback`) is raw binary — see
//! [`crate::frame`] — because it must be f64-bit-transparent. The control
//! plane (handshake, assignment, completion) is low-rate and benefits from
//! being inspectable, so it rides as compact JSON. That is still exact for
//! the one float that feeds back into model state (`dx_km`): floats are
//! written as their shortest round-trip representation and parsed with
//! correct rounding, so a worker reconstructs bit-identical model geometry
//! from an [`Assign`]. Decoding is manual over the dynamic `Value` — the
//! same idiom as the serve protocol parser.

use crate::frame::FrameError;
use nestwx_grid::{Domain, NestSpec};
use nestwx_miniwrf::NestReport;
use nestwx_obs::HistSummary;
use serde::Serialize;
use serde_json::Value;

/// Version of the fleet wire protocol. A coordinator refuses a worker with
/// a different version: frames are binary, so any layout drift must fail
/// the handshake instead of corrupting a run.
pub const FLEET_WIRE_VERSION: u32 = 1;

/// Worker → coordinator greeting (payload of `Tag::Hello`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Hello {
    /// Must equal [`FLEET_WIRE_VERSION`].
    pub version: u32,
}

/// Coordinator → worker assignment (payload of `Tag::Assign`): everything
/// a worker needs to deterministically rebuild the model and run its share.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Assign {
    /// Parent domain of the scenario.
    pub parent: Domain,
    /// Every nest spec of the scenario (the worker builds the full model so
    /// its owned nests initialize exactly as in-process ones would).
    pub nests: Vec<NestSpec>,
    /// Parent iterations to run.
    pub iterations: u64,
    /// This worker's slot (0-based).
    pub slot: u32,
    /// Global level-1 nest indices this worker owns, ascending.
    pub owned: Vec<u32>,
    /// Total workers in the fleet (for logs and obs only).
    pub workers: u32,
}

/// Percentile summary of a wait-time histogram, as it crosses the wire.
/// Mirrors [`HistSummary`] but can be decoded back (the obs crate's
/// summary is serialize-only).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WaitStats {
    /// Waits recorded.
    pub count: u64,
    /// Mean seconds.
    pub mean: f64,
    /// Median seconds.
    pub p50: f64,
    /// 90th percentile seconds.
    pub p90: f64,
    /// 99th percentile seconds.
    pub p99: f64,
    /// Maximum seconds.
    pub max: f64,
}

impl From<HistSummary> for WaitStats {
    fn from(h: HistSummary) -> WaitStats {
        WaitStats {
            count: h.count,
            mean: h.mean,
            p50: h.p50,
            p90: h.p90,
            p99: h.p99,
            max: h.max,
        }
    }
}

/// One side's transport + stall observability. Wall-clock quantities live
/// here — in the obs envelope, never in the `SimReport` — so they cannot
/// perturb the bitwise-identity contract.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SideObs {
    /// Wire bytes received (frames + headers).
    pub bytes_in: u64,
    /// Wire bytes sent.
    pub bytes_out: u64,
    /// Frames received.
    pub frames_in: u64,
    /// Frames sent.
    pub frames_out: u64,
    /// Halo receive waits (boundary waits on a worker, feedback waits on
    /// the coordinator) — the cross-process stall the fleet makes visible.
    pub recv_wait: WaitStats,
    /// Seconds spent computing (solving nests / stepping the parent).
    pub compute_s: f64,
    /// Seconds spent stalled waiting on the peer — the halo-exchange
    /// attribution `nestwx obs report` renders.
    pub wait_s: f64,
}

/// Worker → coordinator completion (payload of `Tag::Done`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Done {
    /// The worker's slot.
    pub slot: u32,
    /// Deterministic per-nest reports for the worker's owned nests.
    pub nests: Vec<NestReport>,
    /// The worker's transport/stall observability.
    pub obs: SideObs,
}

/// Serializes a control message to its frame payload.
pub fn to_payload<T: Serialize>(msg: &T) -> Vec<u8> {
    serde_json::to_string(msg)
        .expect("control messages serialize")
        .into_bytes()
}

// ---------------------------------------------------------------------------
// Manual decoding (the vendored serde_json parses into a dynamic Value)
// ---------------------------------------------------------------------------

fn bad(what: &str, detail: impl std::fmt::Display) -> FrameError {
    FrameError::Malformed(format!("bad {what} payload: {detail}"))
}

fn parse(payload: &[u8], what: &str) -> Result<Value, FrameError> {
    serde_json::from_slice(payload).map_err(|e| bad(what, format!("{e}")))
}

fn req_u64(v: &Value, key: &str, what: &str) -> Result<u64, FrameError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| bad(what, format!("missing or non-integer '{key}'")))
}

fn req_f64(v: &Value, key: &str, what: &str) -> Result<f64, FrameError> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| bad(what, format!("missing or non-numeric '{key}'")))
}

fn req_str<'v>(v: &'v Value, key: &str, what: &str) -> Result<&'v str, FrameError> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| bad(what, format!("missing or non-string '{key}'")))
}

fn req_array<'v>(v: &'v Value, key: &str, what: &str) -> Result<&'v Vec<Value>, FrameError> {
    v.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| bad(what, format!("missing or non-array '{key}'")))
}

fn req_u32(v: &Value, key: &str, what: &str) -> Result<u32, FrameError> {
    u32::try_from(req_u64(v, key, what)?)
        .map_err(|_| bad(what, format!("'{key}' exceeds u32 range")))
}

impl Hello {
    /// Decodes a `Hello` frame payload.
    pub fn decode(payload: &[u8]) -> Result<Hello, FrameError> {
        let v = parse(payload, "hello")?;
        Ok(Hello {
            version: req_u32(&v, "version", "hello")?,
        })
    }
}

fn decode_nest_spec(v: &Value) -> Result<NestSpec, FrameError> {
    const WHAT: &str = "assign.nests";
    let offset = req_array(v, "offset", WHAT)?;
    let off = |i: usize| -> Result<u32, FrameError> {
        offset
            .get(i)
            .and_then(Value::as_u64)
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| bad(WHAT, "offset is not a pair of integers"))
    };
    let parent_nest = match v.get("parent_nest") {
        None | Some(Value::Null) => None,
        Some(pn) => Some(
            pn.as_u64()
                .map(|n| n as usize)
                .ok_or_else(|| bad(WHAT, "non-integer 'parent_nest'"))?,
        ),
    };
    Ok(NestSpec {
        nx: req_u32(v, "nx", WHAT)?,
        ny: req_u32(v, "ny", WHAT)?,
        refine_ratio: req_u32(v, "refine_ratio", WHAT)?,
        offset: (off(0)?, off(1)?),
        parent_nest,
    })
}

impl Assign {
    /// Decodes an `Assign` frame payload.
    pub fn decode(payload: &[u8]) -> Result<Assign, FrameError> {
        const WHAT: &str = "assign";
        let v = parse(payload, WHAT)?;
        let p = v
            .get("parent")
            .ok_or_else(|| bad(WHAT, "missing 'parent'"))?;
        let parent = Domain {
            nx: req_u32(p, "nx", WHAT)?,
            ny: req_u32(p, "ny", WHAT)?,
            dx_km: req_f64(p, "dx_km", WHAT)?,
        };
        let nests = req_array(&v, "nests", WHAT)?
            .iter()
            .map(decode_nest_spec)
            .collect::<Result<Vec<_>, _>>()?;
        let owned = req_array(&v, "owned", WHAT)?
            .iter()
            .map(|o| {
                o.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| bad(WHAT, "non-integer entry in 'owned'"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Assign {
            parent,
            nests,
            iterations: req_u64(&v, "iterations", WHAT)?,
            slot: req_u32(&v, "slot", WHAT)?,
            owned,
            workers: req_u32(&v, "workers", WHAT)?,
        })
    }
}

fn decode_wait_stats(v: &Value, what: &str) -> Result<WaitStats, FrameError> {
    Ok(WaitStats {
        count: req_u64(v, "count", what)?,
        mean: req_f64(v, "mean", what)?,
        p50: req_f64(v, "p50", what)?,
        p90: req_f64(v, "p90", what)?,
        p99: req_f64(v, "p99", what)?,
        max: req_f64(v, "max", what)?,
    })
}

fn decode_side_obs(v: &Value, what: &str) -> Result<SideObs, FrameError> {
    let rw = v
        .get("recv_wait")
        .ok_or_else(|| bad(what, "missing 'recv_wait'"))?;
    Ok(SideObs {
        bytes_in: req_u64(v, "bytes_in", what)?,
        bytes_out: req_u64(v, "bytes_out", what)?,
        frames_in: req_u64(v, "frames_in", what)?,
        frames_out: req_u64(v, "frames_out", what)?,
        recv_wait: decode_wait_stats(rw, what)?,
        compute_s: req_f64(v, "compute_s", what)?,
        wait_s: req_f64(v, "wait_s", what)?,
    })
}

fn decode_nest_report(v: &Value) -> Result<NestReport, FrameError> {
    const WHAT: &str = "done.nests";
    let children = req_array(v, "children", WHAT)?
        .iter()
        .map(|c| {
            c.as_str()
                .map(str::to_owned)
                .ok_or_else(|| bad(WHAT, "non-string child digest"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(NestReport {
        nest: req_u64(v, "nest", WHAT)? as usize,
        ratio: req_u64(v, "ratio", WHAT)? as usize,
        sub_steps: req_u64(v, "sub_steps", WHAT)?,
        boundary_cells: req_u64(v, "boundary_cells", WHAT)?,
        halo_bytes: req_u64(v, "halo_bytes", WHAT)?,
        halo_messages: req_u64(v, "halo_messages", WHAT)?,
        digest: req_str(v, "digest", WHAT)?.to_owned(),
        children,
    })
}

impl Done {
    /// Decodes a `Done` frame payload.
    pub fn decode(payload: &[u8]) -> Result<Done, FrameError> {
        const WHAT: &str = "done";
        let v = parse(payload, WHAT)?;
        let nests = req_array(&v, "nests", WHAT)?
            .iter()
            .map(decode_nest_report)
            .collect::<Result<Vec<_>, _>>()?;
        let obs = v.get("obs").ok_or_else(|| bad(WHAT, "missing 'obs'"))?;
        Ok(Done {
            slot: req_u32(&v, "slot", WHAT)?,
            nests,
            obs: decode_side_obs(obs, WHAT)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips() {
        let h = Hello { version: 7 };
        assert_eq!(Hello::decode(&to_payload(&h)).unwrap(), h);
    }

    #[test]
    fn assign_round_trips_dx_exactly() {
        let a = Assign {
            parent: Domain::parent(286, 307, 24.3),
            nests: vec![
                NestSpec::new(150, 150, 3, (10, 12)),
                NestSpec::child_of(0, 30, 30, 2, (5, 5)),
            ],
            iterations: 8,
            slot: 1,
            owned: vec![0],
            workers: 2,
        };
        let b = Assign::decode(&to_payload(&a)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.parent.dx_km.to_bits(), b.parent.dx_km.to_bits());
        assert_eq!(b.nests[1].parent_nest, Some(0));
    }

    #[test]
    fn done_round_trips() {
        let d = Done {
            slot: 3,
            nests: vec![NestReport {
                nest: 1,
                ratio: 3,
                sub_steps: 12,
                boundary_cells: 76,
                halo_bytes: 17920,
                halo_messages: 8,
                digest: "00deadbeef00cafe".to_owned(),
                children: vec!["0123456789abcdef".to_owned()],
            }],
            obs: SideObs {
                bytes_in: 10,
                bytes_out: 20,
                frames_in: 3,
                frames_out: 4,
                recv_wait: WaitStats {
                    count: 2,
                    mean: 0.25,
                    p50: 0.2,
                    p90: 0.4,
                    p99: 0.4,
                    max: 0.5,
                },
                compute_s: 1.5,
                wait_s: 0.5,
            },
        };
        assert_eq!(Done::decode(&to_payload(&d)).unwrap(), d);
    }

    #[test]
    fn malformed_control_payloads_rejected() {
        assert!(Hello::decode(b"not json").is_err());
        assert!(Assign::decode(b"{}").is_err());
        assert!(Done::decode(b"{\"slot\":1}").is_err());
    }
}

//! The length-prefixed binary frame codec of the fleet wire protocol.
//!
//! A frame is a little-endian `u32` body length followed by the body: one
//! tag byte and the payload. The body length counts the tag, so it is at
//! least 1; frames above the size cap are rejected *before* their body is
//! buffered, which keeps a malicious or corrupted peer from ballooning the
//! input buffer. Halo payloads carry f64 values as raw little-endian bit
//! patterns — the wire must be bit-transparent, or the fleet's
//! bitwise-identity invariant (see `nestwx_miniwrf::report`) dies in the
//! codec.

use std::fmt;

/// Bytes of the length prefix.
pub const FRAME_HEADER_BYTES: usize = 4;

/// Default cap on one frame's body (tag + payload). A boundary ring of the
/// largest plausible nest is a few hundred KiB; 16 MiB leaves two orders
/// of magnitude of headroom while still bounding a corrupt length prefix.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 << 20;

/// Frame-body cap, overridable via `NESTWX_FLEET_MAX_FRAME_BYTES`.
pub fn max_frame_bytes() -> usize {
    nestwx_core::env_usize("NESTWX_FLEET_MAX_FRAME_BYTES", DEFAULT_MAX_FRAME_BYTES).max(1)
}

/// One halo cell as carried in a Boundary/Feedback payload:
/// `(i, j, h, hu, hv)` relative to the receiving grid.
pub type HaloCell = (isize, isize, f64, f64, f64);

/// One decoded frame: its tag, payload slice, and total bytes consumed
/// from the input buffer (header included).
pub type DecodedFrame<'a> = (Tag, &'a [u8], usize);

/// Bytes one halo cell occupies in a Boundary/Feedback payload:
/// `(i64, i64, f64, f64, f64)` little-endian.
pub const CELL_BYTES: usize = 40;

/// Fixed prefix of a Boundary/Feedback payload: `u64` iteration,
/// `u32` nest, `u32` cell count.
pub const CELLS_PREFIX_BYTES: usize = 16;

/// Frame kinds, in handshake-to-teardown order. The discriminants are the
/// wire tag bytes and must never be renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Tag {
    /// Worker → coordinator: protocol version check.
    Hello = 1,
    /// Coordinator → worker: scenario, slot, owned nests, iterations.
    Assign = 2,
    /// Coordinator → worker: one nest's boundary ring for one iteration.
    Boundary = 3,
    /// Worker → coordinator: one nest's feedback cells for one iteration.
    Feedback = 4,
    /// Worker → coordinator: per-nest reports + observability, run over.
    Done = 5,
    /// Coordinator → worker: stop now (a peer was lost); no reply expected.
    Abort = 6,
    /// Either direction: fatal error description, connection is dead.
    Error = 7,
}

impl Tag {
    /// Decodes a wire tag byte.
    pub fn from_u8(b: u8) -> Option<Tag> {
        match b {
            1 => Some(Tag::Hello),
            2 => Some(Tag::Assign),
            3 => Some(Tag::Boundary),
            4 => Some(Tag::Feedback),
            5 => Some(Tag::Done),
            6 => Some(Tag::Abort),
            7 => Some(Tag::Error),
            _ => None,
        }
    }
}

/// A codec-level rejection. Every variant is terminal for the connection:
/// after a framing error the byte stream has no recoverable structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Body length 0 — a frame must at least carry its tag.
    Empty,
    /// Declared body length exceeds the cap.
    Oversized {
        /// Declared body length.
        len: usize,
        /// Configured cap.
        max: usize,
    },
    /// Unknown tag byte.
    UnknownTag(u8),
    /// Payload structure invalid for its tag.
    Malformed(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Empty => write!(f, "empty frame body"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame body of {len} bytes exceeds cap of {max}")
            }
            FrameError::UnknownTag(b) => write!(f, "unknown frame tag {b}"),
            FrameError::Malformed(d) => write!(f, "malformed payload: {d}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends one encoded frame to `out`.
pub fn encode_frame(tag: Tag, payload: &[u8], out: &mut Vec<u8>) {
    let body_len = payload.len() + 1;
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(tag as u8);
    out.extend_from_slice(payload);
}

/// Tries to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` holds only an incomplete frame (read more
/// bytes and retry), `Ok(Some((tag, payload, consumed)))` on success with
/// the total bytes consumed, and `Err` on a terminal framing violation.
/// Oversized and empty lengths are rejected from the 4-byte prefix alone,
/// before any body bytes exist.
pub fn decode_frame(buf: &[u8], max: usize) -> Result<Option<DecodedFrame<'_>>, FrameError> {
    if buf.len() < FRAME_HEADER_BYTES {
        return Ok(None);
    }
    let body_len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if body_len == 0 {
        return Err(FrameError::Empty);
    }
    if body_len > max {
        return Err(FrameError::Oversized { len: body_len, max });
    }
    if buf.len() < FRAME_HEADER_BYTES + body_len {
        return Ok(None);
    }
    let tag = Tag::from_u8(buf[FRAME_HEADER_BYTES]).ok_or(FrameError::UnknownTag(buf[4]))?;
    let payload = &buf[FRAME_HEADER_BYTES + 1..FRAME_HEADER_BYTES + body_len];
    Ok(Some((tag, payload, FRAME_HEADER_BYTES + body_len)))
}

/// Encodes a halo-cell payload (`Boundary`/`Feedback`): iteration, nest
/// index, then each cell's `(i, j, h, hu, hv)` as little-endian bits.
pub fn encode_cells(nest: u32, iteration: u64, cells: &[HaloCell]) -> Vec<u8> {
    let mut out = Vec::with_capacity(CELLS_PREFIX_BYTES + cells.len() * CELL_BYTES);
    out.extend_from_slice(&iteration.to_le_bytes());
    out.extend_from_slice(&nest.to_le_bytes());
    out.extend_from_slice(&(cells.len() as u32).to_le_bytes());
    for &(i, j, h, hu, hv) in cells {
        out.extend_from_slice(&(i as i64).to_le_bytes());
        out.extend_from_slice(&(j as i64).to_le_bytes());
        out.extend_from_slice(&h.to_bits().to_le_bytes());
        out.extend_from_slice(&hu.to_bits().to_le_bytes());
        out.extend_from_slice(&hv.to_bits().to_le_bytes());
    }
    out
}

/// Decodes a halo-cell payload, returning `(nest, iteration, cells)`.
/// The declared cell count must match the payload length exactly — a
/// trailing or missing byte means the stream is corrupt.
pub fn decode_cells(payload: &[u8]) -> Result<(u32, u64, Vec<HaloCell>), FrameError> {
    if payload.len() < CELLS_PREFIX_BYTES {
        return Err(FrameError::Malformed(format!(
            "cell payload of {} bytes is shorter than its {CELLS_PREFIX_BYTES}-byte prefix",
            payload.len()
        )));
    }
    let iteration = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let nest = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes"));
    let count = u32::from_le_bytes(payload[12..16].try_into().expect("4 bytes")) as usize;
    let expected = CELLS_PREFIX_BYTES + count * CELL_BYTES;
    if payload.len() != expected {
        return Err(FrameError::Malformed(format!(
            "cell payload declares {count} cells ({expected} bytes) but carries {}",
            payload.len()
        )));
    }
    let mut cells = Vec::with_capacity(count);
    for c in 0..count {
        let at = CELLS_PREFIX_BYTES + c * CELL_BYTES;
        let read_i64 =
            |o: usize| i64::from_le_bytes(payload[at + o..at + o + 8].try_into().expect("8 bytes"));
        let read_f64 = |o: usize| {
            f64::from_bits(u64::from_le_bytes(
                payload[at + o..at + o + 8].try_into().expect("8 bytes"),
            ))
        };
        cells.push((
            read_i64(0) as isize,
            read_i64(8) as isize,
            read_f64(16),
            read_f64(24),
            read_f64(32),
        ));
    }
    Ok((nest, iteration, cells))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        encode_frame(Tag::Assign, b"payload", &mut buf);
        let (tag, payload, used) = decode_frame(&buf, DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(tag, Tag::Assign);
        assert_eq!(payload, b"payload");
        assert_eq!(used, buf.len());
    }

    #[test]
    fn incomplete_prefix_and_body_return_none() {
        let mut buf = Vec::new();
        encode_frame(Tag::Done, &[9; 32], &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(
                decode_frame(&buf[..cut], DEFAULT_MAX_FRAME_BYTES).unwrap(),
                None,
                "truncation at {cut} must be incomplete, not an error"
            );
        }
    }

    #[test]
    fn oversized_and_empty_rejected_from_prefix() {
        let big = (DEFAULT_MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
        assert!(matches!(
            decode_frame(&big, DEFAULT_MAX_FRAME_BYTES),
            Err(FrameError::Oversized { .. })
        ));
        let zero = 0u32.to_le_bytes();
        assert_eq!(
            decode_frame(&zero, DEFAULT_MAX_FRAME_BYTES),
            Err(FrameError::Empty)
        );
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(99);
        assert_eq!(
            decode_frame(&buf, DEFAULT_MAX_FRAME_BYTES),
            Err(FrameError::UnknownTag(99))
        );
    }

    #[test]
    fn cells_preserve_f64_bits() {
        let cells = vec![
            (-1isize, 4isize, -0.0f64, f64::MIN_POSITIVE, 1.0 / 3.0),
            (7, -1, 1e300, -1e-300, f64::MAX),
        ];
        let payload = encode_cells(3, 42, &cells);
        let (nest, iter, back) = decode_cells(&payload).unwrap();
        assert_eq!((nest, iter), (3, 42));
        assert_eq!(back.len(), cells.len());
        for (a, b) in cells.iter().zip(&back) {
            assert_eq!((a.0, a.1), (b.0, b.1));
            assert_eq!(a.2.to_bits(), b.2.to_bits(), "h bits");
            assert_eq!(a.3.to_bits(), b.3.to_bits(), "hu bits");
            assert_eq!(a.4.to_bits(), b.4.to_bits(), "hv bits");
        }
    }

    #[test]
    fn cells_length_mismatch_rejected() {
        let mut payload = encode_cells(0, 0, &[(0, 0, 1.0, 2.0, 3.0)]);
        payload.push(0);
        assert!(matches!(
            decode_cells(&payload),
            Err(FrameError::Malformed(_))
        ));
        let short = &payload[..CELLS_PREFIX_BYTES + CELL_BYTES - 1];
        assert!(matches!(decode_cells(short), Err(FrameError::Malformed(_))));
    }
}

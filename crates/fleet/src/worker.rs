//! The fleet worker: owns a subset of level-1 nests and exchanges halos
//! with the coordinator over one framed connection.
//!
//! A worker is stateless until its `Assign` arrives: it rebuilds the full
//! model deterministically (see [`crate::scenario::build_model`]), keeps
//! only its owned nests, and then runs [`drive_nests`] with a
//! [`SocketLink`] as the halo transport. Boundary frames for different
//! nests may arrive in any order relative to what `drive_nests` asks for,
//! so the link buffers out-of-order frames keyed `(iteration, nest)` —
//! the same reordering discipline as the in-process channel transport.

use crate::error::FleetError;
use crate::frame::{decode_cells, encode_cells, HaloCell, Tag};
use crate::net::FrameConn;
use crate::scenario::build_model;
use crate::wire::{to_payload, Assign, Done, Hello, SideObs, FLEET_WIRE_VERSION};
use nestwx_miniwrf::nest::{BoundaryData, FeedbackData};
use nestwx_miniwrf::{drive_nests, NestReport, TransportError};
use nestwx_obs::{clock, LogHistogram};
use std::collections::BTreeMap;
use std::time::Duration;

/// Halo transport over a framed socket, worker side.
pub struct SocketLink<'a> {
    conn: &'a mut FrameConn,
    /// Out-of-order boundary frames, keyed `(iteration, nest)`.
    pending: BTreeMap<(u64, usize), Vec<HaloCell>>,
    frame_timeout: Duration,
    recv_wait: LogHistogram,
    wait_s: f64,
    /// Set when the coordinator aborted the run; the worker exits cleanly.
    aborted: bool,
}

impl<'a> SocketLink<'a> {
    /// Wraps a handshaken connection.
    pub fn new(conn: &'a mut FrameConn, frame_timeout: Duration) -> SocketLink<'a> {
        SocketLink {
            conn,
            pending: BTreeMap::new(),
            frame_timeout,
            recv_wait: LogHistogram::new(),
            wait_s: 0.0,
            aborted: false,
        }
    }

    /// Whether the coordinator told this worker to stop mid-run.
    pub fn aborted(&self) -> bool {
        self.aborted
    }

    /// Drains the wait-attribution the link accumulated.
    pub fn wait_obs(&self) -> (&LogHistogram, f64) {
        (&self.recv_wait, self.wait_s)
    }
}

impl nestwx_miniwrf::HaloLink for SocketLink<'_> {
    fn recv_boundary(
        &mut self,
        nest: usize,
        iteration: u64,
    ) -> Result<BoundaryData, TransportError> {
        let start = clock::now();
        let key = (iteration, nest);
        let cells = loop {
            if let Some(cells) = self.pending.remove(&key) {
                break cells;
            }
            let deadline = start + self.frame_timeout;
            let (tag, payload) = self.conn.wait_frame(deadline)?;
            match tag {
                Tag::Boundary => {
                    let (got_nest, got_iter, cells) = decode_cells(&payload)
                        .map_err(|e| TransportError::Protocol(e.to_string()))?;
                    self.pending.insert((got_iter, got_nest as usize), cells);
                }
                Tag::Abort => {
                    self.aborted = true;
                    return Err(TransportError::Closed("coordinator aborted the run".into()));
                }
                Tag::Error => {
                    return Err(TransportError::Protocol(format!(
                        "coordinator error: {}",
                        String::from_utf8_lossy(&payload)
                    )))
                }
                other => {
                    return Err(TransportError::Protocol(format!(
                        "expected Boundary, got {other:?}"
                    )))
                }
            }
        };
        let waited = clock::since(start);
        self.recv_wait.record_duration(waited);
        self.wait_s += waited.as_secs_f64();
        Ok(BoundaryData::from_cells(cells))
    }

    fn send_feedback(
        &mut self,
        nest: usize,
        iteration: u64,
        fb: &FeedbackData,
    ) -> Result<(), TransportError> {
        let payload = encode_cells(nest as u32, iteration, fb.cells());
        self.conn.queue(Tag::Feedback, &payload);
        // Opportunistic flush: drive_nests immediately blocks on the next
        // boundary anyway, and wait_frame keeps flushing, but pushing bytes
        // now overlaps the send with the coordinator's feedback wait.
        self.conn.flush()?;
        Ok(())
    }
}

/// Runs the whole worker protocol on a connected socket: `Hello` →
/// `Assign` → halo loop → `Done`. Returns `Ok(())` both on normal
/// completion and on a coordinator-initiated `Abort` (the failure is the
/// coordinator's to report); anything else is a typed error.
pub fn run_worker(conn: &mut FrameConn, frame_timeout: Duration) -> Result<(), FleetError> {
    conn.queue(
        Tag::Hello,
        &to_payload(&Hello {
            version: FLEET_WIRE_VERSION,
        }),
    );
    conn.flush_fully(clock::deadline_after(frame_timeout))
        .map_err(|e| FleetError::Handshake(e.to_string()))?;
    let (tag, payload) = conn
        .wait_frame(clock::deadline_after(frame_timeout))
        .map_err(|e| FleetError::Handshake(e.to_string()))?;
    let assign: Assign = match tag {
        Tag::Assign => {
            Assign::decode(&payload).map_err(|e| FleetError::Handshake(e.to_string()))?
        }
        Tag::Abort => return Ok(()),
        Tag::Error => {
            return Err(FleetError::Handshake(format!(
                "coordinator rejected handshake: {}",
                String::from_utf8_lossy(&payload)
            )))
        }
        other => {
            return Err(FleetError::Handshake(format!(
                "expected Assign, got {other:?}"
            )))
        }
    };

    // Rebuild the full model so owned nests initialize exactly as the
    // in-process run would, then keep only the owned ones.
    let model = build_model(&assign.parent, &assign.nests);
    let mut owned: Vec<(usize, nestwx_miniwrf::NestState)> = assign
        .owned
        .iter()
        .map(|&g| (g as usize, model.nests[g as usize].clone()))
        .collect();
    drop(model);

    let run_start = clock::now();
    let (result, wait_hist, wait_s, aborted) = {
        let mut link = SocketLink::new(conn, frame_timeout);
        let result = drive_nests(&mut owned, assign.iterations, &mut link);
        let (hist, wait_s) = link.wait_obs();
        (result, hist.clone(), wait_s, link.aborted())
    };
    if aborted {
        return Ok(());
    }
    result.map_err(|e| FleetError::Io(e.to_string()))?;
    let run_s = clock::since(run_start).as_secs_f64();

    let nests: Vec<NestReport> = owned
        .iter()
        .map(|(g, nest)| NestReport::from_nest(*g, nest, assign.iterations))
        .collect();
    let done = Done {
        slot: assign.slot,
        nests,
        obs: SideObs {
            bytes_in: conn.bytes_in,
            bytes_out: conn.bytes_out,
            frames_in: conn.frames_in,
            frames_out: conn.frames_out,
            recv_wait: wait_hist.summary().into(),
            compute_s: (run_s - wait_s).max(0.0),
            wait_s,
        },
    };
    conn.queue(Tag::Done, &to_payload(&done));
    conn.flush_fully(clock::deadline_after(frame_timeout))
        .map_err(|e| FleetError::Io(e.to_string()))?;
    Ok(())
}

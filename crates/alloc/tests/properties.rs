//! Property-based tests of the Huffman tree and Algorithm 1.

use nestwx_alloc::huffman::HuffmanTree;
use nestwx_alloc::{allocation_imbalance, naive, partition_grid};
use nestwx_grid::{rect::tiles_exactly, ProcGrid, Rect};
use proptest::prelude::*;

fn arb_ratios(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..10.0, n)
}

proptest! {
    /// Huffman trees have k−1 internal nodes, the root carries the total
    /// weight, and the Kraft equality holds: Σ 2^(−depth_i) = 1.
    #[test]
    fn huffman_structure(ws in arb_ratios(1..12)) {
        let t = HuffmanTree::build(&ws);
        prop_assert_eq!(t.num_leaves(), ws.len());
        prop_assert_eq!(t.internal_bfs().len(), ws.len() - 1);
        let total: f64 = ws.iter().sum();
        prop_assert!((t.node(t.root()).weight - total).abs() < 1e-9 * total);
        if ws.len() > 1 {
            let kraft: f64 = t.depths().iter().map(|&d| 2f64.powi(-(d as i32))).sum();
            prop_assert!((kraft - 1.0).abs() < 1e-12, "Kraft sum {kraft}");
        }
    }

    /// Heavier leaves never sit deeper than lighter ones (the Huffman
    /// exchange-argument invariant).
    #[test]
    fn huffman_monotone_depths(ws in arb_ratios(2..12)) {
        let t = HuffmanTree::build(&ws);
        let depths = t.depths();
        for i in 0..ws.len() {
            for j in 0..ws.len() {
                if ws[i] > ws[j] * (1.0 + 1e-12) {
                    prop_assert!(depths[i] <= depths[j],
                        "weight {} at depth {} vs weight {} at depth {}",
                        ws[i], depths[i], ws[j], depths[j]);
                }
            }
        }
    }

    /// Algorithm 1 always tiles the grid exactly, gives every nest at least
    /// one processor, and keeps areas roughly proportional to the ratios.
    #[test]
    fn partition_tiles_and_proportional(
        px in 4u32..64, py in 4u32..64, ws in arb_ratios(1..9),
    ) {
        let grid = ProcGrid::new(px, py);
        prop_assume!((grid.len() as usize) >= ws.len() * 4);
        let parts = partition_grid(&grid, &ws).unwrap();
        let rects: Vec<Rect> = parts.iter().map(|p| p.rect).collect();
        prop_assert!(tiles_exactly(&grid.rect(), &rects));
        prop_assert!(parts.iter().all(|p| p.rect.area() >= 1));
        // Proportionality: area share within max(15 points, one row/col) of
        // the ratio share (integer rounding bound).
        let total_w: f64 = ws.iter().sum();
        let granularity = (px.max(py) as f64) / grid.len() as f64;
        for p in &parts {
            let share = p.rect.area() as f64 / grid.len() as f64;
            let target = ws[p.domain] / total_w;
            prop_assert!(
                (share - target).abs() <= (0.15_f64).max(2.0 * granularity),
                "domain {} share {share:.3} vs target {target:.3}",
                p.domain
            );
        }
    }

    /// On grids large enough that integer rounding is second-order, the
    /// imbalance of Algorithm 1 is not materially worse than the equal
    /// split's — and for genuinely skewed ratios it is strictly better.
    /// (On tiny grids rounding can compound; Algorithm 1 is a heuristic.)
    #[test]
    fn split_tree_beats_equal_split(px in 24u32..64, py in 24u32..64, ws in arb_ratios(2..6)) {
        let grid = ProcGrid::new(px, py);
        let tree = partition_grid(&grid, &ws).unwrap();
        let equal = naive::equal_split(&grid, ws.len()).unwrap();
        let imb_tree = allocation_imbalance(&tree, &ws);
        let imb_equal = allocation_imbalance(&equal, &ws);
        prop_assert!(imb_tree <= imb_equal * 1.10 + 0.05,
            "tree {imb_tree:.3} vs equal {imb_equal:.3} for {ws:?}");
        // Clear win when the ratios are strongly skewed (integer rounding
        // can still cost a couple of percent, hence the small tolerance).
        let (lo, hi) = ws.iter().fold((f64::INFINITY, 0.0f64), |(l, h), &w| (l.min(w), h.max(w)));
        if hi > 3.0 * lo {
            prop_assert!(imb_tree < imb_equal * 1.03 + 0.02,
                "tree {imb_tree:.3} ≫ equal {imb_equal:.3} for skewed {ws:?}");
        }
    }

    /// Naïve strips tile the grid and preserve ordering.
    #[test]
    fn strips_tile(px in 4u32..64, py in 1u32..64, ws in arb_ratios(1..8)) {
        let grid = ProcGrid::new(px, py);
        prop_assume!((grid.px as usize) >= ws.len());
        let parts = naive::proportional_strips(&grid, &ws).unwrap();
        let rects: Vec<Rect> = parts.iter().map(|p| p.rect).collect();
        prop_assert!(tiles_exactly(&grid.rect(), &rects));
        // Strips appear left to right in domain order.
        for w in parts.windows(2) {
            prop_assert!(w[0].rect.x1() == w[1].rect.x0);
        }
    }

    /// Determinism: identical inputs give identical partitions.
    #[test]
    fn partition_deterministic(px in 4u32..32, py in 4u32..32, ws in arb_ratios(2..6)) {
        let grid = ProcGrid::new(px, py);
        prop_assume!((grid.len() as usize) >= ws.len() * 2);
        prop_assert_eq!(partition_grid(&grid, &ws).unwrap(), partition_grid(&grid, &ws).unwrap());
    }
}

//! Processor allocation for concurrent sibling nests (§3.2, Algorithm 1).
//!
//! Given the predicted relative execution times `R₁ … R_k` of `k` sibling
//! nests and a `Px × Py` virtual processor grid, the allocator carves the
//! grid into `k` disjoint rectangles whose areas are proportional to the
//! `Rᵢ` and which are as square-like as possible (to balance x- and
//! y-communication volumes):
//!
//! 1. build a [`huffman::HuffmanTree`] over the ratios — every internal node
//!    then splits its subtree weights near-evenly;
//! 2. traverse the internal nodes breadth-first, splitting the current
//!    rectangle **along its longer dimension** in the ratio of the left and
//!    right subtree weights (Fig. 4 shows why the longer dimension).
//!
//! Baselines for §4.6 and the ablation benches: [`naive::proportional_strips`]
//! (contiguous vertical strips by point share) and [`naive::equal_split`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod huffman;
pub mod metrics;
pub mod naive;
pub mod partition;

pub use huffman::HuffmanTree;
pub use metrics::{allocation_imbalance, mean_squareness};
pub use partition::{partition_grid, AllocError, Partition};

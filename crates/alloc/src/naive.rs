//! Baseline allocators for §4.6 and the ablation benches.

use crate::partition::{AllocError, Partition};
use nestwx_grid::{ProcGrid, Rect};

/// The naïve strategy of §4.6: subdivide the processor space into
/// consecutive vertical strips with widths proportional to `shares`
/// (typically the nests' point-count shares).
pub fn proportional_strips(grid: &ProcGrid, shares: &[f64]) -> Result<Vec<Partition>, AllocError> {
    if shares.is_empty() || shares.iter().any(|s| !s.is_finite() || *s <= 0.0) {
        return Err(AllocError::BadRatios);
    }
    let k = shares.len();
    if (grid.px as usize) < k {
        return Err(AllocError::TooFewProcessors {
            procs: grid.len(),
            nests: k,
        });
    }
    let total: f64 = shares.iter().sum();
    // Largest-remainder apportionment of columns, each strip ≥ 1 column.
    let ideal: Vec<f64> = shares.iter().map(|s| s / total * grid.px as f64).collect();
    let mut widths: Vec<u32> = ideal.iter().map(|w| (w.floor() as u32).max(1)).collect();
    let assigned: u32 = widths.iter().sum();
    let mut rem = grid.px as i64 - assigned as i64;
    // Distribute leftover columns by largest fractional part, or withdraw
    // from the widest strips if over-assigned.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        let fa = ideal[a] - ideal[a].floor();
        let fb = ideal[b] - ideal[b].floor();
        fb.total_cmp(&fa)
    });
    let mut i = 0;
    while rem > 0 {
        widths[order[i % k]] += 1;
        rem -= 1;
        i += 1;
    }
    while rem < 0 {
        let Some(widest) = (0..k).max_by_key(|&j| widths[j]) else {
            break; // k == 0: nothing left to shrink
        };
        if widths[widest] > 1 {
            widths[widest] -= 1;
            rem += 1;
        } else {
            return Err(AllocError::TooFewProcessors {
                procs: grid.len(),
                nests: k,
            });
        }
    }
    let mut x0 = 0;
    let mut out = Vec::with_capacity(k);
    for (domain, w) in widths.into_iter().enumerate() {
        out.push(Partition {
            domain,
            rect: Rect::new(x0, 0, w, grid.py),
        });
        x0 += w;
    }
    Ok(out)
}

/// Equal split: each nest gets the same number of processor columns
/// (up to rounding). The "simple processor allocation strategy" the paper
/// dismisses for load imbalance (§3.2).
pub fn equal_split(grid: &ProcGrid, k: usize) -> Result<Vec<Partition>, AllocError> {
    proportional_strips(grid, &vec![1.0; k])
}

#[cfg(test)]
mod tests {
    use super::*;
    use nestwx_grid::rect::tiles_exactly;

    #[test]
    fn strips_tile_grid() {
        let g = ProcGrid::new(32, 32);
        let parts = proportional_strips(&g, &[0.25, 0.5, 0.25]).unwrap();
        let rects: Vec<Rect> = parts.iter().map(|p| p.rect).collect();
        assert!(tiles_exactly(&g.rect(), &rects));
        assert_eq!(parts[0].rect.w, 8);
        assert_eq!(parts[1].rect.w, 16);
        assert_eq!(parts[2].rect.w, 8);
    }

    #[test]
    fn strips_are_full_height() {
        let g = ProcGrid::new(32, 32);
        let parts = proportional_strips(&g, &[0.6, 0.4]).unwrap();
        assert!(parts.iter().all(|p| p.rect.h == 32));
    }

    #[test]
    fn rounding_preserves_total() {
        let g = ProcGrid::new(32, 32);
        let parts = proportional_strips(&g, &[1.0, 1.0, 1.0]).unwrap();
        let total: u32 = parts.iter().map(|p| p.rect.w).sum();
        assert_eq!(total, 32);
    }

    #[test]
    fn tiny_share_still_gets_a_column() {
        let g = ProcGrid::new(16, 16);
        let parts = proportional_strips(&g, &[0.97, 0.01, 0.01, 0.01]).unwrap();
        assert!(parts.iter().all(|p| p.rect.w >= 1));
        let rects: Vec<Rect> = parts.iter().map(|p| p.rect).collect();
        assert!(tiles_exactly(&g.rect(), &rects));
    }

    #[test]
    fn equal_split_even() {
        let g = ProcGrid::new(32, 32);
        let parts = equal_split(&g, 4).unwrap();
        assert!(parts.iter().all(|p| p.rect.w == 8));
    }

    #[test]
    fn rejects_too_many_nests() {
        let g = ProcGrid::new(4, 4);
        assert!(matches!(
            proportional_strips(&g, &[1.0; 5]).unwrap_err(),
            AllocError::TooFewProcessors { .. }
        ));
    }

    #[test]
    fn strips_are_tall_and_thin_vs_split_tree() {
        // Why the naïve strategy loses (§4.6): strips have poor squareness.
        let g = ProcGrid::new(32, 32);
        let shares = [432.0, 144.0, 168.0, 280.0];
        let strips = proportional_strips(&g, &shares).unwrap();
        let tree = crate::partition::partition_grid(&g, &shares).unwrap();
        let mean_sq = |ps: &[Partition]| -> f64 {
            ps.iter().map(|p| p.rect.squareness()).sum::<f64>() / ps.len() as f64
        };
        assert!(mean_sq(&tree) > mean_sq(&strips));
    }
}

//! Algorithm 1: the balanced split-tree partitioner.
//!
//! Divides the `Px × Py` virtual processor grid into `k` rectangles, one per
//! nested simulation, with areas proportional to the execution-time ratios
//! and shapes as square-like as possible (always splitting along the longer
//! dimension — Fig. 4).

use crate::huffman::{HuffmanTree, NodeKind};
use nestwx_grid::{ProcGrid, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The processor rectangle assigned to one nested domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// Index of the nested domain (position in the ratio list).
    pub domain: usize,
    /// Assigned sub-rectangle of the processor grid.
    pub rect: Rect,
}

/// Errors from the partitioner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// More nests than processors, or a split became infeasible.
    TooFewProcessors {
        /// Processors available.
        procs: u32,
        /// Nests requested.
        nests: usize,
    },
    /// Ratios empty or non-positive.
    BadRatios,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::TooFewProcessors { procs, nests } => {
                write!(f, "cannot partition {procs} processors among {nests} nests")
            }
            AllocError::BadRatios => write!(f, "execution-time ratios must be positive"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Which dimension the partitioner bisects first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitDim {
    /// The paper's choice: split along the longer dimension so rectangles
    /// stay square-like (Fig. 4a).
    Longer,
    /// The ablation baseline: split along the shorter dimension (Fig. 4b).
    Shorter,
}

/// Partitions `grid` among nests with execution-time ratios `ratios`
/// (Algorithm 1). Returns one [`Partition`] per nest, ordered by domain
/// index.
pub fn partition_grid(grid: &ProcGrid, ratios: &[f64]) -> Result<Vec<Partition>, AllocError> {
    partition_grid_with(grid, ratios, SplitDim::Longer)
}

/// [`partition_grid`] with an explicit first-split policy (for the Fig. 4
/// ablation).
pub fn partition_grid_with(
    grid: &ProcGrid,
    ratios: &[f64],
    split: SplitDim,
) -> Result<Vec<Partition>, AllocError> {
    if ratios.is_empty() || ratios.iter().any(|r| !r.is_finite() || *r <= 0.0) {
        return Err(AllocError::BadRatios);
    }
    let k = ratios.len();
    if (grid.len() as usize) < k {
        return Err(AllocError::TooFewProcessors {
            procs: grid.len(),
            nests: k,
        });
    }
    if k == 1 {
        return Ok(vec![Partition {
            domain: 0,
            rect: grid.rect(),
        }]);
    }

    let tree = HuffmanTree::build(ratios);
    let mut rect_of: Vec<Option<Rect>> = vec![None; tree_len(&tree)];
    rect_of[tree.root()] = Some(grid.rect());

    // Lines 2–18: BFS over internal nodes; split the node's rectangle along
    // the chosen dimension in the ratio of the subtree weights.
    for u in tree.internal_bfs() {
        let rect = rect_of[u].expect("BFS parent before child");
        let NodeKind::Internal { left, right } = tree.node(u).kind else {
            unreachable!()
        };
        let (wl, wr) = (tree.node(left).weight, tree.node(right).weight);
        let (ll, lr) = (leaves_below(&tree, left), leaves_below(&tree, right));

        let split_x = match split {
            // Tie (square rect): split x, matching "if Px ≤ Py … divide
            // PLongDim = Py" reading of Algorithm 1 lines 5–9 (splitting
            // the longer of the two; on equality the y extent is treated
            // as the long dimension, i.e. a horizontal cut).
            SplitDim::Longer => rect.w > rect.h,
            SplitDim::Shorter => rect.w <= rect.h,
        };
        let extent = if split_x { rect.w } else { rect.h };
        let other = if split_x { rect.h } else { rect.w };

        let (el, er) = split_extent(extent, other, wl, wr, ll as u32, lr as u32).ok_or(
            AllocError::TooFewProcessors {
                procs: grid.len(),
                nests: k,
            },
        )?;
        debug_assert_eq!(el + er, extent);
        let (ra, rb) = if split_x {
            rect.split_x(el)
        } else {
            rect.split_y(el)
        };
        let _ = er;
        rect_of[left] = Some(ra);
        rect_of[right] = Some(rb);
    }

    let mut out: Vec<Partition> = Vec::with_capacity(k);
    collect_leaves(&tree, tree.root(), &rect_of, &mut out);
    out.sort_by_key(|p| p.domain);
    debug_assert!(nestwx_grid::rect::tiles_exactly(
        &grid.rect(),
        &out.iter().map(|p| p.rect).collect::<Vec<_>>()
    ));
    Ok(out)
}

/// Splits `extent` into `(el, er)` proportional to `wl : wr`, keeping both
/// sides large enough that each subtree (with `ll` / `lr` leaves) can still
/// receive non-empty rectangles: side area (`e · other`) ≥ leaf count and
/// `e ≥ 1`.
fn split_extent(extent: u32, other: u32, wl: f64, wr: f64, ll: u32, lr: u32) -> Option<(u32, u32)> {
    if extent < 2 {
        return None;
    }
    let ideal = extent as f64 * wl / (wl + wr);
    let mut el = ideal.round().clamp(1.0, (extent - 1) as f64) as u32;
    // Ensure minimum areas for both subtrees.
    let min_l = ll.div_ceil(other);
    let min_r = lr.div_ceil(other);
    if min_l + min_r > extent {
        return None;
    }
    el = el.clamp(min_l.max(1), extent - min_r.max(1));
    Some((el, extent - el))
}

fn tree_len(tree: &HuffmanTree) -> usize {
    // Arena size: k leaves + (k-1) internal nodes.
    2 * tree.num_leaves() - 1
}

fn leaves_below(tree: &HuffmanTree, idx: usize) -> usize {
    match tree.node(idx).kind {
        NodeKind::Leaf { .. } => 1,
        NodeKind::Internal { left, right } => leaves_below(tree, left) + leaves_below(tree, right),
    }
}

fn collect_leaves(
    tree: &HuffmanTree,
    idx: usize,
    rect_of: &[Option<Rect>],
    out: &mut Vec<Partition>,
) {
    match tree.node(idx).kind {
        NodeKind::Leaf { domain } => {
            out.push(Partition {
                domain,
                rect: rect_of[idx].expect("leaf rect assigned"),
            });
        }
        NodeKind::Internal { left, right } => {
            collect_leaves(tree, left, rect_of, out);
            collect_leaves(tree, right, rect_of, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nestwx_grid::rect::tiles_exactly;

    #[test]
    fn single_nest_gets_everything() {
        let g = ProcGrid::new(32, 32);
        let p = partition_grid(&g, &[1.0]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].rect, g.rect());
    }

    #[test]
    fn fig3b_ratios_tile_and_are_proportional() {
        // Fig. 3(b): 4 nests with ratios 0.15 : 0.3 : 0.35 : 0.2.
        let g = ProcGrid::new(32, 32);
        let ratios = [0.15, 0.3, 0.35, 0.2];
        let parts = partition_grid(&g, &ratios).unwrap();
        assert_eq!(parts.len(), 4);
        let rects: Vec<Rect> = parts.iter().map(|p| p.rect).collect();
        assert!(tiles_exactly(&g.rect(), &rects));
        let total = g.len() as f64;
        for (p, &r) in parts.iter().zip(&ratios) {
            let share = p.rect.area() as f64 / total;
            assert!(
                (share - r).abs() < 0.05,
                "domain {} got share {share:.3}, wanted ≈{r}",
                p.domain
            );
        }
    }

    #[test]
    fn equal_ratios_equal_areas() {
        let g = ProcGrid::new(16, 16);
        let parts = partition_grid(&g, &[1.0; 4]).unwrap();
        for p in &parts {
            assert_eq!(p.rect.area(), 64);
        }
    }

    #[test]
    fn table2_configuration_areas() {
        // Table 2: 1024 processors among 4 siblings got 432, 144, 168, 280
        // processors (18×24, 18×8, 14×12, 14×20). Feed the implied ratios
        // and check we allocate areas within a couple of percent.
        let g = ProcGrid::new(32, 32);
        let ratios = [432.0, 144.0, 168.0, 280.0];
        let parts = partition_grid(&g, &ratios).unwrap();
        for (p, &r) in parts.iter().zip(&ratios) {
            let got = p.rect.area() as f64;
            assert!(
                (got - r).abs() / r < 0.15,
                "domain {}: {} procs vs paper {}",
                p.domain,
                got,
                r
            );
        }
    }

    #[test]
    fn longer_split_more_square_than_shorter() {
        // Fig. 4: first split along the longer dimension keeps rectangles
        // more square-like than splitting along the shorter one.
        let g = ProcGrid::new(48, 24);
        let ratios = [0.4, 0.35, 0.25];
        let longer = partition_grid_with(&g, &ratios, SplitDim::Longer).unwrap();
        let shorter = partition_grid_with(&g, &ratios, SplitDim::Shorter).unwrap();
        let mean_sq = |ps: &[Partition]| -> f64 {
            ps.iter().map(|p| p.rect.squareness()).sum::<f64>() / ps.len() as f64
        };
        assert!(
            mean_sq(&longer) > mean_sq(&shorter),
            "longer {:.3} vs shorter {:.3}",
            mean_sq(&longer),
            mean_sq(&shorter)
        );
    }

    #[test]
    fn skewed_ratios_still_tile() {
        let g = ProcGrid::new(32, 32);
        let ratios = [0.9, 0.04, 0.03, 0.03];
        let parts = partition_grid(&g, &ratios).unwrap();
        let rects: Vec<Rect> = parts.iter().map(|p| p.rect).collect();
        assert!(tiles_exactly(&g.rect(), &rects));
        // Every nest got at least one processor.
        assert!(parts.iter().all(|p| p.rect.area() >= 1));
    }

    #[test]
    fn many_nests_on_small_grid() {
        let g = ProcGrid::new(4, 2);
        let parts = partition_grid(&g, &[1.0; 8]).unwrap();
        let rects: Vec<Rect> = parts.iter().map(|p| p.rect).collect();
        assert!(tiles_exactly(&g.rect(), &rects));
        assert!(parts.iter().all(|p| p.rect.area() == 1));
    }

    #[test]
    fn rejects_more_nests_than_procs() {
        let g = ProcGrid::new(2, 2);
        assert_eq!(
            partition_grid(&g, &[1.0; 5]).unwrap_err(),
            AllocError::TooFewProcessors { procs: 4, nests: 5 }
        );
    }

    #[test]
    fn rejects_bad_ratios() {
        let g = ProcGrid::new(4, 4);
        assert_eq!(partition_grid(&g, &[]).unwrap_err(), AllocError::BadRatios);
        assert_eq!(
            partition_grid(&g, &[1.0, -0.5]).unwrap_err(),
            AllocError::BadRatios
        );
        assert_eq!(
            partition_grid(&g, &[1.0, f64::NAN]).unwrap_err(),
            AllocError::BadRatios
        );
    }

    #[test]
    fn partitions_ordered_by_domain() {
        let g = ProcGrid::new(16, 16);
        let parts = partition_grid(&g, &[0.3, 0.5, 0.2]).unwrap();
        let order: Vec<usize> = parts.iter().map(|p| p.domain).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }
}

//! Quality metrics of a processor allocation.

use crate::partition::Partition;

/// Load imbalance of an allocation under the given execution-time ratios:
/// the slowest nest's (ratio / processors) share relative to the ideal
/// uniform share. `1.0` is perfect balance; `2.0` means the critical nest
/// runs twice as slow as the ideal apportionment would allow.
///
/// This is the quantity the allocator minimises: when all nests finish the
/// `r` integration steps together, none idles at the parent
/// synchronisation point (§3.2).
pub fn allocation_imbalance(parts: &[Partition], ratios: &[f64]) -> f64 {
    assert_eq!(parts.len(), ratios.len());
    let total_area: f64 = parts.iter().map(|p| p.rect.area() as f64).sum();
    let total_ratio: f64 = ratios.iter().sum();
    parts
        .iter()
        .map(|p| {
            let r = ratios[p.domain] / total_ratio;
            let a = p.rect.area() as f64 / total_area;
            r / a
        })
        .fold(0.0, f64::max)
}

/// Mean squareness (min/max side ratio) over the partitions — the shape
/// objective of Fig. 4.
pub fn mean_squareness(parts: &[Partition]) -> f64 {
    if parts.is_empty() {
        return 0.0;
    }
    parts.iter().map(|p| p.rect.squareness()).sum::<f64>() / parts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_grid;
    use nestwx_grid::ProcGrid;

    #[test]
    fn perfect_balance_is_one() {
        let g = ProcGrid::new(16, 16);
        let parts = partition_grid(&g, &[1.0, 1.0]).unwrap();
        let imb = allocation_imbalance(&parts, &[1.0, 1.0]);
        assert!((imb - 1.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_detects_misallocation() {
        // Allocate evenly but pretend ratios are 3:1 — the first nest is
        // 1.5× over-subscribed.
        let g = ProcGrid::new(16, 16);
        let parts = partition_grid(&g, &[1.0, 1.0]).unwrap();
        let imb = allocation_imbalance(&parts, &[3.0, 1.0]);
        assert!((imb - 1.5).abs() < 1e-9);
    }

    #[test]
    fn split_tree_balances_better_than_equal_for_skewed_ratios() {
        let g = ProcGrid::new(32, 32);
        let ratios = [0.5, 0.3, 0.15, 0.05];
        let tree = partition_grid(&g, &ratios).unwrap();
        let equal = crate::naive::equal_split(&g, 4).unwrap();
        assert!(allocation_imbalance(&tree, &ratios) < allocation_imbalance(&equal, &ratios));
    }

    #[test]
    fn squareness_of_square_tiles() {
        let g = ProcGrid::new(16, 16);
        let parts = partition_grid(&g, &[1.0; 4]).unwrap();
        assert!((mean_squareness(&parts) - 1.0).abs() < 1e-9);
    }
}

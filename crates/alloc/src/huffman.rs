//! Huffman tree over execution-time ratios.
//!
//! Algorithm 1, line 1: "Construct a Huffman tree over the nested domains
//! with execution time ratios as weights". The Huffman construction merges
//! the two lightest subtrees first, so every internal node ends up with
//! left and right subtrees that are "fairly well-balanced in terms of the
//! sum of the execution time ratios" — which is exactly what makes the
//! subsequent split-tree produce square-like rectangles.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Node payload: a leaf (one nested domain) or an internal merge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Leaf holding the index of a nested domain.
    Leaf {
        /// Index of the domain in the input weight list.
        domain: usize,
    },
    /// Internal node with arena indices of its children.
    Internal {
        /// Left child (the lighter of the two merged subtrees).
        left: usize,
        /// Right child.
        right: usize,
    },
}

/// One arena node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Sum of leaf weights below (the `W` of Algorithm 1, line 12).
    pub weight: f64,
    /// Leaf or internal.
    pub kind: NodeKind,
}

/// An arena-allocated Huffman tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HuffmanTree {
    nodes: Vec<Node>,
    root: usize,
}

#[derive(PartialEq)]
struct HeapItem {
    weight: f64,
    seq: usize, // FIFO tie-break for determinism
    node: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: reverse weight; ties broken by insertion order.
        other
            .weight
            .partial_cmp(&self.weight)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl HuffmanTree {
    /// Builds the tree. Weights must be positive; a single weight yields a
    /// one-leaf tree.
    ///
    /// Panics on empty or non-positive input.
    pub fn build(weights: &[f64]) -> HuffmanTree {
        assert!(!weights.is_empty(), "Huffman tree over zero domains");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "Huffman weights must be positive and finite"
        );
        let mut nodes: Vec<Node> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| Node {
                weight: w,
                kind: NodeKind::Leaf { domain: i },
            })
            .collect();
        let mut heap: BinaryHeap<HeapItem> = (0..nodes.len())
            .map(|i| HeapItem {
                weight: nodes[i].weight,
                seq: i,
                node: i,
            })
            .collect();
        let mut seq = nodes.len();
        while heap.len() > 1 {
            let a = heap.pop().unwrap();
            let b = heap.pop().unwrap();
            let merged = Node {
                weight: a.weight + b.weight,
                kind: NodeKind::Internal {
                    left: a.node,
                    right: b.node,
                },
            };
            nodes.push(merged);
            heap.push(HeapItem {
                weight: merged.weight,
                seq,
                node: nodes.len() - 1,
            });
            seq += 1;
        }
        let root = heap.pop().unwrap().node;
        HuffmanTree { nodes, root }
    }

    /// Arena index of the root.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Node by arena index.
    pub fn node(&self, idx: usize) -> &Node {
        &self.nodes[idx]
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Leaf { .. }))
            .count()
    }

    /// Internal-node arena indices in breadth-first order from the root —
    /// the traversal order of Algorithm 1, line 2.
    pub fn internal_bfs(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut queue = std::collections::VecDeque::from([self.root]);
        while let Some(idx) = queue.pop_front() {
            if let NodeKind::Internal { left, right } = self.nodes[idx].kind {
                out.push(idx);
                queue.push_back(left);
                queue.push_back(right);
            }
        }
        out
    }

    /// Depth of each leaf domain (code length), indexed by domain id.
    pub fn depths(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.num_leaves()];
        let mut stack = vec![(self.root, 0u32)];
        while let Some((idx, d)) = stack.pop() {
            match self.nodes[idx].kind {
                NodeKind::Leaf { domain } => out[domain] = d,
                NodeKind::Internal { left, right } => {
                    stack.push((left, d + 1));
                    stack.push((right, d + 1));
                }
            }
        }
        out
    }

    /// Weighted external path length `Σ wᵢ · depthᵢ` — minimal over all
    /// binary trees for Huffman construction.
    pub fn weighted_path_length(&self, weights: &[f64]) -> f64 {
        self.depths()
            .iter()
            .zip(weights)
            .map(|(&d, &w)| d as f64 * w)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_leaf() {
        let t = HuffmanTree::build(&[1.0]);
        assert_eq!(t.num_leaves(), 1);
        assert!(t.internal_bfs().is_empty());
        assert_eq!(t.depths(), vec![0]);
    }

    #[test]
    fn classic_example() {
        // Weights 1,1,2,4: optimal code lengths 3,3,2,1.
        let t = HuffmanTree::build(&[1.0, 1.0, 2.0, 4.0]);
        assert_eq!(t.depths(), vec![3, 3, 2, 1]);
        assert_eq!(
            t.weighted_path_length(&[1.0, 1.0, 2.0, 4.0]),
            3.0 + 3.0 + 4.0 + 4.0
        );
    }

    #[test]
    fn equal_weights_balanced() {
        // 4 equal weights: perfectly balanced tree, all depths 2.
        let t = HuffmanTree::build(&[1.0; 4]);
        assert_eq!(t.depths(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn root_weight_is_total() {
        let w = [0.15, 0.3, 0.35, 0.2];
        let t = HuffmanTree::build(&w);
        assert!((t.node(t.root()).weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn children_fairly_balanced() {
        // The property Algorithm 1 relies on: at the root, left/right
        // subtree weights of Fig. 3(b)'s ratios are close.
        let w = [0.15, 0.3, 0.35, 0.2];
        let t = HuffmanTree::build(&w);
        if let NodeKind::Internal { left, right } = t.node(t.root()).kind {
            let (wl, wr) = (t.node(left).weight, t.node(right).weight);
            assert!(
                (wl - wr).abs() <= 0.5,
                "root split {wl} vs {wr} too lopsided"
            );
        } else {
            panic!("root must be internal");
        }
    }

    #[test]
    fn bfs_visits_all_internal_nodes() {
        let t = HuffmanTree::build(&[0.1, 0.2, 0.3, 0.4]);
        // k leaves → k-1 internal nodes.
        assert_eq!(t.internal_bfs().len(), 3);
        // BFS starts at the root.
        assert_eq!(t.internal_bfs()[0], t.root());
    }

    #[test]
    fn deterministic_on_ties() {
        let a = HuffmanTree::build(&[1.0, 1.0, 1.0, 1.0, 1.0]);
        let b = HuffmanTree::build(&[1.0, 1.0, 1.0, 1.0, 1.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn optimality_vs_exhaustive_small() {
        // For 4 weights, the Huffman WPL must not exceed any full binary
        // tree's WPL; enumerate all leaf permutations of the two shapes of
        // 4-leaf binary trees.
        let w = [0.1, 0.25, 0.3, 0.35];
        let t = HuffmanTree::build(&w);
        let wpl = t.weighted_path_length(&w);
        let mut best = f64::INFINITY;
        let idx = [0usize, 1, 2, 3];
        let mut perms = Vec::new();
        permute(&idx, &mut vec![], &mut perms);
        for p in perms {
            // Shape A: balanced — all depths 2.
            let a: f64 = p.iter().map(|&i| 2.0 * w[i]).sum();
            // Shape B: caterpillar — depths 1,2,3,3.
            let b = w[p[0]] + 2.0 * w[p[1]] + 3.0 * w[p[2]] + 3.0 * w[p[3]];
            best = best.min(a).min(b);
        }
        assert!(
            wpl <= best + 1e-12,
            "Huffman WPL {wpl} worse than exhaustive {best}"
        );
    }

    fn permute(rest: &[usize], acc: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(acc.clone());
            return;
        }
        for (i, &x) in rest.iter().enumerate() {
            let mut r = rest.to_vec();
            r.remove(i);
            acc.push(x);
            permute(&r, acc, out);
            acc.pop();
        }
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        HuffmanTree::build(&[]);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive() {
        HuffmanTree::build(&[1.0, 0.0]);
    }
}

//! Discrete-event simulator of Blue Gene-class machines running WRF-style
//! nested simulations.
//!
//! This crate stands in for the paper's experimental testbed (WRF-ARW 3.3.2
//! on IBM Blue Gene/L and Blue Gene/P): it executes the *iteration schedule*
//! of a multi-nest weather simulation — parent step, per-nest boundary
//! interpolation, `r` nested steps, feedback, periodic output — over a
//! modelled machine, producing the quantities the paper measures:
//! per-iteration integration time, I/O time, MPI_Wait time, message hops.
//!
//! Model components:
//!
//! * [`machine`] — machine presets (BG/L rack, BG/P partitions) with
//!   compute, network and I/O parameters. The WRF compute model charges
//!   each rank for its patch *including the lateral halo fringe*
//!   (`(w+2hc)(h+2hc)·t_point`), which is what makes small patches
//!   inefficient and reproduces WRF's scalability saturation (Fig. 2);
//! * [`network`] — the 3-D torus with per-link occupancy: messages reserve
//!   every link on their dimension-ordered route (virtual cut-through
//!   approximation), so contention emerges from the mapping rather than
//!   being an input parameter;
//! * [`io`] — a PnetCDF-style collective-write cost model whose
//!   per-rank metadata overhead grows with writer count (the scalability
//!   issue of Fig. 13), plus BG/L-style split files;
//! * [`sim`] — the schedule simulator for both execution strategies:
//!   the default *sequential* strategy (each nest on all ranks, one after
//!   another) and the paper's *concurrent* strategy (each nest on its own
//!   processor partition).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod machine;
pub mod network;
mod schedule;
pub mod sim;

pub use io::{IoMode, IoParams};
pub use machine::{ComputeParams, Machine, NetworkParams};
pub use network::Network;
pub use sim::{ExecStrategy, HaloEngine, IterationTrace, SimReport, Simulation};

// Observability layer (`nestwx-obs`), re-exported so simulator users can
// attach a recorder without a separate dependency.
pub use nestwx_obs::{
    AnalysisReport, HistSummary, LinkUtil, LogHistogram, NestAnalysis, NetDetail, ObsConfig,
    ObsSummary, RankShare, Recorder, StepMetrics, StepPhase, Timeline, TimelineConfig,
    SUMMARY_SCHEMA, SUMMARY_VERSION,
};

//! Compiled halo-step schedules: the compile-once, simulate-many hot path.
//!
//! [`crate::sim::Simulation`] used to rebuild the per-domain decomposition,
//! neighbour lists and torus routes on *every* halo step. All of that is a
//! pure function of the (machine, grid, mapping, domain list), so it is
//! hoisted here into flat [`CompiledStep`] tables built once per simulation:
//! one entry per sending rank (with its precomputed mean compute time) and
//! one entry per halo message (destination, payload bytes, and a slice into
//! a shared arena of precomputed torus-route link ids).
//!
//! [`run_compiled_step`] then replays a table without allocating: injection
//! times are packed into integer sort keys (positive finite `f64` bits are
//! order-isomorphic to `u64`), the pending-message and receive-time buffers
//! live in a reusable [`StepScratch`], and transfers go through
//! [`Network::transfer_routed`] with the precomputed routes.
//!
//! The replay is **bitwise identical** to the reference implementation
//! (`Simulation::halo_step_multi` with `HaloEngine::Reference`): the same
//! float expressions run in the same order, and the sort reproduces the
//! reference's stable `(inject, from, to)` ordering exactly. The
//! `(from, to)` tie-break is a pure function of the schedule, so it is
//! precomputed as a per-message *tie rank* and the hot sort handles only
//! 16-byte `(inject bits, tie rank)` pairs. The `tests/equivalence.rs`
//! suite enforces the bitwise guarantee.

use crate::machine::{unit_hash, Machine};
use crate::network::Network;
use nestwx_grid::{Decomposition, ProcGrid, Rect};
use nestwx_topo::Mapping;

/// One halo message of a compiled step: everything the network transfer
/// needs except the injection time, which depends on run state.
#[derive(Debug, Clone)]
pub(crate) struct CompiledMsg {
    /// Destination global rank.
    pub to: u32,
    /// Payload bytes.
    pub bytes: f64,
    /// Precomputed transfer cost: per-link serialisation time
    /// (`bytes / link_bw`), or the memory-copy time (`bytes / mem_bw`)
    /// when intra-node.
    pub cost: f64,
    /// `[start, end)` range into the step's link arena (empty when
    /// intra-node).
    pub links: (u32, u32),
    /// Sender and receiver share a node: memory copy, no links.
    pub intra: bool,
}

/// One sending rank of a compiled step. Its messages are contiguous in the
/// step's message table, in the reference neighbour order (W, E, N, S).
#[derive(Debug, Clone)]
pub(crate) struct CompiledSender {
    /// Global rank.
    pub g: u32,
    /// Mean compute seconds of this rank's patch (`ComputeParams::step_time`
    /// of the patch dimensions); the deterministic jitter factor is applied
    /// at replay time because it depends on the step counter.
    pub step_time: f64,
    /// Messages this sender posts.
    pub n_msgs: u32,
}

/// A compiled multi-domain halo step, replayable without allocation.
#[derive(Debug, Clone)]
pub(crate) struct CompiledStep {
    /// The `(nx, ny, region)` domain list this step was compiled from. Used
    /// as the interning key and replayed verbatim by the reference engine.
    pub domains: Vec<(u32, u32, Rect)>,
    /// Senders in reference order: per domain, per rank row-major within the
    /// domain's active region.
    pub senders: Vec<CompiledSender>,
    /// Messages stored in *tie order* — sorted by `(from, to)` — so the
    /// post-sort replay loop indexes them directly by tie rank.
    pub msgs: Vec<CompiledMsg>,
    /// Push-order message index → its tie rank (its position in `msgs`).
    /// Breaks injection-time ties exactly as the reference's stable
    /// `(inject, from, to)` sort (no `(from, to)` pair repeats in a step).
    pub tie_rank: Vec<u32>,
    /// Arena of precomputed dimension-ordered route link ids.
    pub links: Vec<u32>,
}

impl CompiledStep {
    /// Compiles the halo step of `domains` — each an `nx × ny` domain
    /// decomposed over a processor-grid rectangle — mirroring the reference
    /// implementation's traversal order exactly.
    pub fn compile(
        domains: &[(u32, u32, Rect)],
        machine: &Machine,
        grid: &ProcGrid,
        mapping: &Mapping,
    ) -> CompiledStep {
        let halo = machine.halo;
        let torus = mapping.shape.torus;
        let mut senders = Vec::new();
        let mut msgs = Vec::new();
        let mut links: Vec<u32> = Vec::new();
        // `(from << 32) | to` per message, for the tie-rank ordering.
        let mut endpoints: Vec<u64> = Vec::new();

        for &(nx, ny, region) in domains {
            // Domains smaller than the region use only the leading ranks.
            let px = region.w.min(nx);
            let py = region.h.min(ny);
            let active = Rect::new(region.x0, region.y0, px, py);
            let sub = ProcGrid::new(px, py);
            let decomp = Decomposition::new(nx, ny, sub);
            let global_ranks = grid.ranks_in(&active);

            for (local, &g) in global_ranks.iter().enumerate() {
                let patch = decomp.patch(local as u32);
                let local_coords = sub.coords_of(local as u32);
                let neighbors =
                    sub.neighbors_within(sub.rank_of(local_coords.0, local_coords.1), &sub.rect());
                let mut n_msgs = 0u32;
                for nb_local in neighbors.into_iter().flatten() {
                    let (nx_l, ny_l) = sub.coords_of(nb_local);
                    let to_g = grid.rank_of(active.x0 + nx_l, active.y0 + ny_l);
                    // Edge length: vertical neighbours exchange rows (patch
                    // width), horizontal ones exchange columns (patch
                    // height).
                    let same_row = ny_l == local_coords.1;
                    let edge = if same_row {
                        patch.region.h
                    } else {
                        patch.region.w
                    };
                    let bytes = halo.edge_bytes(edge) as f64;
                    let from_node = mapping.node_coord(g);
                    let to_node = mapping.node_coord(to_g);
                    let intra = from_node == to_node;
                    let start = links.len() as u32;
                    if !intra {
                        links.extend(torus.route(from_node, to_node));
                    }
                    let cost = if intra {
                        bytes / machine.net.mem_bw
                    } else {
                        bytes / machine.net.link_bw
                    };
                    msgs.push(CompiledMsg {
                        to: to_g,
                        bytes,
                        cost,
                        links: (start, links.len() as u32),
                        intra,
                    });
                    endpoints.push(((g as u64) << 32) | to_g as u64);
                    n_msgs += 1;
                }
                senders.push(CompiledSender {
                    g,
                    step_time: machine.compute.step_time(patch.region.w, patch.region.h),
                    n_msgs,
                });
            }
        }
        // Tie ranks: the position each message takes among all messages
        // sorted by `(from, to)`. These pairs are unique within a step
        // (each neighbour is messaged once), so the ordering is total.
        let mut by_tie: Vec<u32> = (0..msgs.len() as u32).collect();
        by_tie.sort_unstable_by_key(|&mi| endpoints[mi as usize]);
        let mut tie_rank = vec![0u32; msgs.len()];
        for (rank, &mi) in by_tie.iter().enumerate() {
            tie_rank[mi as usize] = rank as u32;
        }
        let msgs_by_tie = by_tie.iter().map(|&mi| msgs[mi as usize].clone()).collect();
        CompiledStep {
            domains: domains.to_vec(),
            senders,
            msgs: msgs_by_tie,
            tie_rank,
            links,
        }
    }
}

/// Per-step totals of the always-on observability counter core: quantities
/// the per-rank loops see anyway, accumulated into separate sums (two f64
/// adds per sender) so the step engines never have to be re-run to answer
/// "where did this step's time go". Purely additive — nothing here feeds
/// back into `ready`/`mpi_wait`, so results are bitwise identical whether
/// or not anyone reads them.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StepTotals {
    /// Σ over ranks of compute seconds this step (jittered).
    pub compute: f64,
    /// Σ over ranks of halo MPI_Wait seconds this step.
    pub wait: f64,
}

/// Reusable buffers for [`run_compiled_step`].
#[derive(Debug, Clone)]
pub(crate) struct StepScratch {
    /// `(injection-time bits, tie rank)` per pending message; sorting these
    /// 16-byte pairs reproduces the reference's stable
    /// `(inject, from, to)` message order (see [`CompiledStep::tie_rank`]).
    pending: Vec<(u64, u32)>,
    /// Ping-pong buffer for the radix passes.
    pending_tmp: Vec<(u64, u32)>,
    /// Send-completion time per sender, in sender order.
    send_done: Vec<f64>,
    /// Latest halo arrival per global rank.
    recv_latest: Vec<f64>,
    /// Counter-core totals of the most recent step (either engine).
    pub totals: StepTotals,
    /// When set, the step engines also scatter per-rank compute / wait
    /// seconds into `rank_compute` / `rank_wait` (timeline recording).
    pub record_ranks: bool,
    /// Per-rank compute seconds of the most recent step (valid only for
    /// ranks active in that step, and only when `record_ranks` is set).
    pub rank_compute: Vec<f64>,
    /// Per-rank halo MPI_Wait seconds of the most recent step (same
    /// validity as `rank_compute`).
    pub rank_wait: Vec<f64>,
}

impl StepScratch {
    /// Scratch for a simulation over `nranks` global ranks.
    pub fn new(nranks: usize) -> StepScratch {
        StepScratch {
            pending: Vec::new(),
            pending_tmp: Vec::new(),
            send_done: Vec::new(),
            recv_latest: vec![0.0; nranks],
            totals: StepTotals::default(),
            record_ranks: false,
            rank_compute: vec![0.0; nranks],
            rank_wait: vec![0.0; nranks],
        }
    }
}

/// Replays a compiled halo step: per-rank compute (with the deterministic
/// per-(rank, step) jitter), message injection in the reference's stable
/// `(inject, from, to)` order through the contended network, then the
/// receive-wait completion pass updating `ready` and `mpi_wait`.
pub(crate) fn run_compiled_step(
    cs: &CompiledStep,
    machine: &Machine,
    net: &mut Network,
    ready: &mut [f64],
    mpi_wait: &mut [f64],
    scratch: &mut StepScratch,
    step: u64,
) {
    let mpn = machine.halo.messages_per_neighbor();
    let send_ovh = mpn as f64 * machine.net.send_overhead;
    let recv_cost = machine.net.recv_overhead * mpn as f64;
    let jitter = machine.compute.jitter;

    // Injection times in push order, scattered into tie-rank slots so the
    // buffer starts in (from, to) order — the stable radix sort then
    // resolves equal times exactly like the reference's stable sort.
    scratch.pending.resize(cs.msgs.len(), (0, 0));
    scratch.send_done.clear();
    let mut compute_total = 0.0;
    let mut mi = 0usize;
    for s in &cs.senders {
        let comp = s.step_time * (1.0 + jitter * unit_hash(s.g, step));
        let t_comp = ready[s.g as usize] + comp;
        compute_total += comp;
        if scratch.record_ranks {
            scratch.rank_compute[s.g as usize] = comp;
        }
        let mut t_send = t_comp;
        for _ in 0..s.n_msgs {
            t_send += send_ovh;
            // Injection times are sums of positive terms, so their bit
            // patterns sort like the values themselves.
            let tie = cs.tie_rank[mi];
            scratch.pending[tie as usize] = (t_send.to_bits(), tie);
            mi += 1;
        }
        scratch.send_done.push(t_send);
    }
    debug_assert_eq!(mi, cs.msgs.len());

    sort_pending(&mut scratch.pending, &mut scratch.pending_tmp);
    scratch.recv_latest.fill(0.0);
    for &(bits, tie) in scratch.pending.iter() {
        let m = &cs.msgs[tie as usize];
        let inject = f64::from_bits(bits);
        let route = &cs.links[m.links.0 as usize..m.links.1 as usize];
        let arrive = net.transfer_compiled(route, m.intra, m.bytes, m.cost, mpn, recv_cost, inject);
        let slot = m.to as usize;
        if arrive > scratch.recv_latest[slot] {
            scratch.recv_latest[slot] = arrive;
        }
    }

    let mut wait_total = 0.0;
    for (s, &send_done) in cs.senders.iter().zip(&scratch.send_done) {
        let done = send_done.max(scratch.recv_latest[s.g as usize]);
        let waited = done - send_done;
        wait_total += waited;
        if scratch.record_ranks {
            scratch.rank_wait[s.g as usize] = waited;
        }
        mpi_wait[s.g as usize] += waited;
        ready[s.g as usize] = done;
    }
    scratch.totals = StepTotals {
        compute: compute_total,
        wait: wait_total,
    };
}

/// Sorts pending messages by injection-time bits, preserving the incoming
/// tie order on equal keys (the buffer enters in `(from, to)` order, so
/// the result matches the reference's stable `(inject, from, to)` sort).
///
/// Stable LSD radix sort over only the key bytes that actually differ —
/// within one step the injection times share sign, exponent and leading
/// mantissa bits, so typically fewer than half of the eight passes run.
fn sort_pending(pending: &mut Vec<(u64, u32)>, tmp: &mut Vec<(u64, u32)>) {
    let n = pending.len();
    if n <= 1 {
        return;
    }
    let mut all_or = 0u64;
    let mut all_and = !0u64;
    for &(k, _) in pending.iter() {
        all_or |= k;
        all_and &= k;
    }
    let differing = all_or ^ all_and;
    if differing == 0 {
        // All keys equal: the tie order already in the buffer is final.
        return;
    }
    if n < 128 {
        // Comparison sort wins on small steps. The full (key, tie) order
        // equals stable-by-key from any initial order because tie ranks
        // are unique.
        pending.sort_unstable();
        return;
    }
    tmp.resize(n, (0, 0));
    let mut hist = [0u32; 256];
    for byte in 0..8 {
        let shift = byte * 8;
        if (differing >> shift) & 0xff == 0 {
            continue;
        }
        hist.fill(0);
        for &(k, _) in pending.iter() {
            hist[((k >> shift) & 0xff) as usize] += 1;
        }
        let mut sum = 0u32;
        for h in hist.iter_mut() {
            let count = *h;
            *h = sum;
            sum += count;
        }
        for &e in pending.iter() {
            let b = ((e.0 >> shift) & 0xff) as usize;
            tmp[hist[b] as usize] = e;
            hist[b] += 1;
        }
        std::mem::swap(pending, tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle: full stable sort by (key, original position).
    fn sorted_by_oracle(input: &[(u64, u32)]) -> Vec<(u64, u32)> {
        let mut v = input.to_vec();
        v.sort_by_key(|&(k, t)| (k, t));
        v
    }

    #[test]
    fn sort_pending_matches_stable_sort() {
        // Deterministic pseudo-random keys with clustered high bytes (the
        // shape real injection times have) and some exact duplicates.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [0usize, 1, 2, 100, 127, 128, 500, 4096] {
            let mut input: Vec<(u64, u32)> = (0..n)
                .map(|tie| {
                    let base = 0x3fe0_0000_0000_0000u64;
                    let key = if tie % 7 == 0 {
                        base
                    } else {
                        base | (next() & 0xffff_ffff)
                    };
                    (key, tie as u32)
                })
                .collect();
            let expect = sorted_by_oracle(&input);
            let mut tmp = Vec::new();
            sort_pending(&mut input, &mut tmp);
            assert_eq!(input, expect, "n={n}");
        }
    }

    #[test]
    fn sort_pending_keeps_tie_order_on_equal_keys() {
        let mut input: Vec<(u64, u32)> = (0..300).map(|tie| (42u64, tie)).collect();
        let mut tmp = Vec::new();
        sort_pending(&mut input, &mut tmp);
        assert!(input.windows(2).all(|w| w[0].1 < w[1].1));
    }
}

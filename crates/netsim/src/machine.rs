//! Machine models: Blue Gene/L and Blue Gene/P presets.
//!
//! Parameter values are calibrated so the *shapes* of the paper's curves
//! hold (saturation of a 415×445 nest near 512 BG/L cores, per-iteration
//! times of a few seconds on 1024 cores, I/O a 20–40 % fraction at high
//! output frequency); they are not a cycle-accurate hardware description.

use crate::io::IoParams;
use nestwx_grid::HaloSpec;
use nestwx_topo::MachineShape;
use serde::{Deserialize, Serialize};

/// Compute-side cost model of one WRF integration step on one rank.
///
/// The decisive feature is the **halo fringe inflation**: WRF computes
/// tendencies on a patch extended laterally by the stencil halo, so a rank
/// owning a `w × h` patch pays for `(w + 2·halo_compute) × (h + 2·halo_compute)`
/// points. As patches shrink, the fringe dominates and scaling saturates —
/// this single mechanism reproduces Fig. 2 and the absolute sibling times of
/// Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeParams {
    /// Seconds of compute per grid point per step (includes memory stalls).
    pub time_per_point: f64,
    /// Lateral fringe depth (grid points) charged as extra compute.
    pub halo_compute: u32,
    /// Fixed per-rank per-step cost (sub-step orchestration, physics
    /// bookkeeping), seconds.
    pub fixed_per_step: f64,
    /// Relative slow-down of per-point cost once a patch's working set
    /// spills the per-core cache (0.3 = up to 30 % slower). Large patches
    /// (few ranks per domain) are memory-bound; small patches are
    /// cache-resident — the counter-force that keeps the concurrent
    /// strategy from winning when nests are large relative to the machine
    /// (Fig. 10's 1.33 % at 1024 cores).
    pub mem_penalty: f64,
    /// Patch size (points) that fits in cache; the penalty ramps linearly
    /// up to `2 × cache_points`.
    pub cache_points: f64,
    /// Relative per-step compute jitter (0.08 = ±8 %), modelling the
    /// physics load imbalance of real WRF (moist columns cost more). Drawn
    /// deterministically per (rank, step).
    pub jitter: f64,
}

impl ComputeParams {
    /// Compute seconds for one step of a `w × h` patch (mean, no jitter).
    pub fn step_time(&self, w: u32, h: u32) -> f64 {
        let raw = w as f64 * h as f64;
        let hw = (w + 2 * self.halo_compute) as f64;
        let hh = (h + 2 * self.halo_compute) as f64;
        let spill = (raw / self.cache_points - 1.0).clamp(0.0, 1.0);
        let factor = 1.0 + self.mem_penalty * spill;
        self.fixed_per_step + hw * hh * self.time_per_point * factor
    }

    /// [`ComputeParams::step_time`] with the deterministic physics jitter
    /// for (`rank`, `step`).
    pub fn step_time_jittered(&self, w: u32, h: u32, rank: u32, step: u64) -> f64 {
        self.step_time(w, h) * (1.0 + self.jitter * unit_hash(rank, step))
    }
}

/// Deterministic hash of (rank, step) to a uniform value in `[-1, 1]`
/// (splitmix64 finaliser).
pub fn unit_hash(rank: u32, step: u64) -> f64 {
    let mut z = (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ step.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// Network parameters of the torus interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkParams {
    /// Per-direction link bandwidth, bytes/s.
    pub link_bw: f64,
    /// Per-hop router latency, seconds.
    pub hop_latency: f64,
    /// Software overhead per message at the sender, seconds.
    pub send_overhead: f64,
    /// Software overhead per message at the receiver, seconds.
    pub recv_overhead: f64,
    /// Intra-node copy bandwidth, bytes/s (two ranks on one node).
    pub mem_bw: f64,
}

/// Torus shape of a Blue Gene partition: midplanes are 8×8×8 and racks
/// stack along z, so partitions of ≥ 512 nodes are `8 × 8 × (nodes/64)`;
/// smaller partitions fall back to a near-cubic factorisation.
pub fn bg_torus(nodes: u32) -> nestwx_topo::Torus {
    if nodes.is_multiple_of(64) && nodes / 64 >= 8 {
        nestwx_topo::Torus::new(8, 8, nodes / 64)
    } else {
        nestwx_topo::torus::balanced_torus(nodes)
    }
}

/// A complete machine description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Human-readable name, e.g. `"BG/L(1024)"`.
    pub name: String,
    /// Torus and cores-per-node.
    pub shape: MachineShape,
    /// Compute model.
    pub compute: ComputeParams,
    /// Network model.
    pub net: NetworkParams,
    /// I/O model.
    pub io: IoParams,
    /// Halo-exchange geometry (width, fields, levels, messages/step).
    pub halo: HaloSpec,
    /// 2-D output fields written per history frame.
    pub fields_out: u32,
    /// Vertical levels per output field.
    pub levels_out: u32,
}

impl Machine {
    /// Total MPI ranks.
    pub fn ranks(&self) -> u32 {
        self.shape.slots()
    }

    /// One rack of Blue Gene/L in virtual-node mode (1024 ranks), §4.2.1.
    pub fn bgl_rack() -> Machine {
        Machine::bgl(1024)
    }

    /// Blue Gene/L in coprocessor (CO) mode: one compute rank per node, the
    /// second core driving communication (§4.2.1). Same node count as a VN
    /// partition of `2 × ranks` cores; messaging overheads drop because the
    /// offload core handles the network stack.
    pub fn bgl_co(ranks: u32) -> Machine {
        assert!(
            ranks >= 8 && ranks.is_power_of_two(),
            "BG/L CO partition of {ranks} nodes"
        );
        let mut m = Machine::bgl(ranks * 2);
        m.name = format!("BG/L-CO({ranks})");
        m.shape.cores_per_node = 1;
        m.net.send_overhead *= 0.5;
        m.net.recv_overhead *= 0.5;
        // One rank per node: the full node memory serves one process.
        m.compute.cache_points *= 2.0;
        m
    }

    /// Blue Gene/L with `cores` ranks (power of two, ≥ 16), VN mode.
    pub fn bgl(cores: u32) -> Machine {
        assert!(
            cores >= 16 && cores.is_power_of_two(),
            "BG/L partition of {cores} cores"
        );
        let nodes = cores / 2;
        Machine {
            name: format!("BG/L({cores})"),
            shape: MachineShape {
                torus: bg_torus(nodes),
                cores_per_node: 2,
            },
            compute: ComputeParams {
                // 700 MHz PPC440: WRF sustains ≈ 40 kflop/point/step at
                // ≈ 0.13 Gflop/s effective. Calibrated against Fig. 9's
                // absolute sibling times.
                time_per_point: 300e-6,
                halo_compute: 2,
                fixed_per_step: 1.0e-3,
                mem_penalty: 0.15,
                cache_points: 1500.0,
                jitter: 0.08,
            },
            net: NetworkParams {
                link_bw: 150e6,
                hop_latency: 0.1e-6,
                send_overhead: 3.2e-6,
                recv_overhead: 3.2e-6,
                mem_bw: 2.0e9,
            },
            io: IoParams::bgl_split(),
            halo: HaloSpec::wrf_arw(),
            fields_out: 18,
            levels_out: 28,
        }
    }

    /// Blue Gene/P in SMP mode: one rank per node (§4.2.2's
    /// "one process per node with up to four threads"); the per-rank patch
    /// is large but all node memory and links serve it.
    pub fn bgp_smp(ranks: u32) -> Machine {
        assert!(
            ranks >= 16 && ranks.is_power_of_two(),
            "BG/P SMP partition of {ranks} nodes"
        );
        let mut m = Machine::bgp(ranks * 4);
        m.name = format!("BG/P-SMP({ranks})");
        m.shape.cores_per_node = 1;
        // Four threads cooperate on the patch: ~3.2× one core's throughput.
        m.compute.time_per_point /= 3.2;
        m.compute.cache_points *= 4.0;
        m
    }

    /// Blue Gene/P in Dual mode: two ranks per node, two threads each.
    pub fn bgp_dual(ranks: u32) -> Machine {
        assert!(
            ranks >= 32 && ranks.is_power_of_two(),
            "BG/P Dual partition of {ranks} ranks"
        );
        let mut m = Machine::bgp(ranks * 2);
        m.name = format!("BG/P-Dual({ranks})");
        m.shape.cores_per_node = 2;
        m.compute.time_per_point /= 1.8;
        m.compute.cache_points *= 2.0;
        m
    }

    /// Blue Gene/P in virtual-node mode with `cores` ranks (power of two,
    /// ≥ 64, up to 8192 in the paper), §4.2.2.
    pub fn bgp(cores: u32) -> Machine {
        assert!(
            cores >= 64 && cores.is_power_of_two(),
            "BG/P partition of {cores} cores"
        );
        let nodes = cores / 4;
        Machine {
            name: format!("BG/P({cores})"),
            shape: MachineShape {
                torus: bg_torus(nodes),
                cores_per_node: 4,
            },
            compute: ComputeParams {
                // 850 MHz PPC450, deeper pipelines: ≈ 1.5× BG/L per core.
                time_per_point: 200e-6,
                halo_compute: 2,
                fixed_per_step: 0.8e-3,
                mem_penalty: 0.30,
                cache_points: 1300.0,
                jitter: 0.08,
            },
            net: NetworkParams {
                link_bw: 425e6,
                hop_latency: 0.06e-6,
                send_overhead: 2.2e-6,
                recv_overhead: 2.2e-6,
                mem_bw: 4.0e9,
            },
            io: IoParams::bgp_pnetcdf(),
            halo: HaloSpec::wrf_arw(),
            fields_out: 18,
            levels_out: 28,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bgl_rack_has_1024_ranks() {
        let m = Machine::bgl_rack();
        assert_eq!(m.ranks(), 1024);
        assert_eq!(m.shape.torus.dims, [8, 8, 8]);
    }

    #[test]
    fn bgp_shapes() {
        assert_eq!(Machine::bgp(4096).ranks(), 4096);
        assert_eq!(Machine::bgp(8192).ranks(), 8192);
        assert_eq!(Machine::bgp(512).ranks(), 512);
    }

    #[test]
    fn execution_modes() {
        // CO mode: one rank per node, cheaper messaging.
        let co = Machine::bgl_co(512);
        let vn = Machine::bgl(1024);
        assert_eq!(co.ranks(), 512);
        assert_eq!(co.shape.torus.nodes(), vn.shape.torus.nodes());
        assert!(co.net.send_overhead < vn.net.send_overhead);
        // SMP: 1 rank/node with ~3.2× per-rank throughput.
        let smp = Machine::bgp_smp(256);
        let vn4 = Machine::bgp(1024);
        assert_eq!(smp.ranks(), 256);
        assert_eq!(smp.shape.torus.nodes(), vn4.shape.torus.nodes());
        assert!(smp.compute.time_per_point < vn4.compute.time_per_point);
        // Dual sits between SMP and VN in rank count on equal nodes.
        let dual = Machine::bgp_dual(512);
        assert_eq!(dual.ranks(), 512);
        assert_eq!(dual.shape.torus.nodes(), vn4.shape.torus.nodes());
    }

    #[test]
    fn co_mode_same_work_fewer_ranks_tradeoff() {
        // A node's two CO-mode flows: fewer ranks (bigger patches) but
        // cheaper messaging — per-node step time should be in the same
        // ballpark as VN mode, not wildly apart.
        let co = Machine::bgl_co(512);
        let vn = Machine::bgl(1024);
        // 415×445 domain split across ranks of each mode.
        let t_co = co.compute.step_time(415 / 16 + 1, 445 / 32 + 1);
        let t_vn = vn.compute.step_time(415 / 32 + 1, 445 / 32 + 1);
        assert!(t_co > t_vn, "CO patches are twice the size");
        assert!(t_co < 3.0 * t_vn);
    }

    #[test]
    #[should_panic]
    fn bgl_rejects_non_power_of_two() {
        Machine::bgl(1000);
    }

    #[test]
    fn step_time_fringe_inflation() {
        // The saturation mechanism: halving patch width does not halve
        // compute once the fringe dominates.
        let c = ComputeParams {
            time_per_point: 1e-6,
            halo_compute: 4,
            fixed_per_step: 0.0,
            mem_penalty: 0.0,
            cache_points: 1e9,
            jitter: 0.0,
        };
        let t_big = c.step_time(40, 40); // (48)² = 2304
        let t_half = c.step_time(20, 20); // (28)² = 784
        assert!(
            t_half > t_big / 4.0 * 1.3,
            "fringe must make scaling sub-linear"
        );
    }

    #[test]
    fn fig9_sibling_absolute_time_scale() {
        // Fig. 9: sibling 1 (394×418) on its 18×24 = 432-rank partition
        // takes ≈ 0.7 s for its 3 nested sub-steps on BG/L (compute part;
        // communication adds on top). Our compute model should land in the
        // same regime (0.3–1.0 s).
        let m = Machine::bgl_rack();
        let (w, h) = (394 / 18 + 1, 418 / 24 + 1);
        let t3 = 3.0 * m.compute.step_time(w, h);
        assert!(t3 > 0.25 && t3 < 1.1, "3 substeps = {t3:.3} s out of range");
    }

    #[test]
    fn bgl_scaling_is_sublinear() {
        // Fig. 2's shape: for a 415×445 nest, doubling ranks gains clearly
        // less than 2× and efficiency keeps dropping (diminishing returns).
        let m = Machine::bgl_rack();
        let t = |p: u32| {
            let g = nestwx_grid::ProcGrid::near_square(p);
            m.compute.step_time(415 / g.px + 1, 445 / g.py + 1)
        };
        let eff = |p: u32| t(p) / (2.0 * t(2 * p)); // 1.0 = perfect scaling
        assert!(eff(128) < 0.97);
        assert!(eff(512) < 0.92, "512→1024 efficiency {:.2}", eff(512));
        // Efficiency declines monotonically over the sweep.
        assert!(eff(512) < eff(128) + 1e-9);
    }
}

//! The iteration-schedule simulator.
//!
//! Executes the WRF nested-simulation schedule on a modelled machine:
//!
//! ```text
//! per parent iteration:
//!     parent halo step (all ranks)
//!     for each sibling nest:           (sequentially on all ranks, or
//!         boundary interpolation        concurrently on its partition)
//!         r nested halo steps
//!         feedback to parent
//!     history output every `output_interval` iterations
//! ```
//!
//! Per-rank readiness times advance through the phases; halo exchanges go
//! through the contended [`Network`]; waits (receive waits plus
//! synchronisation waits) accumulate into the MPI_Wait statistic the paper
//! reports in Table 1 and Figs. 11–12.
//!
//! Everything that is a pure function of the configuration — decompositions,
//! neighbour tables, torus routes, sub-communicator rank lists, donor and
//! feedback-release sets, interpolation/feedback costs — is compiled once in
//! [`Simulation::new`] (see the `schedule` module), so the per-step hot path
//! allocates nothing. The original rebuild-every-step implementation is kept
//! as [`HaloEngine::Reference`], the oracle the equivalence tests compare
//! against: both engines produce bitwise-identical [`SimReport`]s.

use crate::io::IoMode;
use crate::machine::Machine;
use crate::network::Network;
use crate::schedule::{run_compiled_step, CompiledStep, StepScratch, StepTotals};
use nestwx_grid::{Decomposition, NestedConfig, ProcGrid, Rect};
use nestwx_obs::{ObsConfig, Recorder, StepMetrics, StepPhase};
use nestwx_topo::Mapping;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// How the sibling nests are executed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecStrategy {
    /// WRF's default: each nest solved one after another on **all** ranks.
    Sequential,
    /// The paper's strategy: nest `i` solved on `partitions[i]` only, all
    /// nests concurrently.
    Concurrent {
        /// One processor-grid rectangle per nest, in nest order.
        partitions: Vec<Rect>,
    },
}

/// Which halo-exchange implementation [`Simulation`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HaloEngine {
    /// Replay the schedules compiled at construction (the default).
    #[default]
    Compiled,
    /// Rebuild decompositions, neighbour lists and routes every step — the
    /// original implementation, kept as the equivalence-test oracle.
    Reference,
}

/// Errors constructing a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Virtual grid rank count differs from the mapping's.
    GridMappingMismatch {
        /// Ranks in the virtual grid.
        grid: u32,
        /// Ranks in the mapping.
        mapping: u32,
    },
    /// Wrong number of partitions for the nest count.
    PartitionCount {
        /// Partitions supplied.
        got: usize,
        /// Nests configured.
        want: usize,
    },
    /// A partition rectangle is empty or out of the grid.
    BadPartition {
        /// Index of the offending partition.
        index: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::GridMappingMismatch { grid, mapping } => {
                write!(f, "virtual grid has {grid} ranks but mapping has {mapping}")
            }
            SimError::PartitionCount { got, want } => {
                write!(f, "{got} partitions for {want} nests")
            }
            SimError::BadPartition { index } => write!(f, "partition {index} invalid"),
        }
    }
}

impl std::error::Error for SimError {}

/// Results of a simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Machine name.
    pub machine: String,
    /// Parent iterations simulated.
    pub iterations: u32,
    /// Ranks used.
    pub ranks: u32,
    /// Wall-clock seconds (integration + I/O).
    pub total_time: f64,
    /// Integration wall-clock seconds.
    pub integration_time: f64,
    /// Output wall-clock seconds.
    pub io_time: f64,
    /// Σ over ranks of halo-exchange MPI_Wait seconds (waiting for
    /// neighbour halos after posting sends — the RSL exchange waits the
    /// paper's HPCT profiles report).
    pub mpi_wait_total: f64,
    /// Per-sibling nest-solve wall-clock totals (interpolation + `r` steps +
    /// feedback), seconds.
    pub sibling_solve: Vec<f64>,
    /// Wall-clock spent in parent-domain integration steps.
    pub parent_phase: f64,
    /// Wall-clock spent in the sibling nest phase (interpolation, nested
    /// steps, feedback).
    pub nest_phase: f64,
    /// Mean hops per message.
    pub avg_hops: f64,
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Payload bytes moved.
    pub bytes: f64,
}

impl SimReport {
    /// Total seconds per parent iteration.
    pub fn per_iteration(&self) -> f64 {
        self.total_time / self.iterations as f64
    }

    /// Integration seconds per parent iteration.
    pub fn integration_per_iter(&self) -> f64 {
        self.integration_time / self.iterations as f64
    }

    /// I/O seconds per parent iteration.
    pub fn io_per_iter(&self) -> f64 {
        self.io_time / self.iterations as f64
    }

    /// Mean MPI wait per rank per iteration.
    pub fn mpi_wait_per_rank_iter(&self) -> f64 {
        self.mpi_wait_total / self.ranks as f64 / self.iterations as f64
    }

    /// Sibling `i`'s nest-solve seconds per iteration.
    pub fn sibling_per_iter(&self, i: usize) -> f64 {
        self.sibling_solve[i] / self.iterations as f64
    }

    /// Percentage improvement of `self` over `baseline` in per-iteration
    /// time: positive means `self` is faster.
    pub fn improvement_over(&self, baseline: &SimReport) -> f64 {
        (1.0 - self.per_iteration() / baseline.per_iteration()) * 100.0
    }
}

/// Per-iteration timeline record produced by [`Simulation::run_traced`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationTrace {
    /// Iteration index (0-based).
    pub iteration: u32,
    /// Wall-clock when the iteration started.
    pub start: f64,
    /// Duration of the parent integration step.
    pub parent: f64,
    /// Duration of the sibling nest phase.
    pub nests: f64,
    /// Duration of the output phase (0 when no frame was written).
    pub io: f64,
    /// Halo MPI_Wait accumulated during this iteration (summed over ranks).
    pub mpi_wait: f64,
}

// ---------------------------------------------------------------------------
// Compiled iteration plans
// ---------------------------------------------------------------------------

/// A second-level nest in the sequential plan.
#[derive(Debug, Clone)]
struct SeqChild {
    idx: usize,
    refine: u32,
    step_id: usize,
    interp: f64,
    feedback: f64,
}

/// A level-1 nest in the sequential plan.
#[derive(Debug, Clone)]
struct SeqNest {
    idx: usize,
    refine: u32,
    step_id: usize,
    interp: f64,
    feedback: f64,
    children: Vec<SeqChild>,
}

/// Precompiled sequential-strategy iteration schedule.
#[derive(Debug, Clone)]
struct SeqPlan {
    items: Vec<SeqNest>,
}

/// A level-1 nest in the concurrent plan.
#[derive(Debug, Clone)]
struct ConcNest {
    idx: usize,
    /// Ranks whose parent patch overlaps this nest's footprint (the
    /// boundary-interpolation donors) — precomputed in place of the former
    /// per-iteration O(P) `ranks_overlapping` scan.
    donors: Vec<u32>,
    /// Ranks of this nest's partition, row-major.
    ranks: Vec<u32>,
    interp: f64,
    feedback: f64,
}

/// A second-level nest in the concurrent plan.
#[derive(Debug, Clone)]
struct ConcChild {
    idx: usize,
    ranks: Vec<u32>,
    interp: f64,
    feedback: f64,
}

/// One lockstep sub-step of the concurrent schedule.
#[derive(Debug, Clone)]
struct ConcSubstep {
    /// Compiled multi-domain step of the active level-1 nests.
    step_id: usize,
    /// Nest index for the step-metrics record when exactly one nest is
    /// active, `-1` for a genuine lockstep step.
    obs_tag: i32,
    /// Second-level children stepping after this sub-step (empty for most
    /// configurations).
    children: Vec<ConcChild>,
    /// Compiled multi-domain steps of the children's lockstep sub-steps.
    child_step_ids: Vec<usize>,
    /// Per-child-sub-step observability tags (single active child's index
    /// or `-1`), parallel to `child_step_ids`.
    child_obs_tags: Vec<i32>,
    /// Positions (into [`ConcPlan::level1`]) of active nests with children,
    /// which re-synchronise after their children's feedback.
    resync: Vec<usize>,
}

/// Precompiled concurrent-strategy iteration schedule.
#[derive(Debug, Clone)]
struct ConcPlan {
    level1: Vec<ConcNest>,
    substeps: Vec<ConcSubstep>,
    /// Flattened per-rank feedback-release lists: rank `g` may enter the
    /// next parent step once every nest in
    /// `release_nests[release_offsets[g]..release_offsets[g + 1]]` has fed
    /// back (the nests overlapping its halo-extended parent patch).
    release_offsets: Vec<u32>,
    release_nests: Vec<u32>,
}

/// Everything compiled once per simulation: interned halo-step tables plus
/// the strategy's iteration plan.
#[derive(Debug)]
struct Compiled {
    steps: Vec<CompiledStep>,
    parent_step: usize,
    seq: Option<SeqPlan>,
    conc: Option<ConcPlan>,
}

/// Reusable per-run buffers (hoisted out of the iteration loop).
#[derive(Debug)]
struct Scratch {
    step: StepScratch,
    starts: Vec<f64>,
    dones: Vec<f64>,
    child_start: Vec<f64>,
}

/// Interns the compiled step for `domains`, deduplicating identical domain
/// lists (e.g. every parent step, or repeated lockstep sub-steps).
fn intern_step(
    steps: &mut Vec<CompiledStep>,
    domains: Vec<(u32, u32, Rect)>,
    machine: &Machine,
    grid: &ProcGrid,
    mapping: &Mapping,
) -> usize {
    if let Some(i) = steps.iter().position(|s| s.domains == domains) {
        return i;
    }
    steps.push(CompiledStep::compile(&domains, machine, grid, mapping));
    steps.len() - 1
}

/// Boundary-interpolation cost for nest `i` (parent → nest transfer of the
/// lateral boundary zone).
fn interp_cost(config: &NestedConfig, machine: &Machine, i: usize) -> f64 {
    let nest = &config.nests[i];
    let halo = &machine.halo;
    let boundary_points = 2 * (nest.nx + nest.ny) * halo.width;
    let bytes = boundary_points as f64
        * halo.fields as f64
        * halo.levels as f64
        * halo.bytes_per_value as f64;
    0.5e-3 + bytes / machine.net.link_bw / 4.0
}

/// Feedback cost for nest `i` (nest → parent transfer of the averaged
/// interior, 1/r² of the nest's points).
fn feedback_cost(config: &NestedConfig, machine: &Machine, i: usize) -> f64 {
    let nest = &config.nests[i];
    let halo = &machine.halo;
    let r2 = (nest.refine_ratio * nest.refine_ratio) as f64;
    let bytes = nest.points() as f64 / r2
        * halo.fields as f64
        * halo.levels as f64
        * halo.bytes_per_value as f64;
    0.5e-3 + bytes / machine.net.link_bw / 8.0
}

/// Ranks whose parent patch intersects `fp` (parent coordinates).
fn ranks_overlapping(parent_patch: &[Rect], fp: &Rect) -> Vec<u32> {
    (0..parent_patch.len() as u32)
        .filter(|&g| {
            let p = parent_patch[g as usize];
            !p.is_empty() && !p.is_disjoint(fp)
        })
        .collect()
}

/// A configured simulation, ready to run (and re-run: the compiled
/// schedules are built once here, [`Simulation::reset`] +
/// [`Simulation::run_mut`] replay them from a clean state).
pub struct Simulation<'a> {
    machine: &'a Machine,
    grid: ProcGrid,
    config: &'a NestedConfig,
    strategy: ExecStrategy,
    mapping: Mapping,
    io_mode: IoMode,
    /// Output every this many parent iterations (None = no output).
    output_interval: Option<u32>,
    engine: HaloEngine,
    compiled: Arc<Compiled>,
    scratch: Scratch,
    /// Optional step-metrics recorder (`nestwx-obs`). Boxed to keep the
    /// simulation small; `None` costs one branch per step.
    obs: Option<Box<Recorder>>,
    // Run state.
    net: Network,
    ready: Vec<f64>,
    mpi_wait: Vec<f64>,
    /// Monotone step counter (for the deterministic compute jitter).
    step_counter: u64,
}

/// One aggregated halo transfer waiting to enter the network (reference
/// engine only).
struct PendingMsg {
    inject: f64,
    from: u32,
    to: u32,
    bytes: f64,
    msgs: u32,
}

impl<'a> Simulation<'a> {
    /// Builds a simulation, compiling the halo-step schedules and the
    /// iteration plan for the chosen strategy.
    ///
    /// `grid` is the virtual processor grid (its rank count must equal the
    /// mapping's); `config` the parent-with-nests setup; `strategy` and
    /// `mapping` per the planner.
    pub fn new(
        machine: &'a Machine,
        grid: ProcGrid,
        config: &'a NestedConfig,
        strategy: ExecStrategy,
        mapping: Mapping,
        io_mode: IoMode,
        output_interval: Option<u32>,
    ) -> Result<Self, SimError> {
        if grid.len() != mapping.len() {
            return Err(SimError::GridMappingMismatch {
                grid: grid.len(),
                mapping: mapping.len(),
            });
        }
        if let ExecStrategy::Concurrent { partitions } = &strategy {
            if partitions.len() != config.nests.len() {
                return Err(SimError::PartitionCount {
                    got: partitions.len(),
                    want: config.nests.len(),
                });
            }
            for (i, p) in partitions.iter().enumerate() {
                if p.is_empty() || !grid.rect().contains_rect(p) {
                    return Err(SimError::BadPartition { index: i });
                }
                // A second-level nest must run inside its parent nest's
                // partition (it sub-divides those processors).
                if let Some(pi) = config.nests[i].parent_nest {
                    if !partitions[pi].contains_rect(p) {
                        return Err(SimError::BadPartition { index: i });
                    }
                }
            }
        }
        let n = grid.len() as usize;
        // Parent decomposition (over the leading sub-grid if the parent is
        // smaller than the grid), for footprint-dependent synchronisation.
        let px = grid.px.min(config.parent.nx);
        let py = grid.py.min(config.parent.ny);
        let pd = Decomposition::new(config.parent.nx, config.parent.ny, ProcGrid::new(px, py));
        let mut parent_patch = vec![Rect::new(0, 0, 0, 0); n];
        for (local, g) in grid
            .ranks_in(&Rect::new(0, 0, px, py))
            .into_iter()
            .enumerate()
        {
            parent_patch[g as usize] = pd.patch(local as u32).region;
        }

        let compiled = compile_plans(machine, &grid, config, &strategy, &mapping, &parent_patch);
        let nests = config.nests.len();
        Ok(Simulation {
            net: Network::new(mapping.shape.torus, machine.net),
            machine,
            grid,
            config,
            strategy,
            mapping,
            io_mode,
            output_interval,
            engine: HaloEngine::Compiled,
            obs: None,
            compiled: Arc::new(compiled),
            scratch: Scratch {
                step: StepScratch::new(n),
                starts: vec![0.0; nests],
                dones: vec![0.0; nests],
                child_start: vec![0.0; nests],
            },
            ready: vec![0.0; n],
            mpi_wait: vec![0.0; n],
            step_counter: 0,
        })
    }

    /// Selects the halo-exchange engine (builder style). The default is
    /// [`HaloEngine::Compiled`]; [`HaloEngine::Reference`] re-derives
    /// everything per step and exists for equivalence testing and as the
    /// baseline of the compiled-schedule benchmarks.
    pub fn with_engine(mut self, engine: HaloEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The active halo-exchange engine.
    pub fn engine(&self) -> HaloEngine {
        self.engine
    }

    /// Attaches a step-metrics recorder (builder style). Observation is
    /// passive: [`SimReport`]s are bitwise identical with or without it
    /// (enforced by `tests/obs_equivalence.rs`).
    pub fn with_obs(mut self, config: ObsConfig) -> Self {
        self.enable_obs(config);
        self
    }

    /// Attaches (or replaces) the step-metrics recorder. A config with a
    /// timeline turns on per-rank capture in the step engines; `net_detail`
    /// turns on per-link busy accounting in the network. Both are passive.
    pub fn enable_obs(&mut self, config: ObsConfig) {
        self.obs = Some(Box::new(Recorder::new(config)));
        self.scratch.step.record_ranks = config.timeline.is_some();
        if config.net_detail {
            self.net.enable_obs();
        } else {
            self.net.disable_obs();
        }
    }

    /// The attached recorder, if any.
    pub fn obs(&self) -> Option<&Recorder> {
        self.obs.as_deref()
    }

    /// Detaches and returns the recorder with everything it collected,
    /// turning per-rank and per-link capture back off.
    pub fn take_obs(&mut self) -> Option<Recorder> {
        self.scratch.step.record_ranks = false;
        self.net.disable_obs();
        self.obs.take().map(|b| *b)
    }

    /// Halo steps executed so far (all domains of a multi-domain lockstep
    /// sub-step count as one).
    pub fn steps_taken(&self) -> u64 {
        self.step_counter
    }

    /// Clears all run state (network occupancy, readiness, waits, step
    /// counter, recorded metrics) so the compiled schedules can be
    /// replayed from scratch.
    pub fn reset(&mut self) {
        self.net.reset();
        self.ready.fill(0.0);
        self.mpi_wait.fill(0.0);
        self.step_counter = 0;
        if let Some(rec) = self.obs.as_mut() {
            rec.clear();
        }
    }

    /// Runs `iterations` parent iterations and reports.
    pub fn run(mut self, iterations: u32) -> SimReport {
        self.run_mut(iterations)
    }

    /// Like [`Simulation::run`], additionally returning a per-iteration
    /// timeline (for analysis tools and the JSON trace output).
    pub fn run_traced(mut self, iterations: u32) -> (SimReport, Vec<IterationTrace>) {
        self.run_traced_mut(iterations)
    }

    /// [`Simulation::run`] without consuming the simulation: resets the run
    /// state and replays the compiled schedules. Build once, run many.
    pub fn run_mut(&mut self, iterations: u32) -> SimReport {
        self.run_traced_mut(iterations).0
    }

    /// [`Simulation::run_traced`] without consuming the simulation.
    pub fn run_traced_mut(&mut self, iterations: u32) -> (SimReport, Vec<IterationTrace>) {
        assert!(iterations > 0);
        self.reset();
        let compiled = Arc::clone(&self.compiled);
        let nranks = self.grid.len();
        let mut io_total = 0.0;
        let mut parent_phase = 0.0;
        let mut nest_phase = 0.0;
        let mut sibling_solve = vec![0.0; self.config.nests.len()];
        let mut traces = Vec::with_capacity(iterations as usize);

        for iter in 0..iterations {
            let wait0: f64 = self.mpi_wait.iter().sum();
            // ---- parent step on the full grid ----
            let t_iter0 = self.ready.iter().copied().fold(0.0, f64::max);
            self.exec_step(&compiled.steps[compiled.parent_step], StepPhase::Parent, -1);
            let t_parent1 = self.ready.iter().copied().fold(0.0, f64::max);
            parent_phase += t_parent1 - t_iter0;

            // ---- sibling nests ----
            if let Some(seq) = &compiled.seq {
                self.run_sequential_phase(seq, &compiled.steps, &mut sibling_solve);
            } else if let Some(conc) = &compiled.conc {
                self.run_concurrent_phase(conc, &compiled.steps, &mut sibling_solve);
            }

            let t_nests1 = self.ready.iter().copied().fold(0.0, f64::max);
            nest_phase += t_nests1 - t_parent1;

            // ---- history output ----
            let mut iter_io = 0.0;
            if let Some(every) = self.output_interval {
                if (iter + 1) % every == 0 && self.io_mode != IoMode::None {
                    let t_io = self.io_phase();
                    io_total += t_io;
                    iter_io = t_io;
                    let t = self.barrier_all() + t_io;
                    self.set_all_ready(t);
                    if let Some(rec) = self.obs.as_mut() {
                        rec.record_step(StepMetrics {
                            step: self.step_counter,
                            phase: StepPhase::Io,
                            nest: -1,
                            domains: 0,
                            start: t - t_io,
                            end: t,
                            compute: 0.0,
                            halo_wait: 0.0,
                            bytes: 0.0,
                            messages: 0,
                            transfers: 0,
                            hops: 0,
                            stall: 0.0,
                        });
                    }
                }
            }
            traces.push(IterationTrace {
                iteration: iter,
                start: t_iter0,
                parent: t_parent1 - t_iter0,
                nests: t_nests1 - t_parent1,
                io: iter_io,
                mpi_wait: self.mpi_wait.iter().sum::<f64>() - wait0,
            });
            if nestwx_obs::SPANS_ENABLED {
                if let Some(rec) = self.obs.as_mut() {
                    let t_end = t_nests1 + iter_io;
                    rec.span("iteration", 0, t_iter0 * 1e6, (t_end - t_iter0) * 1e6);
                    rec.span(
                        "parent phase",
                        1,
                        t_iter0 * 1e6,
                        (t_parent1 - t_iter0) * 1e6,
                    );
                    rec.span(
                        "nest phase",
                        1,
                        t_parent1 * 1e6,
                        (t_nests1 - t_parent1) * 1e6,
                    );
                }
            }
        }

        let total_time = self.barrier_all();
        // Hand the network's per-link recordings (if enabled) to the
        // recorder, so its analysis and summary JSON can include them.
        if let Some(rec) = self.obs.as_deref_mut() {
            if let Some(detail) = self.net.clone_obs_detail() {
                rec.set_net_detail(detail);
            }
        }
        let report = SimReport {
            machine: self.machine.name.clone(),
            iterations,
            ranks: nranks,
            total_time,
            integration_time: total_time - io_total,
            io_time: io_total,
            mpi_wait_total: self.mpi_wait.iter().sum(),
            sibling_solve,
            parent_phase,
            nest_phase,
            avg_hops: self.net.avg_hops(),
            messages: self.net.messages,
            bytes: self.net.bytes,
        };
        (report, traces)
    }

    /// Level-1 nests one after another on all ranks; each of their sub-steps
    /// is followed by their second-level children's sub-steps (WRF's
    /// recursive integration).
    fn run_sequential_phase(
        &mut self,
        seq: &SeqPlan,
        steps: &[CompiledStep],
        sibling_solve: &mut [f64],
    ) {
        let mut t = self.barrier_all();
        for item in &seq.items {
            let t0 = t;
            self.set_all_ready(t + item.interp);
            for _ in 0..item.refine {
                self.exec_step(&steps[item.step_id], StepPhase::Nest, item.idx as i32);
                for child in &item.children {
                    let tc = self.barrier_all();
                    self.set_all_ready(tc + child.interp);
                    for _ in 0..child.refine {
                        self.exec_step(&steps[child.step_id], StepPhase::Child, child.idx as i32);
                    }
                    let td = self.barrier_all() + child.feedback;
                    self.set_all_ready(td);
                    sibling_solve[child.idx] += td - tc;
                }
            }
            t = self.barrier_all() + item.feedback;
            self.set_all_ready(t);
            sibling_solve[item.idx] += t - t0;
        }
    }

    /// All level-1 nests advance their sub-steps in lockstep so that truly
    /// concurrent traffic shares the network without an artificial ordering
    /// bias between siblings; after each sub-step, their second-level
    /// children run (also in lockstep) on sub-partitions of their parent's
    /// processors.
    fn run_concurrent_phase(
        &mut self,
        conc: &ConcPlan,
        steps: &[CompiledStep],
        sibling_solve: &mut [f64],
    ) {
        // Boundary interpolation: a level-1 nest can start once its own
        // ranks finished the parent step and the parent ranks overlapping
        // its footprint (the donors) have data to send.
        let mut starts = std::mem::take(&mut self.scratch.starts);
        starts.fill(0.0);
        for cn in &conc.level1 {
            let t_donor = cn
                .donors
                .iter()
                .map(|&g| self.ready[g as usize])
                .fold(0.0, f64::max);
            let t_mine = self.barrier_ranks(&cn.ranks);
            let start = t_donor.max(t_mine);
            starts[cn.idx] = start;
            let t0 = start + cn.interp;
            self.set_ready_ranks(&cn.ranks, t0);
        }
        for sub in &conc.substeps {
            self.exec_step(&steps[sub.step_id], StepPhase::Nest, sub.obs_tag);
            if !sub.children.is_empty() {
                let mut child_start = std::mem::take(&mut self.scratch.child_start);
                child_start.fill(0.0);
                for ch in &sub.children {
                    let t = self.barrier_ranks(&ch.ranks);
                    child_start[ch.idx] = t;
                    self.set_ready_ranks(&ch.ranks, t + ch.interp);
                }
                for (&sid, &tag) in sub.child_step_ids.iter().zip(&sub.child_obs_tags) {
                    self.exec_step(&steps[sid], StepPhase::Child, tag);
                }
                for ch in &sub.children {
                    let done = self.barrier_ranks(&ch.ranks) + ch.feedback;
                    self.set_ready_ranks(&ch.ranks, done);
                    sibling_solve[ch.idx] += done - child_start[ch.idx];
                }
                // The parent nest's next sub-step needs its children's
                // feedback.
                for &pos in &sub.resync {
                    let t = self.barrier_ranks(&conc.level1[pos].ranks);
                    self.set_ready_ranks(&conc.level1[pos].ranks, t);
                }
                self.scratch.child_start = child_start;
            }
        }
        let mut dones = std::mem::take(&mut self.scratch.dones);
        dones.fill(0.0);
        for cn in &conc.level1 {
            let done = self.barrier_ranks(&cn.ranks) + cn.feedback;
            self.set_ready_ranks(&cn.ranks, done);
            dones[cn.idx] = done;
            sibling_solve[cn.idx] += done - starts[cn.idx];
        }
        // Feedback release: a rank may enter the next parent step once
        // every nest overlapping its halo-extended parent patch has fed
        // back — not a global barrier. The per-rank nest lists are
        // precompiled.
        for g in 0..self.ready.len() {
            let lo = conc.release_offsets[g] as usize;
            let hi = conc.release_offsets[g + 1] as usize;
            if lo == hi {
                continue;
            }
            let mut t = self.ready[g];
            for &i in &conc.release_nests[lo..hi] {
                t = t.max(dones[i as usize]);
            }
            self.ready[g] = t;
        }
        self.scratch.starts = starts;
        self.scratch.dones = dones;
    }

    /// One halo step through the active engine. When a recorder is
    /// attached, the step's counter-core totals and network-counter deltas
    /// are captured into a [`StepMetrics`] record; all reads happen outside
    /// the engines, so the simulated times are unaffected.
    fn exec_step(&mut self, cs: &CompiledStep, phase: StepPhase, nest: i32) {
        let snap = if self.obs.is_some() {
            let start = cs
                .senders
                .iter()
                .map(|s| self.ready[s.g as usize])
                .fold(f64::INFINITY, f64::min);
            Some((
                if start.is_finite() { start } else { 0.0 },
                self.net.messages,
                self.net.transfers,
                self.net.bytes,
                self.net.hops,
                self.net.stall,
            ))
        } else {
            None
        };
        match self.engine {
            HaloEngine::Compiled => {
                self.step_counter += 1;
                run_compiled_step(
                    cs,
                    self.machine,
                    &mut self.net,
                    &mut self.ready,
                    &mut self.mpi_wait,
                    &mut self.scratch.step,
                    self.step_counter,
                );
            }
            HaloEngine::Reference => {
                let domains = cs.domains.clone();
                self.halo_step_multi(&domains);
            }
        }
        if let Some((start, msgs0, xfers0, bytes0, hops0, stall0)) = snap {
            let end = cs
                .senders
                .iter()
                .map(|s| self.ready[s.g as usize])
                .fold(start, f64::max);
            let totals = self.scratch.step.totals;
            let metrics = StepMetrics {
                step: self.step_counter,
                phase,
                nest,
                domains: cs.domains.len() as u32,
                start,
                end,
                compute: totals.compute,
                halo_wait: totals.wait,
                bytes: self.net.bytes - bytes0,
                messages: self.net.messages - msgs0,
                transfers: self.net.transfers - xfers0,
                hops: self.net.hops - hops0,
                stall: self.net.stall - stall0,
            };
            let nranks = self.ready.len() as u32;
            if let Some(rec) = self.obs.as_deref_mut() {
                if rec.wants_ranks() {
                    // Disjoint borrows: the recorder lives in `self.obs`,
                    // the per-rank scratch in `self.scratch`.
                    let sc = &self.scratch.step;
                    rec.record_rank_step(
                        nranks,
                        metrics.step,
                        nest,
                        start,
                        end,
                        cs.senders.iter().map(|s| s.g),
                        |g| sc.rank_compute[g as usize],
                        |g| sc.rank_wait[g as usize],
                    );
                }
                rec.record_step(metrics);
            }
        }
    }

    /// One integration step of several domains *simultaneously*, each
    /// decomposed over its own processor-grid rectangle: per-rank compute,
    /// then halo exchange with the four neighbours through the contended
    /// network. All domains' messages are routed in global injection order,
    /// so concurrent siblings share links without ordering bias.
    ///
    /// This is the reference engine: it re-derives decompositions and
    /// routes on every call. [`crate::schedule::run_compiled_step`] is the
    /// bitwise-equivalent replay of the precompiled tables.
    fn halo_step_multi(&mut self, domains: &[(u32, u32, Rect)]) {
        let halo = self.machine.halo;
        let mpn = halo.messages_per_neighbor();
        let send_ovh = mpn as f64 * self.machine.net.send_overhead;

        let mut pending: Vec<PendingMsg> = Vec::new();
        // (global rank, send_done) per domain, for the completion pass.
        let mut senders: Vec<(u32, f64)> = Vec::new();
        self.step_counter += 1;
        let step = self.step_counter;

        let mut compute_total = 0.0;
        for &(nx, ny, region) in domains {
            // Domains smaller than the region use only the leading ranks.
            let px = region.w.min(nx);
            let py = region.h.min(ny);
            let active = Rect::new(region.x0, region.y0, px, py);
            let sub = ProcGrid::new(px, py);
            let decomp = Decomposition::new(nx, ny, sub);
            let global_ranks = self.grid.ranks_in(&active);

            for (local, &g) in global_ranks.iter().enumerate() {
                let patch = decomp.patch(local as u32);
                let comp = self.machine.compute.step_time_jittered(
                    patch.region.w,
                    patch.region.h,
                    g,
                    step,
                );
                let t_comp = self.ready[g as usize] + comp;
                compute_total += comp;
                if self.scratch.step.record_ranks {
                    self.scratch.step.rank_compute[g as usize] = comp;
                }
                // Post sends to each existing neighbour (within the active
                // region), paying per-message software overhead serially.
                let local_coords = sub.coords_of(local as u32);
                let neighbors =
                    sub.neighbors_within(sub.rank_of(local_coords.0, local_coords.1), &sub.rect());
                let mut t_send = t_comp;
                for nb_local in neighbors.into_iter().flatten() {
                    let (nx_l, ny_l) = sub.coords_of(nb_local);
                    let to_g = self.grid.rank_of(active.x0 + nx_l, active.y0 + ny_l);
                    // Edge length: vertical neighbours exchange rows (patch
                    // width), horizontal ones exchange columns (patch
                    // height).
                    let same_row = ny_l == local_coords.1;
                    let edge = if same_row {
                        patch.region.h
                    } else {
                        patch.region.w
                    };
                    let bytes = halo.edge_bytes(edge) as f64;
                    t_send += send_ovh;
                    pending.push(PendingMsg {
                        inject: t_send,
                        from: g,
                        to: to_g,
                        bytes,
                        msgs: mpn,
                    });
                }
                senders.push((g, t_send));
            }
        }

        // Route messages in injection order for deterministic, unbiased
        // contention. `total_cmp` keeps the sort well-defined even if a
        // pathological parameter set ever produced a NaN injection time.
        pending.sort_by(|a, b| {
            a.inject
                .total_cmp(&b.inject)
                .then(a.from.cmp(&b.from))
                .then(a.to.cmp(&b.to))
        });
        let mut recv_latest: Vec<f64> = vec![0.0; self.grid.len() as usize];
        for m in pending {
            let arrive = self.net.transfer(
                self.mapping.node_coord(m.from),
                self.mapping.node_coord(m.to),
                m.bytes,
                m.msgs,
                m.inject,
            );
            let slot = m.to as usize;
            if arrive > recv_latest[slot] {
                recv_latest[slot] = arrive;
            }
        }

        let mut wait_total = 0.0;
        for (g, send_done) in senders {
            let done = send_done.max(recv_latest[g as usize]);
            let waited = done - send_done;
            wait_total += waited;
            if self.scratch.step.record_ranks {
                self.scratch.step.rank_wait[g as usize] = waited;
            }
            self.mpi_wait[g as usize] += waited;
            self.ready[g as usize] = done;
        }
        self.scratch.step.totals = StepTotals {
            compute: compute_total,
            wait: wait_total,
        };
    }

    /// History-output phase; returns its wall-clock duration.
    fn io_phase(&self) -> f64 {
        let m = self.machine;
        let parent_bytes = crate::io::frame_bytes(
            self.config.parent.nx,
            self.config.parent.ny,
            m.fields_out,
            m.levels_out,
        );
        let nranks = self.grid.len();
        let mut t = m.io.write_time(self.io_mode, nranks, parent_bytes);
        match &self.strategy {
            ExecStrategy::Sequential => {
                for nest in &self.config.nests {
                    let b = crate::io::frame_bytes(nest.nx, nest.ny, m.fields_out, m.levels_out);
                    t += m.io.write_time(self.io_mode, nranks, b);
                }
            }
            ExecStrategy::Concurrent { partitions } => {
                // Each partition writes its own nest's file; they proceed in
                // parallel, bounded by the slowest writer group.
                let mut slowest: f64 = 0.0;
                for (nest, part) in self.config.nests.iter().zip(partitions) {
                    let b = crate::io::frame_bytes(nest.nx, nest.ny, m.fields_out, m.levels_out);
                    let writers = part.area() as u32;
                    slowest = slowest.max(m.io.write_time(self.io_mode, writers, b));
                }
                t += slowest;
            }
        }
        t
    }

    /// Global synchronisation (inter-domain: feedback broadcast, output
    /// collectives). Not charged to MPI_Wait — HPCT attributes these to
    /// other MPI calls; the paper's MPI_Wait metric covers the RSL halo
    /// exchanges, which the halo-step engines account for.
    fn barrier_all(&mut self) -> f64 {
        let t = self.ready.iter().copied().fold(0.0, f64::max);
        for r in self.ready.iter_mut() {
            *r = t;
        }
        t
    }

    /// Synchronisation over a precompiled rank list (see
    /// [`Simulation::barrier_all`] for the accounting rationale).
    fn barrier_ranks(&mut self, ranks: &[u32]) -> f64 {
        let t = ranks
            .iter()
            .map(|&g| self.ready[g as usize])
            .fold(0.0, f64::max);
        for &g in ranks {
            self.ready[g as usize] = t;
        }
        t
    }

    fn set_all_ready(&mut self, t: f64) {
        for r in &mut self.ready {
            *r = t;
        }
    }

    fn set_ready_ranks(&mut self, ranks: &[u32], t: f64) {
        for &g in ranks {
            self.ready[g as usize] = t;
        }
    }
}

/// Builds the interned step tables and the iteration plan for `strategy`.
fn compile_plans(
    machine: &Machine,
    grid: &ProcGrid,
    config: &NestedConfig,
    strategy: &ExecStrategy,
    mapping: &Mapping,
    parent_patch: &[Rect],
) -> Compiled {
    let nests = &config.nests;
    let level1 = config.level1();
    let mut steps: Vec<CompiledStep> = Vec::new();
    let parent_step = intern_step(
        &mut steps,
        vec![(config.parent.nx, config.parent.ny, grid.rect())],
        machine,
        grid,
        mapping,
    );

    let (seq, conc) = match strategy {
        ExecStrategy::Sequential => {
            let items = level1
                .iter()
                .map(|&i| {
                    let children = config
                        .children_of(i)
                        .into_iter()
                        .map(|c| SeqChild {
                            idx: c,
                            refine: nests[c].refine_ratio,
                            step_id: intern_step(
                                &mut steps,
                                vec![(nests[c].nx, nests[c].ny, grid.rect())],
                                machine,
                                grid,
                                mapping,
                            ),
                            interp: interp_cost(config, machine, c),
                            feedback: feedback_cost(config, machine, c),
                        })
                        .collect();
                    SeqNest {
                        idx: i,
                        refine: nests[i].refine_ratio,
                        step_id: intern_step(
                            &mut steps,
                            vec![(nests[i].nx, nests[i].ny, grid.rect())],
                            machine,
                            grid,
                            mapping,
                        ),
                        interp: interp_cost(config, machine, i),
                        feedback: feedback_cost(config, machine, i),
                        children,
                    }
                })
                .collect();
            (Some(SeqPlan { items }), None)
        }
        ExecStrategy::Concurrent { partitions } => {
            let conc_level1: Vec<ConcNest> = level1
                .iter()
                .map(|&i| ConcNest {
                    idx: i,
                    donors: ranks_overlapping(parent_patch, &nests[i].footprint_in_parent()),
                    ranks: grid.ranks_in(&partitions[i]),
                    interp: interp_cost(config, machine, i),
                    feedback: feedback_cost(config, machine, i),
                })
                .collect();

            let max_r = level1
                .iter()
                .map(|&i| nests[i].refine_ratio)
                .max()
                .unwrap_or(0);
            let mut substeps = Vec::with_capacity(max_r as usize);
            for s in 0..max_r {
                let active: Vec<usize> = level1
                    .iter()
                    .copied()
                    .filter(|&i| s < nests[i].refine_ratio)
                    .collect();
                let domains: Vec<(u32, u32, Rect)> = active
                    .iter()
                    .map(|&i| (nests[i].nx, nests[i].ny, partitions[i]))
                    .collect();
                let step_id = intern_step(&mut steps, domains, machine, grid, mapping);
                let obs_tag = if active.len() == 1 {
                    active[0] as i32
                } else {
                    -1
                };
                // Second-level children of the nests stepping at `s`.
                let child_idx: Vec<usize> =
                    active.iter().flat_map(|&i| config.children_of(i)).collect();
                let mut children = Vec::with_capacity(child_idx.len());
                let mut child_step_ids = Vec::new();
                let mut child_obs_tags = Vec::new();
                let mut resync = Vec::new();
                if !child_idx.is_empty() {
                    for &c in &child_idx {
                        children.push(ConcChild {
                            idx: c,
                            ranks: grid.ranks_in(&partitions[c]),
                            interp: interp_cost(config, machine, c),
                            feedback: feedback_cost(config, machine, c),
                        });
                    }
                    let max_rc = child_idx
                        .iter()
                        .map(|&c| nests[c].refine_ratio)
                        .max()
                        .unwrap_or(0);
                    for cs in 0..max_rc {
                        let act: Vec<usize> = child_idx
                            .iter()
                            .copied()
                            .filter(|&c| cs < nests[c].refine_ratio)
                            .collect();
                        let sub: Vec<(u32, u32, Rect)> = act
                            .iter()
                            .map(|&c| (nests[c].nx, nests[c].ny, partitions[c]))
                            .collect();
                        child_step_ids.push(intern_step(&mut steps, sub, machine, grid, mapping));
                        child_obs_tags.push(if act.len() == 1 { act[0] as i32 } else { -1 });
                    }
                    for &i in &active {
                        if !config.children_of(i).is_empty() {
                            let pos = level1
                                .iter()
                                .position(|&j| j == i)
                                .expect("active nest is level-1");
                            resync.push(pos);
                        }
                    }
                }
                substeps.push(ConcSubstep {
                    step_id,
                    obs_tag,
                    children,
                    child_step_ids,
                    child_obs_tags,
                    resync,
                });
            }

            // Per-rank feedback-release lists.
            let halo_w = machine.halo.width;
            let n = grid.len() as usize;
            let mut release_offsets = Vec::with_capacity(n + 1);
            let mut release_nests = Vec::new();
            release_offsets.push(0u32);
            for patch in parent_patch.iter().take(n) {
                if !patch.is_empty() {
                    let expanded = Rect::new(
                        patch.x0.saturating_sub(halo_w),
                        patch.y0.saturating_sub(halo_w),
                        patch.w + 2 * halo_w,
                        patch.h + 2 * halo_w,
                    );
                    for &i in &level1 {
                        if !expanded.is_disjoint(&nests[i].footprint_in_parent()) {
                            release_nests.push(i as u32);
                        }
                    }
                }
                release_offsets.push(release_nests.len() as u32);
            }
            (
                None,
                Some(ConcPlan {
                    level1: conc_level1,
                    substeps,
                    release_offsets,
                    release_nests,
                }),
            )
        }
    };
    Compiled {
        steps,
        parent_step,
        seq,
        conc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nestwx_grid::{Domain, NestSpec};

    fn small_machine() -> Machine {
        let mut m = Machine::bgl(32);
        m.name = "test".into();
        m
    }

    fn two_nest_config() -> NestedConfig {
        NestedConfig::new(
            Domain::parent(120, 120, 24.0),
            vec![
                NestSpec::new(90, 90, 3, (2, 2)),
                NestSpec::new(90, 90, 3, (60, 60)),
            ],
        )
        .unwrap()
    }

    fn grid_and_mapping(m: &Machine) -> (ProcGrid, Mapping) {
        let grid = ProcGrid::near_square(m.ranks());
        let map = Mapping::oblivious(m.shape, m.ranks()).unwrap();
        (grid, map)
    }

    #[test]
    fn sequential_run_produces_positive_times() {
        let m = small_machine();
        let cfg = two_nest_config();
        let (grid, map) = grid_and_mapping(&m);
        let sim = Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Sequential,
            map,
            IoMode::None,
            None,
        )
        .unwrap();
        let rep = sim.run(3);
        assert!(rep.total_time > 0.0);
        assert_eq!(rep.io_time, 0.0);
        assert_eq!(rep.iterations, 3);
        assert_eq!(rep.sibling_solve.len(), 2);
        assert!(rep.sibling_solve.iter().all(|&t| t > 0.0));
        assert!(rep.messages > 0);
    }

    #[test]
    fn concurrent_beats_sequential_on_saturated_nests() {
        // Two equal nests on a machine they saturate: concurrent execution
        // on half the ranks each must be faster (the paper's core claim).
        let m = small_machine();
        let cfg = two_nest_config();
        let (grid, map) = grid_and_mapping(&m);
        let seq = Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Sequential,
            map.clone(),
            IoMode::None,
            None,
        )
        .unwrap()
        .run(3);
        let half = grid.px / 2;
        let parts = vec![
            Rect::new(0, 0, half, grid.py),
            Rect::new(half, 0, grid.px - half, grid.py),
        ];
        let conc = Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Concurrent { partitions: parts },
            map,
            IoMode::None,
            None,
        )
        .unwrap()
        .run(3);
        assert!(
            conc.total_time < seq.total_time,
            "concurrent {} !< sequential {}",
            conc.total_time,
            seq.total_time
        );
        let imp = conc.improvement_over(&seq);
        assert!(
            imp > 5.0 && imp < 60.0,
            "improvement {imp:.1}% out of plausible range"
        );
    }

    #[test]
    fn deterministic_runs() {
        let m = small_machine();
        let cfg = two_nest_config();
        let (grid, map) = grid_and_mapping(&m);
        let run = || {
            Simulation::new(
                &m,
                grid,
                &cfg,
                ExecStrategy::Sequential,
                map.clone(),
                IoMode::None,
                None,
            )
            .unwrap()
            .run(2)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.mpi_wait_total, b.mpi_wait_total);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn run_mut_replays_identically_after_reset() {
        // Build once, run many: every replay must reproduce the
        // single-shot result exactly.
        let m = small_machine();
        let cfg = two_nest_config();
        let (grid, map) = grid_and_mapping(&m);
        let mut sim = Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Sequential,
            map.clone(),
            IoMode::None,
            None,
        )
        .unwrap();
        let a = sim.run_mut(2);
        let b = sim.run_mut(2);
        assert_eq!(a, b);
        assert_eq!(sim.steps_taken(), 2 * (1 + 2 * 3));
        let fresh = Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Sequential,
            map,
            IoMode::None,
            None,
        )
        .unwrap()
        .run(2);
        assert_eq!(a, fresh);
    }

    #[test]
    fn reference_engine_matches_compiled_sequential() {
        let m = small_machine();
        let cfg = two_nest_config();
        let (grid, map) = grid_and_mapping(&m);
        let build = |engine: HaloEngine| {
            Simulation::new(
                &m,
                grid,
                &cfg,
                ExecStrategy::Sequential,
                map.clone(),
                IoMode::None,
                None,
            )
            .unwrap()
            .with_engine(engine)
        };
        let compiled = build(HaloEngine::Compiled).run(2);
        let reference = build(HaloEngine::Reference).run(2);
        assert_eq!(compiled, reference);
    }

    #[test]
    fn io_phase_adds_time_and_splits_accounting() {
        let m = small_machine();
        let cfg = two_nest_config();
        let (grid, map) = grid_and_mapping(&m);
        let no_io = Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Sequential,
            map.clone(),
            IoMode::None,
            None,
        )
        .unwrap()
        .run(4);
        let with_io = Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Sequential,
            map,
            IoMode::SplitFiles,
            Some(2),
        )
        .unwrap()
        .run(4);
        assert!(with_io.io_time > 0.0);
        assert!(with_io.total_time > no_io.total_time);
        assert!(
            (with_io.integration_time - no_io.integration_time).abs()
                < 0.05 * no_io.integration_time
        );
    }

    #[test]
    fn concurrent_io_cheaper_than_sequential_io() {
        // §4.5: fewer writers per file → better I/O for the parallel
        // strategy under PnetCDF.
        let mut m = small_machine();
        m.io = crate::io::IoParams::bgp_pnetcdf();
        let cfg = two_nest_config();
        let (grid, map) = grid_and_mapping(&m);
        let seq = Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Sequential,
            map.clone(),
            IoMode::PnetCdf,
            Some(1),
        )
        .unwrap()
        .run(3);
        let half = grid.px / 2;
        let parts = vec![
            Rect::new(0, 0, half, grid.py),
            Rect::new(half, 0, grid.px - half, grid.py),
        ];
        let conc = Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Concurrent { partitions: parts },
            map,
            IoMode::PnetCdf,
            Some(1),
        )
        .unwrap()
        .run(3);
        assert!(
            conc.io_time < seq.io_time,
            "conc io {} !< seq io {}",
            conc.io_time,
            seq.io_time
        );
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let m = small_machine();
        let cfg = two_nest_config();
        let (grid, map) = grid_and_mapping(&m);
        // Wrong partition count.
        let err = Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Concurrent {
                partitions: vec![grid.rect()],
            },
            map.clone(),
            IoMode::None,
            None,
        )
        .err()
        .unwrap();
        assert_eq!(err, SimError::PartitionCount { got: 1, want: 2 });
        // Mapping/grid mismatch.
        let small_map = Mapping::oblivious(m.shape, 16).unwrap();
        let err = Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Sequential,
            small_map,
            IoMode::None,
            None,
        )
        .err()
        .unwrap();
        assert!(matches!(err, SimError::GridMappingMismatch { .. }));
    }

    #[test]
    fn trace_records_cover_the_run() {
        let m = small_machine();
        let cfg = two_nest_config();
        let (grid, map) = grid_and_mapping(&m);
        let (rep, traces) = Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Sequential,
            map,
            IoMode::SplitFiles,
            Some(2),
        )
        .unwrap()
        .run_traced(4);
        assert_eq!(traces.len(), 4);
        // Starts are monotone; io appears only on output iterations.
        for w in traces.windows(2) {
            assert!(w[1].start > w[0].start);
        }
        assert_eq!(traces[0].io, 0.0);
        assert!(traces[1].io > 0.0);
        // Trace sums match the aggregate report.
        let t_parent: f64 = traces.iter().map(|t| t.parent).sum();
        let t_io: f64 = traces.iter().map(|t| t.io).sum();
        let t_wait: f64 = traces.iter().map(|t| t.mpi_wait).sum();
        assert!((t_parent - rep.parent_phase).abs() < 1e-9);
        assert!((t_io - rep.io_time).abs() < 1e-9);
        assert!((t_wait - rep.mpi_wait_total).abs() < 1e-6);
    }

    #[test]
    fn phase_breakdown_covers_integration_time() {
        let m = small_machine();
        let cfg = two_nest_config();
        let (grid, map) = grid_and_mapping(&m);
        let rep = Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Sequential,
            map,
            IoMode::None,
            None,
        )
        .unwrap()
        .run(3);
        assert!(rep.parent_phase > 0.0);
        assert!(
            rep.nest_phase > rep.parent_phase,
            "nests dominate (r=3, two nests)"
        );
        let sum = rep.parent_phase + rep.nest_phase;
        assert!(
            (sum - rep.integration_time).abs() < 0.05 * rep.integration_time,
            "phases {sum} vs integration {}",
            rep.integration_time
        );
    }

    #[test]
    fn mpi_wait_positive_and_bounded() {
        let m = small_machine();
        let cfg = two_nest_config();
        let (grid, map) = grid_and_mapping(&m);
        let rep = Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Sequential,
            map,
            IoMode::None,
            None,
        )
        .unwrap()
        .run(2);
        assert!(rep.mpi_wait_total > 0.0);
        // Wait cannot exceed ranks × wall-clock.
        assert!(rep.mpi_wait_total < rep.ranks as f64 * rep.total_time);
    }

    #[test]
    fn nest_smaller_than_grid_handled() {
        // A 10×10 nest on a 32-rank machine: only 10×… ranks can be active;
        // must not panic and must still progress.
        let m = small_machine();
        let cfg = NestedConfig::new(
            Domain::parent(120, 120, 24.0),
            vec![NestSpec::new(10, 10, 3, (5, 5))],
        )
        .unwrap();
        let (grid, map) = grid_and_mapping(&m);
        let rep = Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Sequential,
            map,
            IoMode::None,
            None,
        )
        .unwrap()
        .run(2);
        assert!(rep.total_time > 0.0);
    }
}

//! Torus network with per-link occupancy.
//!
//! Messages traverse their dimension-ordered route hop by hop: each link on
//! the route is held for the message's serialisation time and a busy link
//! delays the message head locally (cut-through per hop). Contention
//! therefore emerges from the traffic pattern and the mapping — exactly the
//! effect the paper's topology-aware mappings exploit ("the average number
//! of hops decreases resulting in lesser load on the network … lesser
//! congestion and smaller delay", §4.3.2).

use crate::machine::NetworkParams;
use nestwx_obs::NetDetail;
use nestwx_topo::torus::{NodeCoord, Torus};

/// Mutable network state: one busy-until time per directed link.
#[derive(Debug, Clone)]
pub struct Network {
    torus: Torus,
    params: NetworkParams,
    busy_until: Vec<f64>,
    /// Reusable route buffer for [`Network::transfer`].
    route_scratch: Vec<u32>,
    /// Optional per-link / per-message detail recording. Purely additive —
    /// nothing here feeds back into transfer times.
    obs: Option<Box<NetDetail>>,
    /// Total messages transferred.
    pub messages: u64,
    /// Aggregate transfers (a transfer batches many messages).
    pub transfers: u64,
    /// Total payload bytes transferred.
    pub bytes: f64,
    /// Total hops traversed.
    pub hops: u64,
    /// Total seconds message heads spent queued behind busy links — the
    /// contention-stall counter of the observability layer. Purely
    /// additive: it never feeds back into transfer times.
    pub stall: f64,
}

impl Network {
    /// A quiet network.
    pub fn new(torus: Torus, params: NetworkParams) -> Network {
        Network {
            torus,
            params,
            busy_until: vec![0.0; torus.num_links() as usize],
            route_scratch: Vec::new(),
            obs: None,
            messages: 0,
            transfers: 0,
            bytes: 0.0,
            hops: 0,
            stall: 0.0,
        }
    }

    /// Resets link occupancy and counters (recorded detail included, when
    /// enabled).
    pub fn reset(&mut self) {
        self.busy_until.fill(0.0);
        self.messages = 0;
        self.transfers = 0;
        self.bytes = 0.0;
        self.hops = 0;
        self.stall = 0.0;
        if let Some(o) = &mut self.obs {
            o.clear();
        }
    }

    /// Turns per-link busy accounting and message-latency recording on.
    pub fn enable_obs(&mut self) {
        if self.obs.is_none() {
            self.obs = Some(Box::new(NetDetail::new(
                self.torus.dims,
                self.torus.num_links() as usize,
            )));
        }
    }

    /// Turns detail recording off and discards what was recorded.
    pub fn disable_obs(&mut self) {
        self.obs = None;
    }

    /// The recorded detail, when enabled.
    pub fn obs_detail(&self) -> Option<&NetDetail> {
        self.obs.as_deref()
    }

    /// A snapshot (clone) of the recorded detail, when enabled.
    pub fn clone_obs_detail(&self) -> Option<NetDetail> {
        self.obs.as_deref().cloned()
    }

    /// The modelled parameters.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// Transfers an aggregate of `msgs` messages totalling `bytes` from
    /// node `from` to node `to`, with injection starting at `inject`
    /// (sender-side software overhead already paid by the caller).
    /// Returns the time the payload is available at the receiver
    /// (receiver-side overhead included).
    pub fn transfer(
        &mut self,
        from: NodeCoord,
        to: NodeCoord,
        bytes: f64,
        msgs: u32,
        inject: f64,
    ) -> f64 {
        if from == to {
            self.messages += msgs as u64;
            self.transfers += 1;
            self.bytes += bytes;
            // Intra-node: memory copy.
            let t = inject + bytes / self.params.mem_bw + self.params.recv_overhead * msgs as f64;
            if let Some(o) = &mut self.obs {
                o.msg_latency.record(t - inject);
            }
            return t;
        }
        let mut route = std::mem::take(&mut self.route_scratch);
        self.torus.route_into(from, to, &mut route);
        let t = self.transfer_routed(&route, false, bytes, msgs, inject);
        self.route_scratch = route;
        t
    }

    /// [`Network::transfer`] over a route computed ahead of time (e.g. from
    /// a compiled halo schedule). `intra` marks an intra-node copy, for
    /// which `route` must be empty.
    pub fn transfer_routed(
        &mut self,
        route: &[u32],
        intra: bool,
        bytes: f64,
        msgs: u32,
        inject: f64,
    ) -> f64 {
        self.messages += msgs as u64;
        self.transfers += 1;
        self.bytes += bytes;
        if intra {
            debug_assert!(route.is_empty());
            let t = inject + bytes / self.params.mem_bw + self.params.recv_overhead * msgs as f64;
            if let Some(o) = &mut self.obs {
                o.msg_latency.record(t - inject);
            }
            return t;
        }
        self.hops += route.len() as u64;
        // Per-hop queuing: the head of the message advances link by link,
        // waiting out each link's current occupancy; each link is then held
        // for the serialisation time. (Cut-through per hop: downstream
        // links are not re-reserved when an upstream link stalls, so
        // convoys stay local.)
        let ser = bytes / self.params.link_bw;
        let mut head = inject;
        let mut stalled = 0.0;
        let mut obs = self.obs.as_deref_mut();
        for &l in route {
            let start = head.max(self.busy_until[l as usize]);
            stalled += start - head;
            self.busy_until[l as usize] = start + ser;
            if let Some(o) = obs.as_deref_mut() {
                o.link_busy[l as usize] += ser;
            }
            head = start + self.params.hop_latency;
        }
        self.stall += stalled;
        let t = head + ser + self.params.recv_overhead * msgs as f64;
        if let Some(o) = obs {
            o.msg_latency.record(t - inject);
        }
        t
    }

    /// [`Network::transfer_routed`] with the per-transfer arithmetic hoisted
    /// to compile time: `cost` is the serialisation time `bytes / link_bw`
    /// (or the memory-copy time `bytes / mem_bw` when `intra`), `recv_cost`
    /// is `recv_overhead * msgs`. Produces bitwise-identical times — the
    /// precomputed values come from the same expressions.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn transfer_compiled(
        &mut self,
        route: &[u32],
        intra: bool,
        bytes: f64,
        cost: f64,
        msgs: u32,
        recv_cost: f64,
        inject: f64,
    ) -> f64 {
        self.messages += msgs as u64;
        self.transfers += 1;
        self.bytes += bytes;
        if intra {
            debug_assert!(route.is_empty());
            let t = inject + cost + recv_cost;
            if let Some(o) = &mut self.obs {
                o.msg_latency.record(t - inject);
            }
            return t;
        }
        self.hops += route.len() as u64;
        let mut head = inject;
        let mut stalled = 0.0;
        let mut obs = self.obs.as_deref_mut();
        for &l in route {
            let start = head.max(self.busy_until[l as usize]);
            stalled += start - head;
            self.busy_until[l as usize] = start + cost;
            if let Some(o) = obs.as_deref_mut() {
                o.link_busy[l as usize] += cost;
            }
            head = start + self.params.hop_latency;
        }
        self.stall += stalled;
        let t = head + cost + recv_cost;
        if let Some(o) = obs {
            o.msg_latency.record(t - inject);
        }
        t
    }

    /// Average hops per point-to-point transfer so far — the paper's
    /// "average number of hops" metric (Fig. 12b).
    pub fn avg_hops(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.hops as f64 / self.transfers as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> NetworkParams {
        NetworkParams {
            link_bw: 100e6,
            hop_latency: 1e-6,
            send_overhead: 2e-6,
            recv_overhead: 2e-6,
            mem_bw: 1e9,
        }
    }

    #[test]
    fn uncontended_transfer_time() {
        let mut net = Network::new(Torus::new(4, 4, 4), params());
        let a = NodeCoord::new(0, 0, 0);
        let b = NodeCoord::new(2, 0, 0); // 2 hops
        let t = net.transfer(a, b, 1e6, 1, 0.0);
        // ser = 1e6/100e6 = 10 ms; + 2 hops × 1 µs + recv 2 µs.
        assert!((t - (0.01 + 2e-6 + 2e-6)).abs() < 1e-9);
        assert_eq!(net.hops, 2);
    }

    #[test]
    fn intra_node_transfer_uses_memory() {
        let mut net = Network::new(Torus::new(4, 4, 4), params());
        let a = NodeCoord::new(1, 1, 1);
        let t = net.transfer(a, a, 1e6, 1, 0.0);
        assert!((t - (1e6 / 1e9 + 2e-6)).abs() < 1e-12);
        assert_eq!(net.hops, 0);
    }

    #[test]
    fn contention_serialises_messages() {
        let mut net = Network::new(Torus::new(4, 4, 4), params());
        let a = NodeCoord::new(0, 0, 0);
        let b = NodeCoord::new(1, 0, 0);
        let t1 = net.transfer(a, b, 1e6, 1, 0.0);
        // Second message on the same link at the same time must queue.
        let t2 = net.transfer(a, b, 1e6, 1, 0.0);
        assert!(t2 > t1 + 0.009, "second transfer not delayed: {t2} vs {t1}");
    }

    #[test]
    fn disjoint_routes_do_not_interfere() {
        let mut net = Network::new(Torus::new(4, 4, 4), params());
        let t1 = net.transfer(
            NodeCoord::new(0, 0, 0),
            NodeCoord::new(1, 0, 0),
            1e6,
            1,
            0.0,
        );
        let t2 = net.transfer(
            NodeCoord::new(0, 2, 2),
            NodeCoord::new(1, 2, 2),
            1e6,
            1,
            0.0,
        );
        assert!((t1 - t2).abs() < 1e-12);
    }

    #[test]
    fn longer_routes_risk_more_contention() {
        // A far pair crossing a loaded region is delayed; a near pair not.
        let mut net = Network::new(Torus::new(8, 1, 1), params());
        // Load the link 2→3.
        net.transfer(
            NodeCoord::new(2, 0, 0),
            NodeCoord::new(3, 0, 0),
            8e6,
            1,
            0.0,
        );
        let far = net.transfer(
            NodeCoord::new(0, 0, 0),
            NodeCoord::new(4, 0, 0),
            1e6,
            1,
            0.0,
        );
        let mut quiet = Network::new(Torus::new(8, 1, 1), params());
        let far_quiet = quiet.transfer(
            NodeCoord::new(0, 0, 0),
            NodeCoord::new(4, 0, 0),
            1e6,
            1,
            0.0,
        );
        assert!(far > far_quiet);
    }

    #[test]
    fn transfer_routed_matches_transfer() {
        let torus = Torus::new(4, 4, 4);
        let mut a = Network::new(torus, params());
        let mut b = Network::new(torus, params());
        let pairs = [
            (NodeCoord::new(0, 0, 0), NodeCoord::new(2, 3, 1)),
            (NodeCoord::new(0, 0, 0), NodeCoord::new(2, 3, 1)), // contended repeat
            (NodeCoord::new(1, 1, 1), NodeCoord::new(1, 1, 1)), // intra-node
            (NodeCoord::new(3, 0, 2), NodeCoord::new(0, 1, 2)),
        ];
        for (i, &(from, to)) in pairs.iter().enumerate() {
            let bytes = 1e5 * (i + 1) as f64;
            let inject = 1e-4 * i as f64;
            let t_ref = a.transfer(from, to, bytes, 3, inject);
            let route = torus.route(from, to);
            let t_pre = b.transfer_routed(&route, from == to, bytes, 3, inject);
            assert_eq!(t_ref, t_pre);
        }
        assert_eq!(a.hops, b.hops);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.bytes, b.bytes);
    }

    #[test]
    fn stall_counts_queuing_only() {
        let mut net = Network::new(Torus::new(4, 4, 4), params());
        let a = NodeCoord::new(0, 0, 0);
        let b = NodeCoord::new(1, 0, 0);
        net.transfer(a, b, 1e6, 1, 0.0);
        assert_eq!(net.stall, 0.0, "uncontended transfer must not stall");
        net.transfer(a, b, 1e6, 1, 0.0);
        // Second message queues behind the first's serialisation (~10 ms).
        assert!(net.stall > 0.009, "stall {} too small", net.stall);
        let before = net.stall;
        net.transfer(a, a, 1e6, 1, 0.0); // intra-node: no links, no stall
        assert_eq!(net.stall, before);
    }

    #[test]
    fn obs_detail_records_links_and_latency_without_changing_times() {
        let torus = Torus::new(4, 4, 4);
        let mut plain = Network::new(torus, params());
        let mut observed = Network::new(torus, params());
        observed.enable_obs();
        let pairs = [
            (NodeCoord::new(0, 0, 0), NodeCoord::new(2, 1, 0)),
            (NodeCoord::new(0, 0, 0), NodeCoord::new(2, 1, 0)),
            (NodeCoord::new(1, 1, 1), NodeCoord::new(1, 1, 1)),
        ];
        for (i, &(from, to)) in pairs.iter().enumerate() {
            let t0 = plain.transfer(from, to, 1e5, 2, 1e-4 * i as f64);
            let t1 = observed.transfer(from, to, 1e5, 2, 1e-4 * i as f64);
            assert_eq!(t0, t1, "detail recording must not change times");
        }
        let d = observed.obs_detail().expect("detail on");
        assert_eq!(d.msg_latency.count(), 3);
        assert!(d.msg_latency.min() > 0.0);
        let busy: f64 = d.link_busy.iter().sum();
        // Two 3-hop routed transfers at ser = 1e5/100e6 = 1 ms per link.
        assert!((busy - 6e-3).abs() < 1e-12, "busy {busy}");
        observed.reset();
        let d = observed.obs_detail().unwrap();
        assert_eq!(d.msg_latency.count(), 0);
        assert_eq!(d.link_busy.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut net = Network::new(Torus::new(4, 4, 4), params());
        net.transfer(
            NodeCoord::new(0, 0, 0),
            NodeCoord::new(2, 2, 2),
            1e6,
            3,
            0.0,
        );
        assert_eq!(net.transfers, 1);
        assert_eq!(net.messages, 3);
        net.reset();
        assert_eq!(net.messages, 0);
        assert_eq!(net.transfers, 0);
        assert_eq!(net.avg_hops(), 0.0);
        let t = net.transfer(
            NodeCoord::new(0, 0, 0),
            NodeCoord::new(1, 0, 0),
            1e6,
            1,
            0.0,
        );
        assert!(t < 0.011);
    }
}

//! Parallel output cost model.
//!
//! §4.5: "PnetCDF has scalability issues as the number of MPI ranks
//! increases and could be a real bottleneck … In the parallel execution
//! case, only a subset of the MPI ranks take part in writing out a
//! particular output file and thus, this results in better I/O performance."
//!
//! The collective-write model has a metadata/synchronisation term that
//! grows with the number of writers and a data term bounded by the
//! aggregate bandwidth of the I/O nodes; the BG/L split-file mode writes one
//! file per rank at per-rank disk bandwidth.

use serde::{Deserialize, Serialize};

/// Which output path a simulation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoMode {
    /// No history output.
    None,
    /// PnetCDF collective writes (BG/P runs, §4.2.3).
    PnetCdf,
    /// One file per rank (the BG/L "split I/O option").
    SplitFiles,
}

/// Parameters of the output model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoParams {
    /// Fixed cost per collective write (file open, header sync), seconds.
    pub meta_base: f64,
    /// Per-writer metadata/synchronisation cost, seconds — the term that
    /// makes PnetCDF writes *grow* with rank count (Fig. 13b).
    pub meta_per_rank: f64,
    /// Aggregate streaming bandwidth of one I/O node, bytes/s.
    pub stream_bw: f64,
    /// Number of I/O nodes available to the partition.
    pub io_streams: u32,
    /// Per-file overhead in split mode, seconds.
    pub split_file_overhead: f64,
    /// Per-rank disk bandwidth in split mode, bytes/s.
    pub split_bw: f64,
}

impl IoParams {
    /// BG/P PnetCDF defaults (pset ratio 1:64ish).
    pub fn bgp_pnetcdf() -> IoParams {
        IoParams {
            meta_base: 0.08,
            meta_per_rank: 0.9e-3,
            stream_bw: 350e6,
            io_streams: 8,
            split_file_overhead: 0.05,
            split_bw: 20e6,
        }
    }

    /// BG/L split-file defaults.
    pub fn bgl_split() -> IoParams {
        IoParams {
            meta_base: 0.1,
            meta_per_rank: 1.2e-3,
            stream_bw: 200e6,
            io_streams: 4,
            split_file_overhead: 0.04,
            split_bw: 15e6,
        }
    }

    /// Wall-clock seconds for `writers` ranks to collectively write `bytes`
    /// of history via PnetCDF.
    pub fn pnetcdf_write(&self, writers: u32, bytes: f64) -> f64 {
        assert!(writers > 0);
        let agg_bw = self.stream_bw * self.io_streams.min(writers) as f64;
        self.meta_base + self.meta_per_rank * writers as f64 + bytes / agg_bw
    }

    /// Wall-clock seconds for `writers` ranks to each write their share of
    /// `bytes` into per-rank files.
    pub fn split_write(&self, writers: u32, bytes: f64) -> f64 {
        assert!(writers > 0);
        self.split_file_overhead + (bytes / writers as f64) / self.split_bw
    }

    /// Write time under `mode`.
    pub fn write_time(&self, mode: IoMode, writers: u32, bytes: f64) -> f64 {
        match mode {
            IoMode::None => 0.0,
            IoMode::PnetCdf => self.pnetcdf_write(writers, bytes),
            IoMode::SplitFiles => self.split_write(writers, bytes),
        }
    }
}

/// History frame size of an `nx × ny` domain with `fields` output fields of
/// `levels` levels (single precision).
pub fn frame_bytes(nx: u32, ny: u32, fields: u32, levels: u32) -> f64 {
    nx as f64 * ny as f64 * fields as f64 * levels as f64 * 4.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pnetcdf_grows_with_writers() {
        // Fig. 13(b): per-iteration PnetCDF time steadily increases with
        // rank count for a fixed payload.
        let io = IoParams::bgp_pnetcdf();
        let b = frame_bytes(415, 445, 18, 28);
        let t512 = io.pnetcdf_write(512, b);
        let t4096 = io.pnetcdf_write(4096, b);
        let t8192 = io.pnetcdf_write(8192, b);
        assert!(t4096 > t512);
        assert!(t8192 > t4096);
    }

    #[test]
    fn fewer_writers_cheaper_beyond_stream_saturation() {
        // The concurrent-sibling I/O win: 256 writers beat 4096 writers for
        // the same bytes once the stream bandwidth is saturated.
        let io = IoParams::bgp_pnetcdf();
        let b = frame_bytes(300, 300, 18, 28);
        assert!(io.pnetcdf_write(256, b) < io.pnetcdf_write(4096, b));
    }

    #[test]
    fn split_mode_roughly_flat_in_writers() {
        let io = IoParams::bgl_split();
        let b = frame_bytes(415, 445, 18, 28);
        let t512 = io.split_write(512, b);
        let t1024 = io.split_write(1024, b);
        // More writers never hurt in split mode (less data per rank).
        assert!(t1024 <= t512);
    }

    #[test]
    fn frame_bytes_formula() {
        assert_eq!(frame_bytes(10, 10, 2, 3), 10.0 * 10.0 * 2.0 * 3.0 * 4.0);
    }

    #[test]
    fn none_mode_is_free() {
        let io = IoParams::bgp_pnetcdf();
        assert_eq!(io.write_time(IoMode::None, 1024, 1e9), 0.0);
    }

    #[test]
    fn data_term_bounded_by_streams() {
        // Doubling writers beyond io_streams does not increase aggregate
        // bandwidth.
        let io = IoParams::bgp_pnetcdf();
        let b = 1e9;
        let data_t = |w: u32| io.pnetcdf_write(w, b) - io.meta_base - io.meta_per_rank * w as f64;
        assert!((data_t(64) - data_t(128)).abs() < 1e-9);
        // But fewer writers than streams do see lower bandwidth.
        assert!(data_t(2) > data_t(64));
    }
}

//! The observability layer must be passive: attaching a [`Recorder`] may
//! not perturb the simulation (bitwise-identical [`SimReport`]s with
//! observation on or off, for both engines and strategies), and the
//! recorded per-step deltas must re-derive the report's own aggregates.

use nestwx_grid::{Domain, NestSpec, NestedConfig, ProcGrid, Rect};
use nestwx_netsim::{ExecStrategy, HaloEngine, IoMode, Machine, ObsConfig, Simulation, StepPhase};
use nestwx_topo::Mapping;

fn two_nest_config() -> NestedConfig {
    NestedConfig::new(
        Domain::parent(120, 120, 24.0),
        vec![
            NestSpec::new(90, 90, 3, (2, 2)),
            NestSpec::new(90, 90, 3, (60, 60)),
        ],
    )
    .unwrap()
}

fn build<'a>(
    machine: &'a Machine,
    config: &'a NestedConfig,
    strategy: ExecStrategy,
    engine: HaloEngine,
    io_mode: IoMode,
    output_interval: Option<u32>,
) -> Simulation<'a> {
    let grid = ProcGrid::near_square(machine.ranks());
    let mapping = Mapping::oblivious(machine.shape, machine.ranks()).unwrap();
    Simulation::new(
        machine,
        grid,
        config,
        strategy,
        mapping,
        io_mode,
        output_interval,
    )
    .unwrap()
    .with_engine(engine)
}

fn concurrent(grid: ProcGrid) -> ExecStrategy {
    let half = grid.px / 2;
    ExecStrategy::Concurrent {
        partitions: vec![
            Rect::new(0, 0, half, grid.py),
            Rect::new(half, 0, grid.px - half, grid.py),
        ],
    }
}

#[test]
fn reports_bitwise_identical_with_and_without_obs() {
    let m = Machine::bgl(32);
    let cfg = two_nest_config();
    let grid = ProcGrid::near_square(m.ranks());
    for engine in [HaloEngine::Compiled, HaloEngine::Reference] {
        for strategy in [ExecStrategy::Sequential, concurrent(grid)] {
            let plain = build(
                &m,
                &cfg,
                strategy.clone(),
                engine,
                IoMode::SplitFiles,
                Some(2),
            )
            .run(4);
            for obs_cfg in [ObsConfig::counters(), ObsConfig::detailed()] {
                let observed = build(
                    &m,
                    &cfg,
                    strategy.clone(),
                    engine,
                    IoMode::SplitFiles,
                    Some(2),
                )
                .with_obs(obs_cfg)
                .run(4);
                assert_eq!(
                    plain, observed,
                    "observation perturbed {engine:?} (cfg {obs_cfg:?})"
                );
            }
        }
    }
}

#[test]
fn detailed_recording_captures_ranks_and_links() {
    let m = Machine::bgl(32);
    let cfg = two_nest_config();
    let mut sim = build(
        &m,
        &cfg,
        ExecStrategy::Sequential,
        HaloEngine::Compiled,
        IoMode::None,
        None,
    )
    .with_obs(ObsConfig::detailed());
    let report = sim.run_mut(4);
    let rec = sim.obs().unwrap();

    // Timeline: every halo step recorded, lanes sized to the machine.
    let tl = rec.timeline().expect("timeline on");
    assert_eq!(tl.recorded_steps(), sim.steps_taken());
    assert_eq!(tl.nranks(), m.ranks());

    // Per-rank wait histogram holds one sample per (active rank, step).
    assert!(rec.hist_rank_wait().count() > 0);

    // Net detail: one latency sample per transfer; link busy where routed.
    let net = rec.net_detail().expect("net detail on");
    assert_eq!(net.msg_latency.count(), rec.summary().transfers);
    assert!(net.link_busy.iter().sum::<f64>() > 0.0);

    // The analysis agrees with the report's broad shape.
    let analysis = rec.analysis();
    assert!(analysis.overall_imbalance >= 1.0);
    assert_eq!(analysis.per_nest.len(), 2);
    let links = analysis.links.expect("link analysis present");
    assert!(links.active_links > 0 && links.active_links <= links.links);
    assert!(links.max_util > 0.0 && links.max_util <= 1.0);
    assert!(!links.top.is_empty());

    // Step-time histogram covers every non-I/O step.
    assert_eq!(rec.hist_step_time().count(), rec.summary().steps);
    assert!(rec.hist_step_time().max() <= report.total_time);

    // Replay keeps detailed recordings idempotent.
    let frames1 = rec.timeline().unwrap().frames();
    sim.run_mut(4);
    assert_eq!(sim.obs().unwrap().timeline().unwrap().frames(), frames1);
    assert_eq!(
        sim.obs().unwrap().net_detail().unwrap().msg_latency.count(),
        sim.obs().unwrap().summary().transfers
    );
}

#[test]
fn per_nest_time_ratios_match_between_engines_and_summary() {
    // The analysis' time ratios are the allocator's Algorithm-1 input;
    // they must be identical however the run was executed.
    let m = Machine::bgl(32);
    let cfg = two_nest_config();
    let mut ratios = Vec::new();
    for engine in [HaloEngine::Compiled, HaloEngine::Reference] {
        let mut sim = build(
            &m,
            &cfg,
            ExecStrategy::Sequential,
            engine,
            IoMode::None,
            None,
        )
        .with_obs(ObsConfig::detailed());
        sim.run_mut(4);
        let analysis = sim.obs().unwrap().analysis();
        assert_eq!(analysis.per_nest.len(), 2);
        let sum: f64 = analysis.per_nest.iter().map(|n| n.time_ratio).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Both nests are 90×90 at the same refinement: near-even split.
        for n in &analysis.per_nest {
            assert!(
                (n.time_ratio - 0.5).abs() < 0.05,
                "nest {} ratio {}",
                n.nest,
                n.time_ratio
            );
            assert!(n.imbalance >= 1.0);
        }
        ratios.push(
            analysis
                .per_nest
                .iter()
                .map(|n| n.time_ratio)
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(ratios[0], ratios[1], "engines disagree on time ratios");
}

#[test]
fn recorded_totals_rederive_report_metrics() {
    let m = Machine::bgl(32);
    let cfg = two_nest_config();
    let grid = ProcGrid::near_square(m.ranks());
    let mut sim = build(
        &m,
        &cfg,
        concurrent(grid),
        HaloEngine::Compiled,
        IoMode::None,
        None,
    )
    .with_obs(ObsConfig::counters());
    let report = sim.run_mut(4);
    let steps_taken = sim.steps_taken();
    let s = sim.obs().unwrap().summary().clone();

    // Integer counters and integer-valued byte counts telescope exactly.
    assert_eq!(s.steps, steps_taken);
    assert_eq!(s.messages, report.messages);
    assert_eq!(s.bytes, report.bytes);
    assert_eq!(s.avg_hops(), report.avg_hops);

    // Halo-wait totals are the same waits summed in a different order
    // (per-step deltas vs one whole-run accumulator), so compare with a
    // tight relative tolerance instead of `==`.
    let rel = (s.halo_wait - report.mpi_wait_total).abs() / report.mpi_wait_total.max(1e-30);
    assert!(
        rel < 1e-9,
        "recorded halo_wait {} vs report mpi_wait_total {} (rel {rel:e})",
        s.halo_wait,
        report.mpi_wait_total
    );

    // Lockstep multi-nest sub-steps cannot be attributed to one nest, so
    // the concurrent run records no per-nest rows …
    assert!(s.per_nest.is_empty());

    // … while the sequential schedule (one nest at a time) attributes
    // every nest step.
    let mut seq = build(
        &m,
        &cfg,
        ExecStrategy::Sequential,
        HaloEngine::Compiled,
        IoMode::None,
        None,
    )
    .with_obs(ObsConfig::counters());
    seq.run_mut(4);
    let s = seq.obs().unwrap().summary().clone();
    assert_eq!(s.per_nest.len(), 2);
    assert!(s.per_nest.iter().all(|n| n.steps > 0 && n.compute > 0.0));
}

#[test]
fn io_phases_are_recorded_separately() {
    let m = Machine::bgl(32);
    let cfg = two_nest_config();
    let mut sim = build(
        &m,
        &cfg,
        ExecStrategy::Sequential,
        HaloEngine::Compiled,
        IoMode::PnetCdf,
        Some(2),
    )
    .with_obs(ObsConfig::counters());
    let report = sim.run_mut(4);
    let s = sim.obs().unwrap().summary();
    assert!(report.io_time > 0.0);
    assert!(s.io_time > 0.0);
    let rel = (s.io_time - report.io_time).abs() / report.io_time;
    assert!(rel < 1e-9, "recorded io_time drifted (rel {rel:e})");
}

#[test]
fn ring_capacity_bounds_retention_but_not_totals() {
    let m = Machine::bgl(16);
    let cfg = two_nest_config();
    let mut sim = build(
        &m,
        &cfg,
        ExecStrategy::Sequential,
        HaloEngine::Compiled,
        IoMode::None,
        None,
    )
    .with_obs(ObsConfig::counters().with_ring_capacity(4));
    sim.run_mut(4);
    let rec = sim.obs().unwrap();
    assert_eq!(rec.ring().len(), 4);
    assert!(rec.ring().dropped() > 0);
    let s = rec.summary();
    assert_eq!(s.steps, sim.steps_taken(), "totals cover the whole run");
    assert!(s.steps > 4);
}

#[test]
fn replay_after_reset_clears_and_rerecords_identically() {
    let m = Machine::bgl(16);
    let cfg = two_nest_config();
    let mut sim = build(
        &m,
        &cfg,
        ExecStrategy::Sequential,
        HaloEngine::Compiled,
        IoMode::None,
        None,
    )
    .with_obs(ObsConfig::counters());
    let rep1 = sim.run_mut(3);
    let sum1 = sim.obs().unwrap().summary().clone();
    let steps1: Vec<_> = sim.obs().unwrap().steps().cloned().collect();
    let rep2 = sim.run_mut(3);
    let sum2 = sim.obs().unwrap().summary().clone();
    let steps2: Vec<_> = sim.obs().unwrap().steps().cloned().collect();
    assert_eq!(rep1, rep2);
    assert_eq!(sum1, sum2, "replay must not double-count");
    assert_eq!(steps1, steps2);
}

#[test]
fn chrome_trace_json_parses_and_covers_all_phases() {
    let m = Machine::bgl(16);
    let cfg = two_nest_config();
    let mut sim = build(
        &m,
        &cfg,
        ExecStrategy::Sequential,
        HaloEngine::Compiled,
        IoMode::SplitFiles,
        Some(2),
    )
    .with_obs(ObsConfig::counters());
    sim.run_mut(3);
    let rec = sim.obs().unwrap();
    assert!(rec
        .steps()
        .any(|s| s.phase == StepPhase::Parent || s.phase == StepPhase::Nest));

    let json = rec.chrome_trace_json();
    let v: serde_json::Value = serde_json::from_str(&json).expect("trace JSON must parse");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(events.len() as u64 >= rec.summary().steps);
    for ev in events {
        assert_eq!(ev.get("ph").unwrap().as_str().unwrap(), "X");
        assert!(ev.get("name").unwrap().as_str().is_some());
        assert!(ev.get("ts").unwrap().as_f64().unwrap() >= 0.0);
        assert!(ev.get("dur").unwrap().as_f64().unwrap() >= 0.0);
    }
}

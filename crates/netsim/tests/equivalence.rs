//! Bitwise equivalence of the compiled halo-step engine against the
//! reference implementation.
//!
//! The compiled engine (precomputed decompositions, neighbour tables, torus
//! routes, donor/release sets — see `crates/netsim/src/schedule.rs`) must
//! produce a [`SimReport`] **identical** to the reference engine that
//! re-derives everything per step: same float expressions in the same
//! order, so every field matches under exact `==`, not a tolerance.

use nestwx_grid::{Domain, NestSpec, NestedConfig, ProcGrid, Rect};
use nestwx_netsim::{ExecStrategy, HaloEngine, IoMode, Machine, SimReport, Simulation};
use nestwx_topo::Mapping;

#[allow(clippy::too_many_arguments)]
fn run(
    machine: &Machine,
    grid: ProcGrid,
    config: &NestedConfig,
    strategy: &ExecStrategy,
    io_mode: IoMode,
    output_interval: Option<u32>,
    engine: HaloEngine,
    iterations: u32,
) -> SimReport {
    let mapping = Mapping::oblivious(machine.shape, machine.ranks()).unwrap();
    Simulation::new(
        machine,
        grid,
        config,
        strategy.clone(),
        mapping,
        io_mode,
        output_interval,
    )
    .unwrap()
    .with_engine(engine)
    .run(iterations)
}

fn assert_engines_agree(
    machine: &Machine,
    grid: ProcGrid,
    config: &NestedConfig,
    strategy: &ExecStrategy,
    io_mode: IoMode,
    output_interval: Option<u32>,
    iterations: u32,
) {
    let compiled = run(
        machine,
        grid,
        config,
        strategy,
        io_mode,
        output_interval,
        HaloEngine::Compiled,
        iterations,
    );
    let reference = run(
        machine,
        grid,
        config,
        strategy,
        io_mode,
        output_interval,
        HaloEngine::Reference,
        iterations,
    );
    // `SimReport` derives `PartialEq`, so this compares every f64 field
    // (total_time, mpi_wait_total, phases, per-sibling times, bytes) for
    // exact bit-level equality, plus the integer message/rank counters.
    assert_eq!(compiled, reference);
    assert_eq!(compiled.avg_hops, reference.avg_hops);
    assert_eq!(compiled.messages, reference.messages);
}

fn two_nest_config() -> NestedConfig {
    NestedConfig::new(
        Domain::parent(120, 120, 24.0),
        vec![
            NestSpec::new(90, 90, 3, (2, 2)),
            NestSpec::new(90, 90, 3, (60, 60)),
        ],
    )
    .unwrap()
}

#[test]
fn sequential_two_nests_bitwise_identical() {
    let m = Machine::bgl(32);
    let grid = ProcGrid::near_square(m.ranks());
    let cfg = two_nest_config();
    assert_engines_agree(
        &m,
        grid,
        &cfg,
        &ExecStrategy::Sequential,
        IoMode::None,
        None,
        4,
    );
}

#[test]
fn concurrent_two_nests_bitwise_identical() {
    let m = Machine::bgl(32);
    let grid = ProcGrid::near_square(m.ranks());
    let cfg = two_nest_config();
    let half = grid.px / 2;
    let strategy = ExecStrategy::Concurrent {
        partitions: vec![
            Rect::new(0, 0, half, grid.py),
            Rect::new(half, 0, grid.px - half, grid.py),
        ],
    };
    assert_engines_agree(&m, grid, &cfg, &strategy, IoMode::None, None, 4);
}

#[test]
fn concurrent_with_second_level_nest_and_io_bitwise_identical() {
    // The hardest schedule: uneven refine ratios, a second-level nest on a
    // sub-partition (donor sets, lockstep child sub-steps, resync barriers,
    // per-rank feedback release), plus periodic output.
    let m = Machine::bgl(64);
    let grid = ProcGrid::near_square(m.ranks()); // 8×8
    let cfg = NestedConfig::new(
        Domain::parent(120, 120, 24.0),
        vec![
            NestSpec::new(90, 90, 3, (2, 2)),
            NestSpec::new(60, 60, 3, (60, 60)),
            NestSpec::child_of(0, 40, 40, 2, (5, 5)),
        ],
    )
    .unwrap();
    let strategy = ExecStrategy::Concurrent {
        partitions: vec![
            Rect::new(0, 0, 4, 8),
            Rect::new(4, 0, 4, 8),
            Rect::new(0, 0, 4, 4),
        ],
    };
    assert_engines_agree(&m, grid, &cfg, &strategy, IoMode::SplitFiles, Some(2), 4);
}

#[test]
fn sequential_with_second_level_nest_bitwise_identical() {
    let m = Machine::bgl(64);
    let grid = ProcGrid::near_square(m.ranks());
    let cfg = NestedConfig::new(
        Domain::parent(120, 120, 24.0),
        vec![
            NestSpec::new(90, 90, 3, (2, 2)),
            NestSpec::new(60, 60, 3, (60, 60)),
            NestSpec::child_of(0, 40, 40, 2, (5, 5)),
        ],
    )
    .unwrap();
    assert_engines_agree(
        &m,
        grid,
        &cfg,
        &ExecStrategy::Sequential,
        IoMode::PnetCdf,
        Some(3),
        3,
    );
}

#[test]
fn traces_also_bitwise_identical() {
    let m = Machine::bgl(32);
    let grid = ProcGrid::near_square(m.ranks());
    let cfg = two_nest_config();
    let mapping = Mapping::oblivious(m.shape, m.ranks()).unwrap();
    let build = |engine| {
        Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Sequential,
            mapping.clone(),
            IoMode::SplitFiles,
            Some(2),
        )
        .unwrap()
        .with_engine(engine)
    };
    let (rep_c, tr_c) = build(HaloEngine::Compiled).run_traced(4);
    let (rep_r, tr_r) = build(HaloEngine::Reference).run_traced(4);
    assert_eq!(rep_c, rep_r);
    assert_eq!(tr_c, tr_r);
}

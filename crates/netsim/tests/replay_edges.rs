//! Replay edge cases: the compiled halo-step engine must match the
//! reference engine on degenerate plans the benchmarks never exercise —
//! zero sibling nests (sequential and concurrent), nests confined to a
//! single rank, and nest steps whose transfer set is therefore empty.

use nestwx_grid::{Domain, NestSpec, NestedConfig, ProcGrid, Rect};
use nestwx_netsim::{
    ExecStrategy, HaloEngine, IoMode, Machine, ObsConfig, SimReport, Simulation, StepPhase,
};
use nestwx_topo::Mapping;

#[allow(clippy::too_many_arguments)]
fn run(
    machine: &Machine,
    grid: ProcGrid,
    config: &NestedConfig,
    strategy: &ExecStrategy,
    io_mode: IoMode,
    output_interval: Option<u32>,
    engine: HaloEngine,
    iterations: u32,
) -> SimReport {
    let mapping = Mapping::oblivious(machine.shape, machine.ranks()).unwrap();
    Simulation::new(
        machine,
        grid,
        config,
        strategy.clone(),
        mapping,
        io_mode,
        output_interval,
    )
    .unwrap()
    .with_engine(engine)
    .run(iterations)
}

#[allow(clippy::too_many_arguments)]
fn assert_engines_agree(
    machine: &Machine,
    grid: ProcGrid,
    config: &NestedConfig,
    strategy: &ExecStrategy,
    io_mode: IoMode,
    output_interval: Option<u32>,
    iterations: u32,
) -> SimReport {
    let compiled = run(
        machine,
        grid,
        config,
        strategy,
        io_mode,
        output_interval,
        HaloEngine::Compiled,
        iterations,
    );
    let reference = run(
        machine,
        grid,
        config,
        strategy,
        io_mode,
        output_interval,
        HaloEngine::Reference,
        iterations,
    );
    assert_eq!(compiled, reference);
    compiled
}

fn no_nest_config() -> NestedConfig {
    NestedConfig::new(Domain::parent(96, 96, 24.0), vec![]).unwrap()
}

#[test]
fn zero_siblings_sequential_bitwise_identical() {
    // A parent-only run: the iteration plan has no nest phase at all.
    let m = Machine::bgl(16);
    let grid = ProcGrid::near_square(m.ranks());
    let cfg = no_nest_config();
    let rep = assert_engines_agree(
        &m,
        grid,
        &cfg,
        &ExecStrategy::Sequential,
        IoMode::SplitFiles,
        Some(2),
        4,
    );
    assert!(rep.sibling_solve.is_empty());
    assert_eq!(rep.nest_phase, 0.0);
    assert!(rep.messages > 0, "parent halo exchange still runs");
}

#[test]
fn zero_siblings_concurrent_empty_partition_set_bitwise_identical() {
    // Concurrent with zero nests is legal (the partition list must match
    // the nest list, and both are empty) and must degenerate to the same
    // parent-only schedule.
    let m = Machine::bgl(16);
    let grid = ProcGrid::near_square(m.ranks());
    let cfg = no_nest_config();
    let strategy = ExecStrategy::Concurrent { partitions: vec![] };
    let rep = assert_engines_agree(&m, grid, &cfg, &strategy, IoMode::None, None, 4);
    assert!(rep.sibling_solve.is_empty());
    assert_eq!(rep.nest_phase, 0.0);
}

#[test]
fn single_rank_nest_partitions_bitwise_identical() {
    // Every nest pinned to a 1×1 processor rectangle: the compiled plan's
    // sender tables have one entry and its donor/release sets collapse to
    // single ranks.
    let m = Machine::bgl(16);
    let grid = ProcGrid::near_square(m.ranks()); // 4×4
    let cfg = NestedConfig::new(
        Domain::parent(96, 96, 24.0),
        vec![
            NestSpec::new(30, 30, 3, (2, 2)),
            NestSpec::new(30, 30, 3, (60, 60)),
        ],
    )
    .unwrap();
    let strategy = ExecStrategy::Concurrent {
        partitions: vec![Rect::new(0, 0, 1, 1), Rect::new(3, 3, 1, 1)],
    };
    assert_engines_agree(&m, grid, &cfg, &strategy, IoMode::None, None, 4);
}

#[test]
fn empty_transfer_set_nest_steps_record_zero_messages() {
    // A single nest on a single rank has no neighbours within its domain,
    // so its halo steps carry an empty transfer set. The compiled replay
    // must handle the no-message step and the recorder must show it.
    let m = Machine::bgl(16);
    let grid = ProcGrid::near_square(m.ranks());
    let cfg = NestedConfig::new(
        Domain::parent(96, 96, 24.0),
        vec![NestSpec::new(30, 30, 3, (2, 2))],
    )
    .unwrap();
    let strategy = ExecStrategy::Concurrent {
        partitions: vec![Rect::new(0, 0, 1, 1)],
    };
    assert_engines_agree(&m, grid, &cfg, &strategy, IoMode::None, None, 3);

    let mapping = Mapping::oblivious(m.shape, m.ranks()).unwrap();
    let mut sim = Simulation::new(&m, grid, &cfg, strategy, mapping, IoMode::None, None)
        .unwrap()
        .with_obs(ObsConfig::counters());
    sim.run_mut(3);
    let rec = sim.obs().unwrap();
    let nest_steps: Vec<_> = rec.steps().filter(|s| s.phase == StepPhase::Nest).collect();
    assert!(!nest_steps.is_empty());
    for s in &nest_steps {
        assert_eq!(s.nest, 0);
        assert_eq!(s.messages, 0, "1-rank nest step must move no messages");
        assert_eq!(s.transfers, 0);
        assert_eq!(s.hops, 0);
        assert_eq!(s.bytes, 0.0);
        assert!(s.compute > 0.0, "the single rank still computes");
    }
}

#[test]
fn timelines_on_replay_edge_cases() {
    // Per-rank timelines must survive the same degenerate plans: a
    // zero-sibling run, a single-rank nest, and an empty transfer set.
    let m = Machine::bgl(16);
    let grid = ProcGrid::near_square(m.ranks());
    let mapping = || Mapping::oblivious(m.shape, m.ranks()).unwrap();

    // Zero siblings: only parent frames, every one tagged nest -1.
    let cfg = no_nest_config();
    let mut sim = Simulation::new(
        &m,
        grid,
        &cfg,
        ExecStrategy::Sequential,
        mapping(),
        IoMode::None,
        None,
    )
    .unwrap()
    .with_obs(ObsConfig::detailed());
    sim.run_mut(3);
    let rec = sim.obs().unwrap();
    let tl = rec.timeline().expect("timeline on");
    assert_eq!(tl.recorded_steps(), sim.steps_taken());
    assert!(tl.meta().iter().all(|f| f.nest == -1));
    assert!(rec.analysis().per_nest.is_empty());

    // Single-rank nest with an empty transfer set: nest frames exist, the
    // lone rank computes but never waits, and the analysis still works.
    let cfg = NestedConfig::new(
        Domain::parent(96, 96, 24.0),
        vec![NestSpec::new(30, 30, 3, (2, 2))],
    )
    .unwrap();
    let strategy = ExecStrategy::Concurrent {
        partitions: vec![Rect::new(0, 0, 1, 1)],
    };
    for engine in [HaloEngine::Compiled, HaloEngine::Reference] {
        let mut sim = Simulation::new(
            &m,
            grid,
            &cfg,
            strategy.clone(),
            mapping(),
            IoMode::None,
            None,
        )
        .unwrap()
        .with_engine(engine)
        .with_obs(ObsConfig::detailed());
        sim.run_mut(3);
        let rec = sim.obs().unwrap();
        let tl = rec.timeline().expect("timeline on");
        assert_eq!(tl.recorded_steps(), sim.steps_taken());
        let nest_frames: Vec<usize> = tl
            .meta()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.nest == 0)
            .map(|(i, _)| i)
            .collect();
        assert!(!nest_frames.is_empty(), "{engine:?}: no nest frames");
        for &fi in &nest_frames {
            // Rank 0 owns the 1×1 partition: it computes, nobody waits.
            assert!(tl.frame_compute(fi)[0] > 0.0, "{engine:?}");
            assert_eq!(tl.frame_wait(fi)[0], 0.0, "{engine:?}");
            assert_eq!(tl.meta()[fi].crit_rank, 0, "{engine:?}");
            // Only the active rank contributes to the frame.
            assert!(tl.frame_compute(fi)[1..].iter().all(|&c| c == 0.0));
        }
        let analysis = rec.analysis();
        assert_eq!(analysis.per_nest.len(), 1);
        assert!((analysis.per_nest[0].time_ratio - 1.0).abs() < 1e-12);
        // One active lane in nest frames → max == mean → imbalance 1.
        assert!((analysis.per_nest[0].imbalance - 1.0).abs() < 1e-12);
    }
}

//! Property-based tests of the machine simulator.

use nestwx_grid::{Domain, NestSpec, NestedConfig, ProcGrid, Rect};
use nestwx_netsim::{ExecStrategy, IoMode, Machine, Simulation};
use nestwx_topo::Mapping;
use proptest::prelude::*;

fn small_machine() -> Machine {
    Machine::bgl(32)
}

fn arb_config() -> impl Strategy<Value = NestedConfig> {
    (40u32..120, 40u32..120, 20u32..90, 20u32..90).prop_map(|(pnx, pny, nx, ny)| {
        let parent = Domain::parent(pnx.max(60), pny.max(60), 24.0);
        let nest = NestSpec::new(nx, ny, 3, (0, 0));
        NestedConfig::new(parent, vec![nest]).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Simulated time is positive, finite, and monotone in iteration count.
    #[test]
    fn time_monotone_in_iterations(cfg in arb_config(), iters in 1u32..5) {
        let m = small_machine();
        let grid = ProcGrid::near_square(m.ranks());
        let map = Mapping::oblivious(m.shape, m.ranks()).unwrap();
        let run = |n: u32| {
            Simulation::new(&m, grid, &cfg, ExecStrategy::Sequential, map.clone(), IoMode::None, None)
                .unwrap()
                .run(n)
        };
        let a = run(iters);
        let b = run(iters + 1);
        prop_assert!(a.total_time.is_finite() && a.total_time > 0.0);
        prop_assert!(b.total_time > a.total_time);
        // Per-iteration time is stable (steady state): within 25 %.
        prop_assert!((b.per_iteration() / a.per_iteration() - 1.0).abs() < 0.25);
    }

    /// The same simulation is bit-for-bit deterministic.
    #[test]
    fn simulation_deterministic(cfg in arb_config()) {
        let m = small_machine();
        let grid = ProcGrid::near_square(m.ranks());
        let map = Mapping::oblivious(m.shape, m.ranks()).unwrap();
        let run = || {
            Simulation::new(&m, grid, &cfg, ExecStrategy::Sequential, map.clone(), IoMode::None, None)
                .unwrap()
                .run(2)
        };
        prop_assert_eq!(run(), run());
    }

    /// MPI_Wait, message and byte counters are consistent and bounded.
    #[test]
    fn counters_bounded(cfg in arb_config()) {
        let m = small_machine();
        let grid = ProcGrid::near_square(m.ranks());
        let map = Mapping::oblivious(m.shape, m.ranks()).unwrap();
        let rep = Simulation::new(&m, grid, &cfg, ExecStrategy::Sequential, map, IoMode::None, None)
            .unwrap()
            .run(2);
        prop_assert!(rep.mpi_wait_total >= 0.0);
        prop_assert!(rep.mpi_wait_total <= rep.ranks as f64 * rep.total_time);
        prop_assert!(rep.messages > 0);
        prop_assert!(rep.bytes > 0.0);
        prop_assert!(rep.avg_hops >= 0.0);
        prop_assert!(rep.integration_time <= rep.total_time + 1e-12);
    }

    /// Splitting one nest across strategies: a single nest on the full grid
    /// (concurrent with one full partition) equals the sequential strategy
    /// up to coupling-cost bookkeeping.
    #[test]
    fn one_full_partition_close_to_sequential(cfg in arb_config()) {
        let m = small_machine();
        let grid = ProcGrid::near_square(m.ranks());
        let map = Mapping::oblivious(m.shape, m.ranks()).unwrap();
        let seq = Simulation::new(&m, grid, &cfg, ExecStrategy::Sequential, map.clone(), IoMode::None, None)
            .unwrap()
            .run(2);
        let conc = Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Concurrent { partitions: vec![grid.rect()] },
            map,
            IoMode::None,
            None,
        )
        .unwrap()
        .run(2);
        let ratio = conc.total_time / seq.total_time;
        prop_assert!((ratio - 1.0).abs() < 0.05, "ratio {ratio}");
    }

    /// Adding output never reduces total time, and io_time + integration =
    /// total.
    #[test]
    fn io_accounting_consistent(cfg in arb_config(), every in 1u32..3) {
        let m = small_machine();
        let grid = ProcGrid::near_square(m.ranks());
        let map = Mapping::oblivious(m.shape, m.ranks()).unwrap();
        let quiet = Simulation::new(&m, grid, &cfg, ExecStrategy::Sequential, map.clone(), IoMode::None, None)
            .unwrap()
            .run(4);
        let noisy = Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Sequential,
            map,
            IoMode::SplitFiles,
            Some(every),
        )
        .unwrap()
        .run(4);
        prop_assert!(noisy.total_time >= quiet.total_time);
        prop_assert!((noisy.integration_time + noisy.io_time - noisy.total_time).abs() < 1e-9);
        prop_assert!(noisy.io_time > 0.0);
    }

    /// Any 2-way split of the grid yields a valid concurrent simulation
    /// with positive sibling times.
    #[test]
    fn arbitrary_two_way_splits_simulate(cut_pct in 20u32..80) {
        let parent = Domain::parent(120, 120, 24.0);
        let nests = vec![
            NestSpec::new(80, 80, 3, (0, 0)),
            NestSpec::new(80, 80, 3, (40, 40)),
        ];
        let cfg = NestedConfig::new(parent, nests).unwrap();
        let m = small_machine();
        let grid = ProcGrid::near_square(m.ranks());
        let cut = (grid.px * cut_pct / 100).clamp(1, grid.px - 1);
        let parts = vec![
            Rect::new(0, 0, cut, grid.py),
            Rect::new(cut, 0, grid.px - cut, grid.py),
        ];
        let map = Mapping::partition(m.shape, &grid, &parts).unwrap();
        let rep = Simulation::new(
            &m,
            grid,
            &cfg,
            ExecStrategy::Concurrent { partitions: parts },
            map,
            IoMode::None,
            None,
        )
        .unwrap()
        .run(2);
        prop_assert!(rep.sibling_solve.iter().all(|&t| t > 0.0));
        prop_assert!(rep.total_time.is_finite());
    }
}

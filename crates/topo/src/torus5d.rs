//! 5-D torus (Blue Gene/Q) — the paper's future-work topology (§6: "develop
//! novel schemes for the 5D torus topology of Blue Gene/Q system").
//!
//! BG/Q arranges nodes as an `A × B × C × D × E` torus with `E = 2`. This
//! module provides the metric/routing substrate plus two 2-D → 5-D
//! mappings:
//!
//! * [`Mapping5::oblivious`] — ranks in increasing ABCDE order (the 5-D
//!   analogue of Fig. 5(b));
//! * [`Mapping5::partition_serpentine`] — each sibling partition placed on a
//!   contiguous run of a boustrophedon (serpentine) walk of the torus, in
//!   which consecutive slots are exactly one hop apart; within a partition,
//!   ranks follow a row-serpentine of the rectangle, so most virtual
//!   neighbours stay 1–2 hops apart.

use crate::mapping::MappingError;
use nestwx_grid::{ProcGrid, Rect};
use serde::{Deserialize, Serialize};

/// A 5-dimensional torus of nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus5 {
    /// Extents in A, B, C, D, E.
    pub dims: [u32; 5],
}

impl Torus5 {
    /// Creates a torus; all dimensions must be positive.
    pub fn new(dims: [u32; 5]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "5-D torus dimensions must be positive"
        );
        Torus5 { dims }
    }

    /// A Blue Gene/Q midplane: 4 × 4 × 4 × 4 × 2 = 512 nodes.
    pub fn bgq_midplane() -> Self {
        Torus5::new([4, 4, 4, 4, 2])
    }

    /// A one-rack BG/Q (1024 nodes): 4 × 4 × 4 × 8 × 2.
    pub fn bgq_rack() -> Self {
        Torus5::new([4, 4, 4, 8, 2])
    }

    /// Node count.
    pub fn nodes(&self) -> u32 {
        self.dims.iter().product()
    }

    /// Linear index (A fastest).
    pub fn index(&self, c: [u32; 5]) -> u32 {
        let mut idx = 0;
        for d in (0..5).rev() {
            idx = idx * self.dims[d] + c[d];
        }
        idx
    }

    /// Coordinates of a linear index.
    pub fn coord(&self, mut idx: u32) -> [u32; 5] {
        let mut c = [0u32; 5];
        for (ci, &n) in c.iter_mut().zip(&self.dims) {
            *ci = idx % n;
            idx /= n;
        }
        c
    }

    /// Hop distance with wrap-around in every dimension.
    pub fn hops(&self, a: [u32; 5], b: [u32; 5]) -> u32 {
        (0..5)
            .map(|d| {
                let n = self.dims[d];
                let diff = a[d].abs_diff(b[d]);
                diff.min(n - diff)
            })
            .sum()
    }

    /// A boustrophedon walk visiting every node exactly once with
    /// consecutive nodes one hop apart (serpentine nesting across all five
    /// dimensions).
    pub fn serpentine(&self) -> Vec<[u32; 5]> {
        let mut out = Vec::with_capacity(self.nodes() as usize);
        let [da, db, dc, dd, de] = self.dims;
        for e in 0..de {
            for dd_i in 0..dd {
                let d = if e % 2 == 1 { dd - 1 - dd_i } else { dd_i };
                for dc_i in 0..dc {
                    let c = if (e * dd + dd_i) % 2 == 1 {
                        dc - 1 - dc_i
                    } else {
                        dc_i
                    };
                    for db_i in 0..db {
                        let b = if (e * dd * dc + dd_i * dc + dc_i) % 2 == 1 {
                            db - 1 - db_i
                        } else {
                            db_i
                        };
                        for da_i in 0..da {
                            let a = if (e * dd * dc * db + dd_i * dc * db + dc_i * db + db_i) % 2
                                == 1
                            {
                                da - 1 - da_i
                            } else {
                                da_i
                            };
                            out.push([a, b, c, d, e]);
                        }
                    }
                }
            }
        }
        out
    }
}

/// An injective rank → node assignment on a 5-D torus (one rank per node
/// for simplicity — BG/Q runs 16 per node, folded the same way the 3-D
/// extended-z treatment handles cores).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping5 {
    /// The torus mapped onto.
    pub torus: Torus5,
    rank_to_node: Vec<u32>,
}

impl Mapping5 {
    /// Ranks in plain increasing ABCDE order.
    pub fn oblivious(torus: Torus5, nranks: u32) -> Result<Self, MappingError> {
        if nranks > torus.nodes() {
            return Err(MappingError::TooManyRanks {
                ranks: nranks,
                slots: torus.nodes(),
            });
        }
        Ok(Mapping5 {
            torus,
            rank_to_node: (0..nranks).collect(),
        })
    }

    /// Partition-aware serpentine: each partition's ranks (row-serpentine
    /// within the rectangle) occupy a contiguous run of the torus's
    /// serpentine walk.
    pub fn partition_serpentine(
        torus: Torus5,
        grid: &ProcGrid,
        partitions: &[Rect],
    ) -> Result<Self, MappingError> {
        let nranks = grid.len();
        if nranks > torus.nodes() {
            return Err(MappingError::TooManyRanks {
                ranks: nranks,
                slots: torus.nodes(),
            });
        }
        let walk = torus.serpentine();
        let mut rank_to_node = vec![u32::MAX; nranks as usize];
        let mut cursor = 0usize;
        // Row-serpentine within each rectangle keeps consecutive ranks
        // adjacent in the virtual grid too.
        let mut ordered: Vec<u32> = Vec::with_capacity(nranks as usize);
        for rect in partitions {
            for j in 0..rect.h {
                if j % 2 == 0 {
                    for i in 0..rect.w {
                        ordered.push(grid.rank_of(rect.x0 + i, rect.y0 + j));
                    }
                } else {
                    for i in (0..rect.w).rev() {
                        ordered.push(grid.rank_of(rect.x0 + i, rect.y0 + j));
                    }
                }
            }
        }
        for &r in &ordered {
            rank_to_node[r as usize] = torus.index(walk[cursor]);
            cursor += 1;
        }
        // Leftover ranks (non-tiling partition lists) continue the walk.
        for r in 0..nranks {
            if rank_to_node[r as usize] == u32::MAX {
                rank_to_node[r as usize] = torus.index(walk[cursor]);
                cursor += 1;
            }
        }
        Ok(Mapping5 {
            torus,
            rank_to_node,
        })
    }

    /// Universal folded mapping: factor the torus dimensions into two
    /// groups whose extents multiply to the virtual grid's width and
    /// height, then snake virtual x over the first group and virtual y over
    /// the second. Every virtual-grid neighbour — nest *and* parent — is
    /// then exactly one hop apart: with five dimensions to combine, the
    /// "non-foldable" problem of the 3-D torus disappears whenever the
    /// extents factor (they do for the power-of-two BG/Q shapes).
    ///
    /// Returns `None` if no dimension split matches the grid.
    pub fn universal_folded(torus: Torus5, grid: &ProcGrid) -> Option<Self> {
        if grid.len() != torus.nodes() {
            return None;
        }
        // Find a subset of dims whose product is exactly grid.px (the
        // complement must then multiply to grid.py).
        let dims = torus.dims;
        let split = (0u32..32).find(|mask| {
            let px: u32 = (0..5)
                .filter(|d| mask & (1 << d) != 0)
                .map(|d| dims[d])
                .product();
            px == grid.px
        })?;
        let x_dims: Vec<usize> = (0..5).filter(|d| split & (1 << d) != 0).collect();
        let y_dims: Vec<usize> = (0..5).filter(|d| split & (1 << d) == 0).collect();

        // Multi-level snake: decompose a virtual coordinate over an ordered
        // dim list so that +1 in the virtual coordinate moves exactly one
        // hop in exactly one torus dimension.
        let snake = |mut v: u32, ds: &[usize], coord: &mut [u32; 5]| {
            for &d in ds {
                let n = dims[d];
                let digit = v % n;
                v /= n;
                // Reflect this level when the combined higher digits are
                // odd — the recursive boustrophedon condition.
                coord[d] = if v % 2 == 1 { n - 1 - digit } else { digit };
            }
        };
        let mut rank_to_node = vec![0u32; grid.len() as usize];
        for y in 0..grid.py {
            for x in 0..grid.px {
                let mut c = [0u32; 5];
                snake(x, &x_dims, &mut c);
                snake(y, &y_dims, &mut c);
                rank_to_node[grid.rank_of(x, y) as usize] = torus.index(c);
            }
        }
        Some(Mapping5 {
            torus,
            rank_to_node,
        })
    }

    /// Node coordinates of a rank.
    pub fn coord(&self, rank: u32) -> [u32; 5] {
        self.torus.coord(self.rank_to_node[rank as usize])
    }

    /// Hop distance between two ranks.
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        self.torus.hops(self.coord(a), self.coord(b))
    }

    /// Mean hops over a set of rank pairs.
    pub fn avg_hops(&self, edges: &[(u32, u32)]) -> f64 {
        if edges.is_empty() {
            return 0.0;
        }
        edges
            .iter()
            .map(|&(a, b)| self.hops(a, b) as u64)
            .sum::<u64>() as f64
            / edges.len() as f64
    }
}

/// Nest-halo edges of the partitions (both directions), as rank pairs.
pub fn partition_halo_pairs(grid: &ProcGrid, partitions: &[Rect]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for p in partitions {
        for rank in grid.ranks_in(p) {
            for nb in grid.neighbors_within(rank, p).into_iter().flatten() {
                out.push((rank, nb));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_coord_roundtrip() {
        let t = Torus5::bgq_midplane();
        for i in 0..t.nodes() {
            assert_eq!(t.index(t.coord(i)), i);
        }
    }

    #[test]
    fn hops_metric_with_wraparound() {
        let t = Torus5::new([4, 4, 4, 4, 2]);
        assert_eq!(t.hops([0, 0, 0, 0, 0], [0, 0, 0, 0, 0]), 0);
        assert_eq!(t.hops([0, 0, 0, 0, 0], [3, 0, 0, 0, 0]), 1); // wrap
        assert_eq!(t.hops([0, 0, 0, 0, 0], [2, 2, 0, 0, 1]), 5);
        let (a, b) = ([1, 2, 3, 0, 1], [3, 0, 1, 2, 0]);
        assert_eq!(t.hops(a, b), t.hops(b, a));
    }

    #[test]
    fn serpentine_is_hamiltonian_one_hop() {
        for t in [Torus5::new([2, 3, 2, 2, 2]), Torus5::bgq_midplane()] {
            let walk = t.serpentine();
            assert_eq!(walk.len() as u32, t.nodes());
            let unique: std::collections::HashSet<_> = walk.iter().collect();
            assert_eq!(unique.len() as u32, t.nodes());
            for w in walk.windows(2) {
                assert_eq!(t.hops(w[0], w[1]), 1, "walk step {:?} → {:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn mappings_injective() {
        let t = Torus5::bgq_midplane();
        let grid = ProcGrid::new(32, 16); // 512 ranks
        let parts = [Rect::new(0, 0, 16, 16), Rect::new(16, 0, 16, 16)];
        for m in [
            Mapping5::oblivious(t, 512).unwrap(),
            Mapping5::partition_serpentine(t, &grid, &parts).unwrap(),
        ] {
            let nodes: std::collections::HashSet<_> = (0..512).map(|r| m.coord(r)).collect();
            assert_eq!(nodes.len(), 512);
        }
    }

    #[test]
    fn partition_serpentine_beats_oblivious_on_nest_hops() {
        // The paper's mapping claim carries to 5-D: partition-contiguous
        // placement cuts the average nest-halo hops.
        let t = Torus5::bgq_rack(); // 1024 nodes
        let grid = ProcGrid::new(32, 32);
        let parts = [
            Rect::new(0, 0, 18, 24),
            Rect::new(0, 24, 18, 8),
            Rect::new(18, 0, 14, 12),
            Rect::new(18, 12, 14, 20),
        ];
        let edges = partition_halo_pairs(&grid, &parts);
        let ob = Mapping5::oblivious(t, 1024).unwrap();
        let ps = Mapping5::partition_serpentine(t, &grid, &parts).unwrap();
        let (h_ob, h_ps) = (ob.avg_hops(&edges), ps.avg_hops(&edges));
        assert!(h_ps < h_ob, "serpentine {h_ps:.2} !< oblivious {h_ob:.2}");
    }

    #[test]
    fn universal_folded_every_neighbor_one_hop() {
        let t = Torus5::bgq_rack();
        let grid = ProcGrid::new(32, 32);
        let m = Mapping5::universal_folded(t, &grid).unwrap();
        // Injective onto all nodes.
        let nodes: std::collections::HashSet<_> = (0..1024).map(|r| m.coord(r)).collect();
        assert_eq!(nodes.len(), 1024);
        // Every virtual-grid neighbour is exactly one hop apart.
        let edges = partition_halo_pairs(&grid, &[grid.rect()]);
        for &(a, b) in &edges {
            assert_eq!(
                m.hops(a, b),
                1,
                "ranks {a},{b} are {} hops apart",
                m.hops(a, b)
            );
        }
        // No valid split → None.
        assert!(Mapping5::universal_folded(Torus5::new([3, 5, 7, 2, 2]), &grid).is_none());
    }

    #[test]
    fn rejects_too_many_ranks() {
        let t = Torus5::bgq_midplane();
        assert!(Mapping5::oblivious(t, 513).is_err());
    }
}

//! Communication metrics of a mapping: hops, hop-bytes and link loads.
//!
//! These are the quantities behind the paper's mapping evaluation: the
//! average number of network hops between communicating processes
//! (Fig. 12b), and the per-link traffic whose reduction lowers contention
//! and MPI_Wait times (Fig. 11b, 12a).

use crate::mapping::Mapping;
use nestwx_grid::{ProcGrid, Rect};
use serde::{Deserialize, Serialize};

/// One logical communication edge: `from` sends `bytes` to `to` (per
/// modelled step; scale `bytes` by step counts to weight nests that run `r`
/// times per parent step).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommEdge {
    /// Sending rank.
    pub from: u32,
    /// Receiving rank.
    pub to: u32,
    /// Payload bytes.
    pub bytes: f64,
}

/// Aggregate communication statistics of a communication graph under a
/// mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    /// Mean hop count over edges (unweighted) — the paper's
    /// "average number of hops".
    pub avg_hops: f64,
    /// Maximum hop count over edges.
    pub max_hops: u32,
    /// Σ bytes × hops — the classical hop-bytes mapping objective.
    pub hop_bytes: f64,
    /// Largest per-directed-link traffic (bytes) after dimension-ordered
    /// routing — the contention proxy.
    pub max_link_bytes: f64,
    /// Mean traffic over links that carry any traffic.
    pub mean_loaded_link_bytes: f64,
}

impl CommStats {
    /// Routes every edge and accumulates the statistics.
    pub fn compute(mapping: &Mapping, edges: &[CommEdge]) -> CommStats {
        let torus = mapping.shape.torus;
        let mut link_load = vec![0.0f64; torus.num_links() as usize];
        let mut total_hops = 0u64;
        let mut max_hops = 0u32;
        let mut hop_bytes = 0.0f64;
        for e in edges {
            let (a, b) = (mapping.node_coord(e.from), mapping.node_coord(e.to));
            let route = torus.route(a, b);
            let hops = route.len() as u32;
            total_hops += hops as u64;
            max_hops = max_hops.max(hops);
            hop_bytes += hops as f64 * e.bytes;
            for l in route {
                link_load[l as usize] += e.bytes;
            }
        }
        let loaded: Vec<f64> = link_load.iter().copied().filter(|&b| b > 0.0).collect();
        CommStats {
            avg_hops: if edges.is_empty() {
                0.0
            } else {
                total_hops as f64 / edges.len() as f64
            },
            max_hops,
            hop_bytes,
            max_link_bytes: link_load.iter().copied().fold(0.0, f64::max),
            mean_loaded_link_bytes: if loaded.is_empty() {
                0.0
            } else {
                loaded.iter().sum::<f64>() / loaded.len() as f64
            },
        }
    }
}

/// Builds the halo-exchange edges of a domain decomposed over the
/// sub-rectangle `region` of `grid`: one directed edge per (rank,
/// existing-neighbour) pair, `bytes` each. Both directions are included
/// since halo exchange is symmetric.
pub fn halo_edges(grid: &ProcGrid, region: &Rect, bytes: f64) -> Vec<CommEdge> {
    let mut edges = Vec::new();
    for rank in grid.ranks_in(region) {
        for nb in grid.neighbors_within(rank, region).into_iter().flatten() {
            edges.push(CommEdge {
                from: rank,
                to: nb,
                bytes,
            });
        }
    }
    edges
}

/// The full communication graph of a multi-nest iteration: parent halo
/// edges over the whole grid, plus per-partition nest halo edges weighted by
/// the refinement ratio `r` (nests step `r` times per parent step).
pub fn nested_iteration_edges(
    grid: &ProcGrid,
    partitions: &[Rect],
    parent_bytes: f64,
    nest_bytes: f64,
    refine_ratio: u32,
) -> Vec<CommEdge> {
    let mut edges = halo_edges(grid, &grid.rect(), parent_bytes);
    for p in partitions {
        edges.extend(halo_edges(grid, p, nest_bytes * refine_ratio as f64));
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::{MachineShape, Torus};

    fn shape_4x4x2() -> MachineShape {
        MachineShape::new(Torus::new(4, 4, 2), 1)
    }

    #[test]
    fn halo_edge_count() {
        // 4×4 region: horizontal edges 3*4, vertical 4*3, both directions.
        let grid = ProcGrid::new(8, 4);
        let edges = halo_edges(&grid, &Rect::new(0, 0, 4, 4), 100.0);
        assert_eq!(edges.len(), 2 * (3 * 4 + 4 * 3));
    }

    #[test]
    fn stats_zero_for_no_edges() {
        let m = Mapping::oblivious(shape_4x4x2(), 32).unwrap();
        let s = CommStats::compute(&m, &[]);
        assert_eq!(s.avg_hops, 0.0);
        assert_eq!(s.max_hops, 0);
    }

    #[test]
    fn partition_mapping_halves_avg_hops_vs_oblivious() {
        // The Fig. 12(b) effect at toy scale: topology-aware mapping roughly
        // halves the average hops of the nest communication.
        let grid = ProcGrid::new(8, 4);
        let parts = [Rect::new(0, 0, 4, 4), Rect::new(4, 0, 4, 4)];
        let mut edges = Vec::new();
        for p in &parts {
            edges.extend(halo_edges(&grid, p, 1.0));
        }
        let ob = Mapping::oblivious(shape_4x4x2(), 32).unwrap();
        let pm = Mapping::partition(shape_4x4x2(), &grid, &parts).unwrap();
        let s_ob = CommStats::compute(&ob, &edges);
        let s_pm = CommStats::compute(&pm, &edges);
        assert!(s_pm.avg_hops <= 1.0 + 1e-9);
        assert!(
            s_pm.avg_hops < 0.7 * s_ob.avg_hops,
            "{} vs {}",
            s_pm.avg_hops,
            s_ob.avg_hops
        );
        assert!(s_pm.hop_bytes < s_ob.hop_bytes);
    }

    #[test]
    fn link_load_conservation() {
        // Total link traffic equals Σ bytes × hops.
        let grid = ProcGrid::new(8, 4);
        let edges = halo_edges(&grid, &grid.rect(), 10.0);
        let m = Mapping::oblivious(shape_4x4x2(), 32).unwrap();
        let torus = m.shape.torus;
        let mut total = 0.0;
        for e in &edges {
            total += torus.hops(m.node_coord(e.from), m.node_coord(e.to)) as f64 * e.bytes;
        }
        let s = CommStats::compute(&m, &edges);
        assert!((s.hop_bytes - total).abs() < 1e-6);
    }

    #[test]
    fn nested_edges_weight_by_refinement() {
        let grid = ProcGrid::new(8, 4);
        let parts = [Rect::new(0, 0, 4, 4), Rect::new(4, 0, 4, 4)];
        let edges = nested_iteration_edges(&grid, &parts, 10.0, 20.0, 3);
        let nest_edge = edges.iter().find(|e| e.bytes > 10.0).unwrap();
        assert_eq!(nest_edge.bytes, 60.0);
    }
}

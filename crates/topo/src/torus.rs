//! The 3-D torus network of Blue Gene-class machines.

use serde::{Deserialize, Serialize};

/// Coordinate of a node in the torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeCoord {
    /// X coordinate.
    pub x: u32,
    /// Y coordinate.
    pub y: u32,
    /// Z coordinate.
    pub z: u32,
}

impl NodeCoord {
    /// Convenience constructor.
    pub const fn new(x: u32, y: u32, z: u32) -> Self {
        NodeCoord { x, y, z }
    }
}

/// One of the torus axes, or the within-node "T" (core) axis used by Blue
/// Gene mapfile orderings such as `XYZT` and `TXYZ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Axis {
    /// Torus X.
    X,
    /// Torus Y.
    Y,
    /// Torus Z.
    Z,
    /// Core within a node.
    T,
}

/// A 3-D torus of `dims[0] × dims[1] × dims[2]` nodes. Every node has six
/// bidirectional links; wrap-around links close each dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus {
    /// Extent in X, Y, Z.
    pub dims: [u32; 3],
}

impl Torus {
    /// Creates a torus. All dimensions must be positive.
    pub fn new(x: u32, y: u32, z: u32) -> Self {
        assert!(x > 0 && y > 0 && z > 0, "torus dimensions must be positive");
        Torus { dims: [x, y, z] }
    }

    /// Total node count.
    pub const fn nodes(&self) -> u32 {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Linear index of a coordinate (x fastest, then y, then z).
    pub const fn index(&self, c: NodeCoord) -> u32 {
        c.x + self.dims[0] * (c.y + self.dims[1] * c.z)
    }

    /// Coordinate of a linear index.
    pub const fn coord(&self, idx: u32) -> NodeCoord {
        let x = idx % self.dims[0];
        let y = (idx / self.dims[0]) % self.dims[1];
        let z = idx / (self.dims[0] * self.dims[1]);
        NodeCoord { x, y, z }
    }

    /// Shortest signed step along `dim` from `a` to `b` respecting
    /// wrap-around: the returned value is in `[-dims/2, dims/2]` and `0`
    /// means equal. Positive means travel in the `+dim` direction.
    pub fn signed_dist(&self, dim: usize, a: u32, b: u32) -> i32 {
        let n = self.dims[dim] as i32;
        let mut d = (b as i32 - a as i32) % n;
        if d > n / 2 {
            d -= n;
        } else if d < -(n - 1) / 2 {
            d += n;
        }
        d
    }

    /// Hop (Manhattan-with-wraparound) distance between two nodes — the
    /// metric behind Fig. 12(b)'s "average number of hops".
    pub fn hops(&self, a: NodeCoord, b: NodeCoord) -> u32 {
        (0..3)
            .map(|d| {
                let (ac, bc) = match d {
                    0 => (a.x, b.x),
                    1 => (a.y, b.y),
                    _ => (a.z, b.z),
                };
                self.signed_dist(d, ac, bc).unsigned_abs()
            })
            .sum()
    }

    /// A directed link: from node `from` one hop in `+dim` or `-dim`.
    /// Returns the canonical link id for per-link load accounting: links are
    /// numbered `node * 6 + dim * 2 + (dir < 0)`.
    pub fn link_id(&self, from: NodeCoord, dim: usize, positive: bool) -> u32 {
        self.index(from) * 6 + (dim as u32) * 2 + u32::from(!positive)
    }

    /// Total number of directed links.
    pub const fn num_links(&self) -> u32 {
        self.nodes() * 6
    }

    /// The neighbour of `c` one hop along `dim` in direction `positive`.
    pub fn step(&self, c: NodeCoord, dim: usize, positive: bool) -> NodeCoord {
        let n = self.dims[dim];
        let adv = |v: u32| {
            if positive {
                (v + 1) % n
            } else {
                (v + n - 1) % n
            }
        };
        match dim {
            0 => NodeCoord { x: adv(c.x), ..c },
            1 => NodeCoord { y: adv(c.y), ..c },
            _ => NodeCoord { z: adv(c.z), ..c },
        }
    }

    /// Dimension-ordered (X, then Y, then Z) minimal route from `a` to `b`,
    /// as the sequence of directed link ids traversed. Blue Gene's adaptive
    /// routing stays within the minimal quadrant; deterministic
    /// dimension-ordered routing is the standard modelling simplification.
    pub fn route(&self, a: NodeCoord, b: NodeCoord) -> Vec<u32> {
        let mut links = Vec::with_capacity(self.hops(a, b) as usize);
        self.route_into(a, b, &mut links);
        links
    }

    /// [`Torus::route`] writing into a caller-supplied buffer (cleared
    /// first), so hot paths can route without allocating.
    pub fn route_into(&self, a: NodeCoord, b: NodeCoord, links: &mut Vec<u32>) {
        links.clear();
        let mut cur = a;
        for dim in 0..3 {
            let (cc, bc) = match dim {
                0 => (cur.x, b.x),
                1 => (cur.y, b.y),
                _ => (cur.z, b.z),
            };
            let d = self.signed_dist(dim, cc, bc);
            let positive = d > 0;
            for _ in 0..d.unsigned_abs() {
                links.push(self.link_id(cur, dim, positive));
                cur = self.step(cur, dim, positive);
            }
        }
        debug_assert_eq!(cur, b);
    }
}

/// A machine's processor layout: the torus of nodes plus how many MPI ranks
/// run per node (Blue Gene execution modes — CO/VN on BG/L; SMP, Dual, VN on
/// BG/P).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineShape {
    /// The node torus.
    pub torus: Torus,
    /// Ranks per node (1, 2 or 4).
    pub cores_per_node: u32,
}

impl MachineShape {
    /// Creates a shape.
    pub fn new(torus: Torus, cores_per_node: u32) -> Self {
        assert!(cores_per_node > 0);
        MachineShape {
            torus,
            cores_per_node,
        }
    }

    /// Total rank slots.
    pub const fn slots(&self) -> u32 {
        self.torus.nodes() * self.cores_per_node
    }

    /// One rack of Blue Gene/L in virtual-node mode: 512 nodes as an
    /// 8 × 8 × 8 torus, 2 ranks per node = 1024 ranks (§4.2.1).
    pub fn bgl_rack_vn() -> Self {
        MachineShape {
            torus: Torus::new(8, 8, 8),
            cores_per_node: 2,
        }
    }

    /// Blue Gene/P in virtual-node mode with `nodes` nodes (power of two,
    /// ≥ 64): 4 ranks per node (§4.2.2). Torus dimensions follow the usual
    /// partition shapes (e.g. 512 nodes = 8×8×8, 2048 nodes = 8×16×16).
    pub fn bgp_vn(nodes: u32) -> Self {
        MachineShape {
            torus: balanced_torus(nodes),
            cores_per_node: 4,
        }
    }
}

/// Picks a near-cubic power-of-two-friendly torus shape for `nodes` nodes.
pub fn balanced_torus(nodes: u32) -> Torus {
    assert!(nodes > 0);
    // Factor into three near-equal factors, preferring x ≤ y ≤ z.
    let mut best = (1u32, 1u32, nodes);
    let mut best_score = u32::MAX;
    let mut a = 1u32;
    while a * a * a <= nodes {
        if nodes.is_multiple_of(a) {
            let rem = nodes / a;
            let mut b = a;
            while b * b <= rem {
                if rem.is_multiple_of(b) {
                    let c = rem / b;
                    let score = c - a; // minimise spread
                    if score < best_score {
                        best_score = score;
                        best = (a, b, c);
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    Torus::new(best.0, best.1, best.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_coord_roundtrip() {
        let t = Torus::new(4, 4, 2);
        for idx in 0..t.nodes() {
            assert_eq!(t.index(t.coord(idx)), idx);
        }
    }

    #[test]
    fn signed_dist_wraps() {
        let t = Torus::new(8, 8, 8);
        assert_eq!(t.signed_dist(0, 0, 1), 1);
        assert_eq!(t.signed_dist(0, 0, 7), -1); // wrap is shorter
        assert_eq!(t.signed_dist(0, 0, 4), 4); // half-way: positive by convention
        assert_eq!(t.signed_dist(0, 7, 0), 1);
        assert_eq!(t.signed_dist(0, 3, 3), 0);
    }

    #[test]
    fn hops_is_a_metric() {
        let t = Torus::new(4, 4, 2);
        let a = NodeCoord::new(0, 0, 0);
        let b = NodeCoord::new(3, 2, 1);
        let c = NodeCoord::new(1, 1, 1);
        assert_eq!(t.hops(a, a), 0);
        assert_eq!(t.hops(a, b), t.hops(b, a));
        assert!(t.hops(a, c) + t.hops(c, b) >= t.hops(a, b));
    }

    #[test]
    fn hops_uses_wraparound() {
        let t = Torus::new(8, 8, 8);
        // Paper §3.3.2 footnote: torus wrap links make row ends adjacent.
        assert_eq!(t.hops(NodeCoord::new(0, 0, 0), NodeCoord::new(7, 0, 0)), 1);
        assert_eq!(t.hops(NodeCoord::new(0, 0, 0), NodeCoord::new(3, 0, 0)), 3);
    }

    #[test]
    fn fig5b_example_distances() {
        // Fig. 5(b): 4×4×2 torus; ranks 0 at (0,0,0) and 8 at (0,2,0) under
        // the oblivious mapping are 2 hops apart; 8 at (0,2,0) and 16 at
        // (0,0,1) are 2+1=3 hops apart.
        let t = Torus::new(4, 4, 2);
        assert_eq!(t.hops(NodeCoord::new(0, 0, 0), NodeCoord::new(0, 2, 0)), 2);
        assert_eq!(t.hops(NodeCoord::new(0, 2, 0), NodeCoord::new(0, 0, 1)), 3);
    }

    #[test]
    fn route_length_matches_hops() {
        let t = Torus::new(8, 4, 4);
        let a = NodeCoord::new(1, 3, 0);
        let b = NodeCoord::new(6, 0, 2);
        let route = t.route(a, b);
        assert_eq!(route.len() as u32, t.hops(a, b));
        // All link ids are valid.
        for l in route {
            assert!(l < t.num_links());
        }
    }

    #[test]
    fn route_empty_for_same_node() {
        let t = Torus::new(4, 4, 4);
        assert!(t
            .route(NodeCoord::new(2, 2, 2), NodeCoord::new(2, 2, 2))
            .is_empty());
    }

    #[test]
    fn route_into_matches_route_and_reuses_buffer() {
        let t = Torus::new(8, 4, 4);
        let mut buf = Vec::new();
        let pairs = [
            (NodeCoord::new(1, 3, 0), NodeCoord::new(6, 0, 2)),
            (NodeCoord::new(0, 0, 0), NodeCoord::new(0, 0, 0)),
            (NodeCoord::new(7, 3, 3), NodeCoord::new(0, 0, 0)),
        ];
        for (a, b) in pairs {
            t.route_into(a, b, &mut buf);
            assert_eq!(buf, t.route(a, b));
        }
    }

    #[test]
    fn route_links_are_distinct() {
        let t = Torus::new(8, 8, 8);
        let route = t.route(NodeCoord::new(0, 0, 0), NodeCoord::new(4, 4, 4));
        let mut seen = std::collections::HashSet::new();
        for l in route {
            assert!(seen.insert(l), "route revisits a link");
        }
    }

    #[test]
    fn machine_shapes() {
        let bgl = MachineShape::bgl_rack_vn();
        assert_eq!(bgl.slots(), 1024);
        let bgp = MachineShape::bgp_vn(1024);
        assert_eq!(bgp.slots(), 4096);
        assert_eq!(bgp.torus.nodes(), 1024);
    }

    #[test]
    fn balanced_torus_shapes() {
        assert_eq!(balanced_torus(512).dims, [8, 8, 8]);
        assert_eq!(balanced_torus(2048).dims, [8, 16, 16]);
        assert_eq!(balanced_torus(64).dims, [4, 4, 4]);
        // Non-cube counts still factor fully.
        let t = balanced_torus(96);
        assert_eq!(t.nodes(), 96);
    }

    #[test]
    fn link_ids_unique_per_direction() {
        let t = Torus::new(4, 4, 2);
        let mut seen = std::collections::HashSet::new();
        for idx in 0..t.nodes() {
            let c = t.coord(idx);
            for dim in 0..3 {
                for positive in [true, false] {
                    assert!(seen.insert(t.link_id(c, dim, positive)));
                }
            }
        }
        assert_eq!(seen.len() as u32, t.num_links());
    }
}

//! Rank → (node, core) mappings: the paper's four schemes.

use crate::embed::{placement_offsets, Fold, Orientation, SlotSpace};
use crate::torus::{Axis, MachineShape, NodeCoord};
use nestwx_grid::{ProcGrid, Rect};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A rank's placement: which node and which core within the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slot {
    /// Linear node index in the torus.
    pub node: u32,
    /// Core within the node.
    pub core: u32,
}

/// Errors building a mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// More ranks than slots on the machine.
    TooManyRanks {
        /// Requested ranks.
        ranks: u32,
        /// Available slots.
        slots: u32,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::TooManyRanks { ranks, slots } => {
                write!(f, "{ranks} ranks do not fit on {slots} machine slots")
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// An injective assignment of MPI ranks to machine slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// The machine being mapped onto.
    pub shape: MachineShape,
    /// `rank → slot id` (slot id = `node * cores_per_node + core`).
    rank_to_slot: Vec<u32>,
}

impl Mapping {
    /// Builds a mapping from an explicit slot list (must be injective).
    pub fn from_slots(shape: MachineShape, rank_to_slot: Vec<u32>) -> Result<Self, MappingError> {
        if rank_to_slot.len() as u32 > shape.slots() {
            return Err(MappingError::TooManyRanks {
                ranks: rank_to_slot.len() as u32,
                slots: shape.slots(),
            });
        }
        debug_assert!(
            {
                let mut s: Vec<u32> = rank_to_slot.clone();
                s.sort_unstable();
                s.windows(2).all(|w| w[0] != w[1])
            },
            "mapping is not injective"
        );
        Ok(Mapping {
            shape,
            rank_to_slot,
        })
    }

    /// Number of mapped ranks.
    pub fn len(&self) -> u32 {
        self.rank_to_slot.len() as u32
    }

    /// `true` when no ranks are mapped.
    pub fn is_empty(&self) -> bool {
        self.rank_to_slot.is_empty()
    }

    /// The slot of `rank`.
    pub fn slot(&self, rank: u32) -> Slot {
        let s = self.rank_to_slot[rank as usize];
        Slot {
            node: s / self.shape.cores_per_node,
            core: s % self.shape.cores_per_node,
        }
    }

    /// Torus coordinate of `rank`'s node.
    pub fn node_coord(&self, rank: u32) -> NodeCoord {
        self.shape.torus.coord(self.slot(rank).node)
    }

    /// Hop distance between two ranks (0 when they share a node).
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        self.shape
            .torus
            .hops(self.node_coord(a), self.node_coord(b))
    }

    /// Generic Blue Gene mapfile ordering: `order` lists the axes from the
    /// fastest-varying to the slowest. `[X, Y, Z, T]` is the default
    /// topology-oblivious mapping of Fig. 5(b); `[T, X, Y, Z]` is the TXYZ
    /// mapping compared against in Table 4.
    pub fn ordered(
        shape: MachineShape,
        nranks: u32,
        order: [Axis; 4],
    ) -> Result<Self, MappingError> {
        if nranks > shape.slots() {
            return Err(MappingError::TooManyRanks {
                ranks: nranks,
                slots: shape.slots(),
            });
        }
        let extent = |a: Axis| -> u32 {
            match a {
                Axis::X => shape.torus.dims[0],
                Axis::Y => shape.torus.dims[1],
                Axis::Z => shape.torus.dims[2],
                Axis::T => shape.cores_per_node,
            }
        };
        let mut slots = Vec::with_capacity(nranks as usize);
        for rank in 0..nranks {
            let mut tmp = rank;
            let (mut x, mut y, mut z, mut t) = (0, 0, 0, 0);
            for &axis in &order {
                let e = extent(axis);
                let c = tmp % e;
                tmp /= e;
                match axis {
                    Axis::X => x = c,
                    Axis::Y => y = c,
                    Axis::Z => z = c,
                    Axis::T => t = c,
                }
            }
            let node = shape.torus.index(NodeCoord::new(x, y, z));
            slots.push(node * shape.cores_per_node + t);
        }
        Mapping::from_slots(shape, slots)
    }

    /// The topology-oblivious sequential mapping (§3.3.1, Fig. 5b): ranks in
    /// increasing order of x, then y, then z (cores of a node filled last).
    pub fn oblivious(shape: MachineShape, nranks: u32) -> Result<Self, MappingError> {
        Mapping::ordered(shape, nranks, [Axis::X, Axis::Y, Axis::Z, Axis::T])
    }

    /// The Blue Gene `TXYZ` mapfile ordering (cores of each node filled
    /// first), the existing alternative the paper compares against.
    pub fn txyz(shape: MachineShape, nranks: u32) -> Result<Self, MappingError> {
        Mapping::ordered(shape, nranks, [Axis::T, Axis::X, Axis::Y, Axis::Z])
    }

    /// Partition mapping (§3.3.2, Fig. 6a): each sibling partition is
    /// embedded into a compact folded cuboid of the torus via first-fit
    /// placement, so neighbouring processes of each nested simulation are
    /// neighbouring nodes.
    ///
    /// `partitions` are rectangles of `grid` (they need not tile it; ranks
    /// outside any partition are placed serpentine in the leftover slots).
    pub fn partition(
        shape: MachineShape,
        grid: &ProcGrid,
        partitions: &[Rect],
    ) -> Result<Self, MappingError> {
        Self::folded(shape, grid, partitions, 0, false)
    }

    /// Multi-level mapping (§3.3.2, Fig. 6b): like partition mapping but
    /// each rectangle is folded once more than necessary (spanning at least
    /// two z planes) and its orientation (mirrorings) is chosen to minimise
    /// the hop distance of **parent-domain** halo edges to the partitions
    /// already placed — the "universal mapping scheme that benefits both
    /// the parent and nested simulations".
    pub fn multilevel(
        shape: MachineShape,
        grid: &ProcGrid,
        partitions: &[Rect],
    ) -> Result<Self, MappingError> {
        Self::folded(shape, grid, partitions, 1, true)
    }

    /// (score, orientation, anchor, offsets) of the best placement found.
    #[allow(clippy::type_complexity)]
    fn folded(
        shape: MachineShape,
        grid: &ProcGrid,
        partitions: &[Rect],
        extra_x_folds: u32,
        orient_aware: bool,
    ) -> Result<Self, MappingError> {
        let nranks = grid.len();
        if nranks > shape.slots() {
            return Err(MappingError::TooManyRanks {
                ranks: nranks,
                slots: shape.slots(),
            });
        }
        let (ex, ey, _) = crate::embed::ext_dims(&shape);
        let mut space = SlotSpace::new(shape);
        // rank -> slot id. Ordered map: lookups only today, but any future
        // iteration (debug dumps, tie-breaking scans) is deterministic for
        // free — this is a planner-output path (lint rule NW-D001).
        let mut placed: BTreeMap<u32, u32> = BTreeMap::new();

        let cross_edges = if orient_aware {
            cross_partition_edges(grid, partitions)
        } else {
            Vec::new()
        };

        for rect in partitions {
            let ranks = grid.ranks_in(rect);
            let orientations: &[Orientation] = if orient_aware {
                &Orientation::ALL
            } else {
                std::slice::from_ref(&Orientation::ALL[0])
            };

            // Try the requested fold depth first; if its cuboid cannot be
            // placed (too deep or fragmented), retreat to the minimal fold
            // before falling back to a serpentine fill.
            let mut best: Option<(u64, Orientation, (u32, u32, u32), Vec<(u32, u32, u32)>)> = None;
            let mut fold_options = vec![extra_x_folds];
            if extra_x_folds > 0 {
                fold_options.push(0);
            }
            for extra in fold_options {
                let fold = Fold::for_rect(rect.w, rect.h, ex, ey, extra);
                for &o in orientations {
                    let offs = placement_offsets(rect, &fold, o);
                    if let Some(anchor) = space.find_anchor(&offs) {
                        let score = if orient_aware {
                            orientation_score(&shape, &ranks, &offs, anchor, &cross_edges, &placed)
                        } else {
                            0
                        };
                        let better = match &best {
                            None => true,
                            Some((s, ..)) => score < *s,
                        };
                        if better {
                            best = Some((score, o, anchor, offs));
                        }
                    }
                }
                if best.is_some() {
                    break;
                }
            }
            let slots = match best {
                Some((_, _, anchor, offs)) => space.claim(&offs, anchor),
                // Fragmented / oversized: fall back to serpentine fill,
                // which still keeps consecutive ranks adjacent.
                None => space.claim_serpentine(ranks.len()),
            };
            for (rank, slot) in ranks.iter().zip(slots) {
                placed.insert(*rank, slot);
            }
        }

        // Ranks not covered by any partition (e.g. a non-tiling partition
        // list) go serpentine in the remaining slots.
        let leftover: Vec<u32> = (0..nranks).filter(|r| !placed.contains_key(r)).collect();
        if !leftover.is_empty() {
            let slots = space.claim_serpentine(leftover.len());
            for (rank, slot) in leftover.into_iter().zip(slots) {
                placed.insert(rank, slot);
            }
        }

        let rank_to_slot: Vec<u32> = (0..nranks).map(|r| placed[&r]).collect();
        Mapping::from_slots(shape, rank_to_slot)
    }
}

/// Pairs of ranks adjacent in the full virtual grid but lying in different
/// partitions — the parent-domain halo edges the multi-level mapping
/// optimises across partition boundaries.
pub fn cross_partition_edges(grid: &ProcGrid, partitions: &[Rect]) -> Vec<(u32, u32)> {
    let part_of =
        |x: u32, y: u32| -> Option<usize> { partitions.iter().position(|p| p.contains(x, y)) };
    let mut edges = Vec::new();
    for y in 0..grid.py {
        for x in 0..grid.px {
            let here = part_of(x, y);
            if x + 1 < grid.px && here != part_of(x + 1, y) {
                edges.push((grid.rank_of(x, y), grid.rank_of(x + 1, y)));
            }
            if y + 1 < grid.py && here != part_of(x, y + 1) {
                edges.push((grid.rank_of(x, y), grid.rank_of(x, y + 1)));
            }
        }
    }
    edges
}

/// Total hop count of the cross edges touching this candidate placement
/// whose other endpoint is already placed.
fn orientation_score(
    shape: &MachineShape,
    ranks: &[u32],
    offs: &[(u32, u32, u32)],
    anchor: (u32, u32, u32),
    cross_edges: &[(u32, u32)],
    placed: &BTreeMap<u32, u32>,
) -> u64 {
    let cpn = shape.cores_per_node;
    let candidate: BTreeMap<u32, NodeCoord> = ranks
        .iter()
        .zip(offs)
        .map(|(&r, &(ox, oy, oz))| {
            let (x, y, ez) = (anchor.0 + ox, anchor.1 + oy, anchor.2 + oz);
            (r, NodeCoord::new(x, y, ez / cpn))
        })
        .collect();
    let mut score = 0u64;
    for &(a, b) in cross_edges {
        let (ca, cb) = (candidate.get(&a), candidate.get(&b));
        let node_of_placed = |r: u32| placed.get(&r).map(|&s| shape.torus.coord(s / cpn));
        match (ca, cb) {
            (Some(&na), None) => {
                if let Some(nb) = node_of_placed(b) {
                    score += shape.torus.hops(na, nb) as u64;
                }
            }
            (None, Some(&nb)) => {
                if let Some(na) = node_of_placed(a) {
                    score += shape.torus.hops(na, nb) as u64;
                }
            }
            _ => {}
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::Torus;

    fn shape_4x4x2() -> MachineShape {
        MachineShape::new(Torus::new(4, 4, 2), 1)
    }

    #[test]
    fn oblivious_matches_fig5b() {
        // Fig. 5(b): 32 ranks on a 4×4×2 torus; ranks 0–3 on the y=0 row of
        // plane z=0, ranks 4–7 on y=1, …, ranks 16+ on plane z=1.
        let m = Mapping::oblivious(shape_4x4x2(), 32).unwrap();
        assert_eq!(m.node_coord(0), NodeCoord::new(0, 0, 0));
        assert_eq!(m.node_coord(1), NodeCoord::new(1, 0, 0));
        assert_eq!(m.node_coord(4), NodeCoord::new(0, 1, 0));
        assert_eq!(m.node_coord(8), NodeCoord::new(0, 2, 0));
        assert_eq!(m.node_coord(16), NodeCoord::new(0, 0, 1));
        // The paper's complaint: virtual neighbours 0 and 8 (8×4 grid) are
        // 2 hops apart, 8 and 16 are 3 hops apart.
        assert_eq!(m.hops(0, 8), 2);
        assert_eq!(m.hops(8, 16), 3);
    }

    #[test]
    fn txyz_fills_cores_first() {
        let shape = MachineShape::new(Torus::new(4, 4, 2), 2);
        let m = Mapping::txyz(shape, 8).unwrap();
        // Ranks 0 and 1 share node (0,0,0); rank 2 moves to (1,0,0).
        assert_eq!(m.slot(0), Slot { node: 0, core: 0 });
        assert_eq!(m.slot(1), Slot { node: 0, core: 1 });
        assert_eq!(m.node_coord(2), NodeCoord::new(1, 0, 0));
        assert_eq!(m.hops(0, 1), 0);
    }

    #[test]
    fn mapping_rejects_too_many_ranks() {
        let err = Mapping::oblivious(shape_4x4x2(), 33).unwrap_err();
        assert_eq!(
            err,
            MappingError::TooManyRanks {
                ranks: 33,
                slots: 32
            }
        );
    }

    #[test]
    fn partition_mapping_matches_fig6a() {
        // Fig. 5(a)/6(a): 8×4 virtual grid, two 4×4 partitions on a 4×4×2
        // torus. Partition mapping keeps virtual neighbours of each nest 1
        // hop apart (e.g. ranks 0 and 8).
        let grid = ProcGrid::new(8, 4);
        let parts = [Rect::new(0, 0, 4, 4), Rect::new(4, 0, 4, 4)];
        let m = Mapping::partition(shape_4x4x2(), &grid, &parts).unwrap();
        for rect in &parts {
            for rank in grid.ranks_in(rect) {
                for n in grid.neighbors_within(rank, rect).into_iter().flatten() {
                    assert!(
                        m.hops(rank, n) <= 1,
                        "nest neighbours {rank},{n} are {} hops apart",
                        m.hops(rank, n)
                    );
                }
            }
        }
    }

    #[test]
    fn partition_mapping_is_injective_and_total() {
        let grid = ProcGrid::new(8, 4);
        let parts = [Rect::new(0, 0, 4, 4), Rect::new(4, 0, 4, 4)];
        let m = Mapping::partition(shape_4x4x2(), &grid, &parts).unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in 0..32 {
            let s = m.slot(r);
            assert!(seen.insert((s.node, s.core)));
        }
    }

    #[test]
    fn multilevel_mapping_nest_neighbors_one_hop() {
        let grid = ProcGrid::new(8, 4);
        let parts = [Rect::new(0, 0, 4, 4), Rect::new(4, 0, 4, 4)];
        let m = Mapping::multilevel(shape_4x4x2(), &grid, &parts).unwrap();
        for rect in &parts {
            for rank in grid.ranks_in(rect) {
                for n in grid.neighbors_within(rank, rect).into_iter().flatten() {
                    assert!(m.hops(rank, n) <= 1);
                }
            }
        }
    }

    #[test]
    fn multilevel_parent_boundary_no_worse_than_partition() {
        // The whole point of multi-level mapping: cross-partition parent
        // edges should be no longer on average than under partition mapping.
        let grid = ProcGrid::new(8, 4);
        let parts = [Rect::new(0, 0, 4, 4), Rect::new(4, 0, 4, 4)];
        let edges = cross_partition_edges(&grid, &parts);
        assert!(!edges.is_empty());
        let mp = Mapping::partition(shape_4x4x2(), &grid, &parts).unwrap();
        let mm = Mapping::multilevel(shape_4x4x2(), &grid, &parts).unwrap();
        let total = |m: &Mapping| -> u32 { edges.iter().map(|&(a, b)| m.hops(a, b)).sum() };
        assert!(
            total(&mm) <= total(&mp),
            "multilevel {} > partition {}",
            total(&mm),
            total(&mp)
        );
    }

    #[test]
    fn cross_partition_edges_found() {
        let grid = ProcGrid::new(8, 4);
        let parts = [Rect::new(0, 0, 4, 4), Rect::new(4, 0, 4, 4)];
        let edges = cross_partition_edges(&grid, &parts);
        // The boundary between the partitions is the column pair (3,4): 4
        // horizontal edges.
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&(3, 4)));
        assert!(edges.contains(&(grid.rank_of(3, 3), grid.rank_of(4, 3))));
    }

    #[test]
    fn folded_mapping_on_bgl_scale() {
        // Table 2's real configuration: 32×32 virtual grid on a BG/L rack,
        // partitions 18×24, 18×8, 14×12, 14×20.
        let shape = MachineShape::bgl_rack_vn();
        let grid = ProcGrid::new(32, 32);
        let parts = [
            Rect::new(0, 0, 18, 24),
            Rect::new(0, 24, 18, 8),
            Rect::new(18, 0, 14, 12),
            Rect::new(18, 12, 14, 20),
        ];
        let m = Mapping::partition(shape, &grid, &parts).unwrap();
        assert_eq!(m.len(), 1024);
        let mut seen = std::collections::HashSet::new();
        for r in 0..1024 {
            let s = m.slot(r);
            assert!(seen.insert((s.node, s.core)));
        }
        // Average nest-neighbour hops must be well below the oblivious
        // mapping's.
        let ob = Mapping::oblivious(shape, 1024).unwrap();
        let avg = |m: &Mapping| -> f64 {
            let mut total = 0u64;
            let mut n = 0u64;
            for rect in &parts {
                for rank in grid.ranks_in(rect) {
                    for nb in grid.neighbors_within(rank, rect).into_iter().flatten() {
                        total += m.hops(rank, nb) as u64;
                        n += 1;
                    }
                }
            }
            total as f64 / n as f64
        };
        let (a_part, a_obl) = (avg(&m), avg(&ob));
        assert!(
            a_part < a_obl * 0.75,
            "partition mapping avg hops {a_part:.2} not ≪ oblivious {a_obl:.2}"
        );
    }
}

//! 3-D torus interconnect model and 2-D → 3-D process mappings.
//!
//! Implements §3.3 of the paper:
//!
//! * [`Torus`] — a 3-D torus of nodes (Blue Gene/L and /P primary network),
//!   with wrap-around hop distances and dimension-ordered routing;
//! * [`MachineShape`] — torus plus cores-per-node (CO/VN/SMP/Dual modes);
//! * [`Mapping`] — an injective assignment of MPI ranks to (node, core)
//!   slots, with constructors for the paper's four schemes:
//!   - *topology-oblivious* sequential mapping (Fig. 5b) and the Blue Gene
//!     `TXYZ` mapfile ordering — both via [`Mapping::ordered`];
//!   - *partition mapping* (Fig. 6a) — each sibling partition embedded into
//!     a compact folded cuboid of the torus ([`Mapping::partition`]);
//!   - *multi-level mapping* (Fig. 6b) — the same folded embedding, but each
//!     partition's fold is oriented to also keep **parent**-domain
//!     neighbours close ([`Mapping::multilevel`]);
//! * [`metrics`] — average/maximum hops, hop-bytes and per-link load for a
//!   communication graph under a mapping (the quantities behind Table 4–5
//!   and Fig. 11–12);
//! * [`torus5d`] — a Blue Gene/Q-style 5-D torus with serpentine
//!   partition mapping (the paper's §6 future-work topology).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod embed;
pub mod mapping;
pub mod metrics;
pub mod torus;
pub mod torus5d;

pub use mapping::{Mapping, MappingError, Slot};
pub use metrics::{CommEdge, CommStats};
pub use torus::{Axis, MachineShape, NodeCoord, Torus};
pub use torus5d::{Mapping5, Torus5};

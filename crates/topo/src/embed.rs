//! Folded embedding of virtual-grid rectangles into the torus.
//!
//! The topology-aware mappings of §3.3.2 place each sibling partition (a
//! `w × h` rectangle of the virtual processor grid) onto a *compact* region
//! of the torus so that neighbouring processes of the nested simulation are
//! neighbouring nodes. A 2-D rectangle generally does not fit in one torus
//! plane, so it is **folded**: the x extent is folded into `fx` segments of
//! length `≤ EX` and the y extent into `fy` segments of length `≤ EY`; the
//! `fx · fy` segment combinations stack along the (core-extended) z axis.
//! Folds are serpentine, so a virtual neighbour that crosses a fold line
//! moves exactly one plane in z — this generalises the two-plane fold of
//! Fig. 6(b) to arbitrary rectangle sizes.
//!
//! Placement is first-fit over a free-slot bitmap; ranks whose preferred
//! slot cannot be honoured (rounding waste, fragmentation) fall back to the
//! nearest free slot in serpentine order. The fallback keeps the mapping a
//! total injection — every rank gets a core — at a small locality cost,
//! mirroring how real mapfiles must be total.

use crate::torus::MachineShape;
use nestwx_grid::Rect;

/// Coordinates in the *core-extended* torus: `(x, y, ez)` where
/// `ez = z * cores_per_node + core`. Two slots with the same node are 0 hops
/// apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtCoord {
    /// Torus x.
    pub x: u32,
    /// Torus y.
    pub y: u32,
    /// Extended z (z-plane × cores-per-node + core).
    pub ez: u32,
}

/// The extended extents of a machine shape.
pub fn ext_dims(shape: &MachineShape) -> (u32, u32, u32) {
    (
        shape.torus.dims[0],
        shape.torus.dims[1],
        shape.torus.dims[2] * shape.cores_per_node,
    )
}

/// Slot id of an extended coordinate (node-major: all cores of a node are
/// consecutive).
pub fn slot_of(shape: &MachineShape, c: ExtCoord) -> u32 {
    let z = c.ez / shape.cores_per_node;
    let core = c.ez % shape.cores_per_node;
    let node = shape.torus.index(crate::torus::NodeCoord::new(c.x, c.y, z));
    node * shape.cores_per_node + core
}

/// Inverse of [`slot_of`].
pub fn coord_of(shape: &MachineShape, slot: u32) -> ExtCoord {
    let node = slot / shape.cores_per_node;
    let core = slot % shape.cores_per_node;
    let nc = shape.torus.coord(node);
    ExtCoord {
        x: nc.x,
        y: nc.y,
        ez: nc.z * shape.cores_per_node + core,
    }
}

/// Fold geometry of a `w × h` rectangle on an `(ex, ey, _)` extended torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fold {
    /// Number of x segments.
    pub fx: u32,
    /// Segment length in x (`≤ ex`).
    pub rx: u32,
    /// Number of y segments.
    pub fy: u32,
    /// Segment length in y (`≤ ey`).
    pub ry: u32,
}

impl Fold {
    /// Minimal fold of a `w × h` rectangle onto extents `(ex, ey)`.
    ///
    /// `extra_x_folds` doubles the x fold count that many times beyond the
    /// minimum — the multi-level mapping of Fig. 6(b) folds once more than
    /// strictly necessary so each partition spans two z planes and sibling
    /// boundaries meet across plane edges.
    pub fn for_rect(w: u32, h: u32, ex: u32, ey: u32, extra_x_folds: u32) -> Fold {
        assert!(w > 0 && h > 0);
        let mut fx = w.div_ceil(ex);
        for _ in 0..extra_x_folds {
            // Only fold further while segments stay at least 2 wide.
            if w.div_ceil(fx * 2) >= 2 {
                fx *= 2;
            }
        }
        let rx = w.div_ceil(fx);
        let fy = h.div_ceil(ey);
        let ry = h.div_ceil(fy);
        Fold { fx, rx, fy, ry }
    }

    /// Depth (extended-z extent) of the folded cuboid.
    pub fn depth(&self) -> u32 {
        self.fx * self.fy
    }

    /// Preferred offset (relative to the cuboid anchor) of rectangle-local
    /// cell `(i, j)`, `0 ≤ i < w`, `0 ≤ j < h`.
    ///
    /// Folds are serpentine in both directions, and the x-segment index is
    /// itself serpentine within each y segment, so crossing an x fold is a
    /// single z hop.
    pub fn offset(&self, i: u32, j: u32) -> (u32, u32, u32) {
        let kx = i / self.rx;
        let mut px = i % self.rx;
        if kx % 2 == 1 {
            px = self.rx - 1 - px;
        }
        let ky = j / self.ry;
        let mut py = j % self.ry;
        if ky % 2 == 1 {
            py = self.ry - 1 - py;
        }
        let kxs = if ky % 2 == 1 { self.fx - 1 - kx } else { kx };
        let layer = ky * self.fx + kxs;
        (px, py, layer)
    }
}

/// How a rectangle is mirrored before folding. The multi-level mapping
/// searches orientations; the plain partition mapping uses the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Orientation {
    /// Mirror the rectangle left-right before folding.
    pub mirror_x: bool,
    /// Mirror the rectangle top-bottom before folding.
    pub mirror_y: bool,
}

impl Orientation {
    /// All four orientations.
    pub const ALL: [Orientation; 4] = [
        Orientation {
            mirror_x: false,
            mirror_y: false,
        },
        Orientation {
            mirror_x: true,
            mirror_y: false,
        },
        Orientation {
            mirror_x: false,
            mirror_y: true,
        },
        Orientation {
            mirror_x: true,
            mirror_y: true,
        },
    ];
}

/// A tentative placement of one partition: for each rect-local cell
/// (row-major), the extended coordinate it would occupy.
pub fn placement_offsets(rect: &Rect, fold: &Fold, orient: Orientation) -> Vec<(u32, u32, u32)> {
    let mut out = Vec::with_capacity(rect.area() as usize);
    for j in 0..rect.h {
        let ej = if orient.mirror_y { rect.h - 1 - j } else { j };
        for i in 0..rect.w {
            let ei = if orient.mirror_x { rect.w - 1 - i } else { i };
            out.push(fold.offset(ei, ej));
        }
    }
    out
}

/// A free-slot bitmap over a machine shape with first-fit cuboid placement.
#[derive(Debug, Clone)]
pub struct SlotSpace {
    shape: MachineShape,
    free: Vec<bool>,
}

impl SlotSpace {
    /// All slots free.
    pub fn new(shape: MachineShape) -> Self {
        SlotSpace {
            shape,
            free: vec![true; shape.slots() as usize],
        }
    }

    /// The machine shape.
    pub fn shape(&self) -> &MachineShape {
        &self.shape
    }

    /// Number of still-free slots.
    pub fn free_count(&self) -> usize {
        self.free.iter().filter(|f| **f).count()
    }

    /// Is the slot at extended coordinate `c` free?
    fn is_free(&self, c: ExtCoord) -> bool {
        self.free[slot_of(&self.shape, c) as usize]
    }

    /// Tries to place `offsets` at anchor `(ax, ay, az)` (no wrap-around).
    fn fits(&self, offsets: &[(u32, u32, u32)], anchor: (u32, u32, u32)) -> bool {
        let (ex, ey, ez) = ext_dims(&self.shape);
        offsets.iter().all(|&(ox, oy, oz)| {
            let (x, y, z) = (anchor.0 + ox, anchor.1 + oy, anchor.2 + oz);
            x < ex && y < ey && z < ez && self.is_free(ExtCoord { x, y, ez: z })
        })
    }

    /// First-fit anchor scan (z outermost, then y, then x) for a set of
    /// offsets; returns the anchor or `None`.
    pub fn find_anchor(&self, offsets: &[(u32, u32, u32)]) -> Option<(u32, u32, u32)> {
        let (ex, ey, ez) = ext_dims(&self.shape);
        let max = offsets.iter().fold((0, 0, 0), |m, &(x, y, z)| {
            (m.0.max(x), m.1.max(y), m.2.max(z))
        });
        if max.0 >= ex || max.1 >= ey || max.2 >= ez {
            return None;
        }
        for az in 0..=(ez - 1 - max.2) {
            for ay in 0..=(ey - 1 - max.1) {
                for ax in 0..=(ex - 1 - max.0) {
                    if self.fits(offsets, (ax, ay, az)) {
                        return Some((ax, ay, az));
                    }
                }
            }
        }
        None
    }

    /// Claims the slots of `offsets` at `anchor`, returning the slot id of
    /// each offset in order.
    pub fn claim(&mut self, offsets: &[(u32, u32, u32)], anchor: (u32, u32, u32)) -> Vec<u32> {
        offsets
            .iter()
            .map(|&(ox, oy, oz)| {
                let c = ExtCoord {
                    x: anchor.0 + ox,
                    y: anchor.1 + oy,
                    ez: anchor.2 + oz,
                };
                let s = slot_of(&self.shape, c);
                assert!(self.free[s as usize], "claiming an occupied slot");
                self.free[s as usize] = false;
                s
            })
            .collect()
    }

    /// Claims the next `n` free slots in serpentine order (x serpentine
    /// within y, y serpentine within extended z), so consecutive fallback
    /// slots are at most one hop apart.
    pub fn claim_serpentine(&mut self, n: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(n);
        let (ex, ey, ez) = ext_dims(&self.shape);
        'outer: for z in 0..ez {
            for yy in 0..ey {
                let y = if z % 2 == 1 { ey - 1 - yy } else { yy };
                for xx in 0..ex {
                    let x = if yy % 2 == 1 { ex - 1 - xx } else { xx };
                    let c = ExtCoord { x, y, ez: z };
                    let s = slot_of(&self.shape, c);
                    if self.free[s as usize] {
                        self.free[s as usize] = false;
                        out.push(s);
                        if out.len() == n {
                            break 'outer;
                        }
                    }
                }
            }
        }
        assert_eq!(out.len(), n, "not enough free slots");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::Torus;

    fn shape_4x4x2() -> MachineShape {
        MachineShape::new(Torus::new(4, 4, 2), 1)
    }

    #[test]
    fn slot_coord_roundtrip() {
        let s = MachineShape::new(Torus::new(4, 4, 2), 2);
        for slot in 0..s.slots() {
            assert_eq!(slot_of(&s, coord_of(&s, slot)), slot);
        }
    }

    #[test]
    fn fold_no_fold_needed() {
        // 4×4 rect on an 4×4 extent: one segment each.
        let f = Fold::for_rect(4, 4, 4, 4, 0);
        assert_eq!((f.fx, f.rx, f.fy, f.ry), (1, 4, 1, 4));
        assert_eq!(f.depth(), 1);
        assert_eq!(f.offset(0, 0), (0, 0, 0));
        assert_eq!(f.offset(3, 3), (3, 3, 0));
    }

    #[test]
    fn fold_x_two_segments() {
        // 8-wide rect on a 4-wide torus: two x segments stacked in z.
        let f = Fold::for_rect(8, 4, 4, 4, 0);
        assert_eq!((f.fx, f.rx), (2, 4));
        assert_eq!(f.depth(), 2);
        // First segment left-to-right on layer 0.
        assert_eq!(f.offset(0, 0), (0, 0, 0));
        assert_eq!(f.offset(3, 0), (3, 0, 0));
        // Second segment serpentine (right-to-left) on layer 1 — crossing
        // the fold (i = 3 → 4) is one z hop, like Fig. 6(b).
        assert_eq!(f.offset(4, 0), (3, 0, 1));
        assert_eq!(f.offset(7, 0), (0, 0, 1));
    }

    #[test]
    fn fig6b_multilevel_fold() {
        // Fig. 6(b): a 4×4 partition folded once more than necessary on a
        // 4-wide torus → 2×4×2 cuboid; process 0 → (0,0,0), 1 → (1,0,0),
        // 2 → (1,0,1), 3 → (0,0,1).
        let f = Fold::for_rect(4, 4, 4, 4, 1);
        assert_eq!((f.fx, f.rx), (2, 2));
        assert_eq!(f.offset(0, 0), (0, 0, 0));
        assert_eq!(f.offset(1, 0), (1, 0, 0));
        assert_eq!(f.offset(2, 0), (1, 0, 1));
        assert_eq!(f.offset(3, 0), (0, 0, 1));
    }

    #[test]
    fn fold_neighbor_offsets_close() {
        // Within any fold, virtual x-neighbours differ by ≤1 in x and ≤1 in
        // layer; virtual y-neighbours by ≤1 in y or a layer jump.
        let f = Fold::for_rect(18, 24, 8, 8, 0);
        for j in 0..24 {
            for i in 0..17 {
                let a = f.offset(i, j);
                let b = f.offset(i + 1, j);
                let dx = a.0.abs_diff(b.0);
                let dl = a.2.abs_diff(b.2);
                assert!(dx + dl <= 1, "x-neighbour ({i},{j}) jumps dx={dx} dl={dl}");
            }
        }
    }

    #[test]
    fn fold_covers_all_cells_injectively() {
        let f = Fold::for_rect(18, 24, 8, 8, 0);
        let mut seen = std::collections::HashSet::new();
        for j in 0..24 {
            for i in 0..18 {
                assert!(seen.insert(f.offset(i, j)), "offset collision at ({i},{j})");
            }
        }
    }

    #[test]
    fn first_fit_places_two_planes() {
        // Two 4×4 partitions on a 4×4×2 torus: first gets plane z=0, second
        // plane z=1 — the partition-mapping layout of Fig. 6(a).
        let mut space = SlotSpace::new(shape_4x4x2());
        let rect = Rect::of_size(4, 4);
        let f = Fold::for_rect(4, 4, 4, 4, 0);
        let offs = placement_offsets(&rect, &f, Orientation::default());
        let a1 = space.find_anchor(&offs).unwrap();
        assert_eq!(a1, (0, 0, 0));
        space.claim(&offs, a1);
        let a2 = space.find_anchor(&offs).unwrap();
        assert_eq!(a2, (0, 0, 1));
        space.claim(&offs, a2);
        assert_eq!(space.free_count(), 0);
    }

    #[test]
    fn serpentine_fallback_claims_adjacent_slots() {
        let mut space = SlotSpace::new(shape_4x4x2());
        let slots = space.claim_serpentine(6);
        assert_eq!(slots.len(), 6);
        let shape = shape_4x4x2();
        for w in slots.windows(2) {
            let a = coord_of(&shape, w[0]);
            let b = coord_of(&shape, w[1]);
            let d = shape.torus.hops(
                crate::torus::NodeCoord::new(a.x, a.y, a.ez),
                crate::torus::NodeCoord::new(b.x, b.y, b.ez),
            );
            assert!(d <= 1, "serpentine neighbours {d} hops apart");
        }
    }

    #[test]
    fn claim_serpentine_exhausts_space() {
        let mut space = SlotSpace::new(shape_4x4x2());
        let slots = space.claim_serpentine(32);
        let unique: std::collections::HashSet<_> = slots.iter().collect();
        assert_eq!(unique.len(), 32);
        assert_eq!(space.free_count(), 0);
    }
}

//! Equivalence pin for the `HashMap` → `BTreeMap` conversion inside
//! `Mapping::folded` (lint rule NW-D001: no unordered maps on planner
//! paths). The digests below were captured from the *pre-conversion*
//! HashMap implementation on the same inputs; the ordered-map version must
//! reproduce them bit for bit, proving the conversion changed the data
//! structure and nothing else.

use nestwx_grid::{ProcGrid, Rect};
use nestwx_topo::{MachineShape, Mapping, Torus};

/// FNV-1a over the full rank → (node, core) sequence.
fn mapping_digest(m: &Mapping) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for r in 0..m.len() {
        let s = m.slot(r);
        for field in [s.node, s.core] {
            for byte in field.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
        }
    }
    h
}

#[test]
fn btreemap_folded_matches_hashmap_golden_small() {
    // Fig. 6 configuration: 8×4 grid, two 4×4 partitions, 4×4×2 torus.
    let shape = MachineShape::new(Torus::new(4, 4, 2), 1);
    let grid = ProcGrid::new(8, 4);
    let parts = [Rect::new(0, 0, 4, 4), Rect::new(4, 0, 4, 4)];
    let mp = Mapping::partition(shape, &grid, &parts).unwrap();
    let mm = Mapping::multilevel(shape, &grid, &parts).unwrap();
    assert_eq!(mapping_digest(&mp), 0x2e6b5c266e0feb25);
    assert_eq!(mapping_digest(&mm), 0xffdde18cb343dc25);
}

#[test]
fn btreemap_folded_matches_hashmap_golden_bgl_scale() {
    // Table 2's real configuration: 32×32 grid on a BG/L rack.
    let shape = MachineShape::bgl_rack_vn();
    let grid = ProcGrid::new(32, 32);
    let parts = [
        Rect::new(0, 0, 18, 24),
        Rect::new(0, 24, 18, 8),
        Rect::new(18, 0, 14, 12),
        Rect::new(18, 12, 14, 20),
    ];
    let mp = Mapping::partition(shape, &grid, &parts).unwrap();
    let mm = Mapping::multilevel(shape, &grid, &parts).unwrap();
    assert_eq!(mapping_digest(&mp), 0xae921171560b00ad);
    assert_eq!(mapping_digest(&mm), 0x6e72e18236898785);
}

#[test]
fn repeated_runs_are_bit_identical() {
    let shape = MachineShape::bgl_rack_vn();
    let grid = ProcGrid::new(32, 32);
    let parts = [Rect::new(0, 0, 18, 24), Rect::new(18, 0, 14, 32)];
    let a = Mapping::multilevel(shape, &grid, &parts).unwrap();
    let b = Mapping::multilevel(shape, &grid, &parts).unwrap();
    assert_eq!(mapping_digest(&a), mapping_digest(&b));
}

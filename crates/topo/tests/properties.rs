//! Property-based tests of the torus and the mappings.

use nestwx_grid::{ProcGrid, Rect};
use nestwx_topo::torus::{MachineShape, Torus};
use nestwx_topo::Mapping;
use proptest::prelude::*;

fn arb_torus() -> impl Strategy<Value = Torus> {
    (1u32..10, 1u32..10, 1u32..10).prop_map(|(x, y, z)| Torus::new(x, y, z))
}

proptest! {
    /// Hop distance is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn hops_is_a_metric(t in arb_torus(), seed in 0u64..1_000_000) {
        let n = t.nodes();
        let a = t.coord((seed % n as u64) as u32);
        let b = t.coord(((seed / 7) % n as u64) as u32);
        let c = t.coord(((seed / 49) % n as u64) as u32);
        prop_assert_eq!(t.hops(a, a), 0);
        prop_assert_eq!(t.hops(a, b), t.hops(b, a));
        prop_assert!(t.hops(a, c) + t.hops(c, b) >= t.hops(a, b));
        // Diameter bound: sum of floor(dim/2).
        let diam: u32 = t.dims.iter().map(|d| d / 2).sum();
        prop_assert!(t.hops(a, b) <= diam);
    }

    /// Dimension-ordered routes have exactly `hops` links, all valid and
    /// distinct, and arrive at the destination.
    #[test]
    fn routes_are_minimal(t in arb_torus(), s1 in any::<u32>(), s2 in any::<u32>()) {
        let a = t.coord(s1 % t.nodes());
        let b = t.coord(s2 % t.nodes());
        let route = t.route(a, b);
        prop_assert_eq!(route.len() as u32, t.hops(a, b));
        let mut seen = std::collections::HashSet::new();
        for l in &route {
            prop_assert!(*l < t.num_links());
            prop_assert!(seen.insert(*l));
        }
    }

    /// Index ↔ coordinate round-trips for every node.
    #[test]
    fn index_roundtrip(t in arb_torus()) {
        for i in 0..t.nodes() {
            prop_assert_eq!(t.index(t.coord(i)), i);
        }
    }

    /// Ordered (oblivious/TXYZ) mappings are injective for any rank count.
    #[test]
    fn ordered_mappings_injective(t in arb_torus(), cpn in 1u32..5, frac in 1u32..=100) {
        let shape = MachineShape::new(t, cpn);
        let nranks = (shape.slots() * frac / 100).max(1);
        for m in [Mapping::oblivious(shape, nranks).unwrap(), Mapping::txyz(shape, nranks).unwrap()] {
            let mut seen = std::collections::HashSet::new();
            for r in 0..nranks {
                let s = m.slot(r);
                prop_assert!(s.core < cpn);
                prop_assert!(s.node < t.nodes());
                prop_assert!(seen.insert((s.node, s.core)));
            }
        }
    }

    /// The folded mappings are injective and total whenever the partitions
    /// tile a grid matching the machine size.
    #[test]
    fn folded_mappings_injective(
        tx in 2u32..6, ty in 2u32..6, tz in 1u32..5, cpn in 1u32..3,
        cut_num in 1u32..9,
    ) {
        let t = Torus::new(tx, ty, tz);
        let shape = MachineShape::new(t, cpn);
        let slots = shape.slots();
        let grid = ProcGrid::near_square(slots);
        prop_assume!(grid.px >= 2);
        // Two partitions: a vertical cut at a proportional position.
        let cut = (grid.px * cut_num / 10).clamp(1, grid.px - 1);
        let parts = [
            Rect::new(0, 0, cut, grid.py),
            Rect::new(cut, 0, grid.px - cut, grid.py),
        ];
        for m in [
            Mapping::partition(shape, &grid, &parts).unwrap(),
            Mapping::multilevel(shape, &grid, &parts).unwrap(),
        ] {
            prop_assert_eq!(m.len(), slots);
            let mut seen = std::collections::HashSet::new();
            for r in 0..slots {
                let s = m.slot(r);
                prop_assert!(seen.insert((s.node, s.core)));
            }
        }
    }

    /// Topology-aware mappings never have *more* average nest-halo hops
    /// than the oblivious mapping (on machines with a non-trivial torus).
    #[test]
    fn folded_no_worse_than_oblivious(tz in 2u32..6, cut_num in 2u32..8) {
        let t = Torus::new(4, 4, tz);
        let shape = MachineShape::new(t, 2);
        let grid = ProcGrid::near_square(shape.slots());
        let cut = (grid.px * cut_num / 10).clamp(1, grid.px - 1);
        let parts = [
            Rect::new(0, 0, cut, grid.py),
            Rect::new(cut, 0, grid.px - cut, grid.py),
        ];
        let edges: Vec<_> = parts
            .iter()
            .flat_map(|p| nestwx_topo::metrics::halo_edges(&grid, p, 1.0))
            .collect();
        let ob = Mapping::oblivious(shape, shape.slots()).unwrap();
        let pm = Mapping::partition(shape, &grid, &parts).unwrap();
        let s_ob = nestwx_topo::CommStats::compute(&ob, &edges);
        let s_pm = nestwx_topo::CommStats::compute(&pm, &edges);
        prop_assert!(
            s_pm.avg_hops <= s_ob.avg_hops + 0.25,
            "partition {:.2} hops vs oblivious {:.2}",
            s_pm.avg_hops, s_ob.avg_hops
        );
    }

    /// Mapping hop distances agree with the torus metric.
    #[test]
    fn mapping_hops_consistent(tz in 1u32..5, a in 0u32..64, b in 0u32..64) {
        let t = Torus::new(4, 4, tz);
        let shape = MachineShape::new(t, 1);
        let n = shape.slots();
        prop_assume!(a < n && b < n);
        let m = Mapping::oblivious(shape, n).unwrap();
        prop_assert_eq!(m.hops(a, b), t.hops(m.node_coord(a), m.node_coord(b)));
    }
}

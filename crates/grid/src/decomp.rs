//! Block decomposition of a domain over a processor grid, with halo
//! geometry.
//!
//! A domain of `nx × ny` points distributed over a `Px × Py` processor grid
//! gives each rank a patch of roughly `nx/Px × ny/Py` points (§3.2). Each
//! integration step exchanges halos with the four neighbouring patches —
//! in WRF, 144 point-to-point messages per step spread over the four
//! neighbours (§3.3).

use crate::procgrid::ProcGrid;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// Which side of a patch a halo exchange crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Neighbor {
    /// Negative-x neighbour.
    West,
    /// Positive-x neighbour.
    East,
    /// Negative-y neighbour.
    North,
    /// Positive-y neighbour.
    South,
}

impl Neighbor {
    /// All four directions, in the order used throughout the workspace.
    pub const ALL: [Neighbor; 4] = [
        Neighbor::West,
        Neighbor::East,
        Neighbor::North,
        Neighbor::South,
    ];
}

/// Halo-exchange parameters of the numerical scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HaloSpec {
    /// Halo depth in grid points. WRF-ARW's RK3 advection needs up to 5.
    pub width: u32,
    /// Number of 3-D fields exchanged per step.
    pub fields: u32,
    /// Vertical levels per field.
    pub levels: u32,
    /// Bytes per value (4 for single precision WRF).
    pub bytes_per_value: u32,
    /// Point-to-point messages per step in total (WRF: 144, i.e. 36 per
    /// neighbour, §3.3).
    pub messages_per_step: u32,
}

impl HaloSpec {
    /// WRF-ARW-like halo parameters used for all paper experiments.
    ///
    /// `fields` counts 3-D field-equivalents exchanged per integration step
    /// *summed over the RK3 sub-stages* (WRF exchanges most prognostic and
    /// several diagnostic arrays once per stage — hence the 144 messages and
    /// the ≈ 40 % communication share the paper reports in §3.3).
    pub fn wrf_arw() -> Self {
        HaloSpec {
            width: 5,
            fields: 16,
            levels: 28,
            bytes_per_value: 4,
            messages_per_step: 144,
        }
    }

    /// Bytes moved across one patch edge of `edge_points` points.
    pub fn edge_bytes(&self, edge_points: u32) -> u64 {
        self.width as u64
            * edge_points as u64
            * self.fields as u64
            * self.levels as u64
            * self.bytes_per_value as u64
    }

    /// Messages sent to one neighbour per step.
    pub fn messages_per_neighbor(&self) -> u32 {
        self.messages_per_step / 4
    }
}

/// One rank's patch of a decomposed domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Patch {
    /// The rank owning this patch (rank within the *sub-communicator* of the
    /// domain being decomposed, i.e. an index into the partition's rank
    /// list).
    pub local_rank: u32,
    /// The region of the domain owned, in domain grid coordinates.
    pub region: Rect,
}

impl Patch {
    /// Number of owned grid points.
    pub fn points(&self) -> u64 {
        self.region.area()
    }
}

/// Block decomposition of an `nx × ny` domain over a `Px × Py` grid.
///
/// Remainder points go to the lower-indexed rows/columns, matching WRF's
/// `compute_memory_dims` convention, so patch sizes differ by at most one
/// point per dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decomposition {
    /// Domain extent in x.
    pub nx: u32,
    /// Domain extent in y.
    pub ny: u32,
    /// Processor grid the domain is spread over.
    pub grid: ProcGrid,
    /// x-extent (start, width) per processor column.
    cols: Vec<(u32, u32)>,
    /// y-extent (start, height) per processor row.
    rows: Vec<(u32, u32)>,
}

/// Splits `n` points over `p` parts: remainder to the first parts.
fn block_extents(n: u32, p: u32) -> Vec<(u32, u32)> {
    let base = n / p;
    let rem = n % p;
    let mut out = Vec::with_capacity(p as usize);
    let mut start = 0;
    for i in 0..p {
        let len = base + u32::from(i < rem);
        out.push((start, len));
        start += len;
    }
    out
}

impl Decomposition {
    /// Decomposes an `nx × ny` domain over `grid`.
    ///
    /// Panics if the grid has more rows/columns than the domain has points
    /// in that dimension (a patch would be empty) — the planner never
    /// allocates such grids.
    pub fn new(nx: u32, ny: u32, grid: ProcGrid) -> Self {
        assert!(grid.px > 0 && grid.py > 0, "empty processor grid");
        assert!(
            grid.px <= nx && grid.py <= ny,
            "processor grid {}x{} larger than domain {}x{}",
            grid.px,
            grid.py,
            nx,
            ny
        );
        Decomposition {
            nx,
            ny,
            grid,
            cols: block_extents(nx, grid.px),
            rows: block_extents(ny, grid.py),
        }
    }

    /// The patch of the rank at grid position `(px, py)`.
    pub fn patch_at(&self, px: u32, py: u32) -> Patch {
        let (x0, w) = self.cols[px as usize];
        let (y0, h) = self.rows[py as usize];
        Patch {
            local_rank: self.grid.rank_of(px, py),
            region: Rect::new(x0, y0, w, h),
        }
    }

    /// The patch of local rank `rank` (row-major in the grid).
    pub fn patch(&self, rank: u32) -> Patch {
        let (x, y) = self.grid.coords_of(rank);
        self.patch_at(x, y)
    }

    /// All patches, ordered by local rank.
    pub fn patches(&self) -> Vec<Patch> {
        (0..self.grid.len()).map(|r| self.patch(r)).collect()
    }

    /// Largest patch point count — the compute-bound rank.
    pub fn max_patch_points(&self) -> u64 {
        self.patches().iter().map(Patch::points).max().unwrap_or(0)
    }

    /// Bytes this rank exchanges with each existing neighbour per step.
    pub fn halo_bytes(&self, rank: u32, halo: &HaloSpec) -> [(Neighbor, Option<u64>); 4] {
        let (x, y) = self.grid.coords_of(rank);
        let p = self.patch_at(x, y);
        let mut out = [
            (Neighbor::West, None),
            (Neighbor::East, None),
            (Neighbor::North, None),
            (Neighbor::South, None),
        ];
        if x > 0 {
            out[0].1 = Some(halo.edge_bytes(p.region.h));
        }
        if x + 1 < self.grid.px {
            out[1].1 = Some(halo.edge_bytes(p.region.h));
        }
        if y > 0 {
            out[2].1 = Some(halo.edge_bytes(p.region.w));
        }
        if y + 1 < self.grid.py {
            out[3].1 = Some(halo.edge_bytes(p.region.w));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::tiles_exactly;

    #[test]
    fn block_extents_even() {
        assert_eq!(block_extents(8, 4), vec![(0, 2), (2, 2), (4, 2), (6, 2)]);
    }

    #[test]
    fn block_extents_remainder_first() {
        assert_eq!(block_extents(10, 4), vec![(0, 3), (3, 3), (6, 2), (8, 2)]);
    }

    #[test]
    fn patches_tile_domain() {
        let d = Decomposition::new(286, 307, ProcGrid::new(16, 32));
        let regions: Vec<Rect> = d.patches().iter().map(|p| p.region).collect();
        assert!(tiles_exactly(&Rect::of_size(286, 307), &regions));
    }

    #[test]
    fn patch_sizes_near_uniform() {
        let d = Decomposition::new(415, 445, ProcGrid::new(18, 24));
        let pts: Vec<u64> = d.patches().iter().map(Patch::points).collect();
        let (min, max) = (pts.iter().min().unwrap(), pts.iter().max().unwrap());
        // Widths differ by ≤1 and heights differ by ≤1.
        assert!(max - min <= 24 + 19); // (w+1)(h+1) - wh = w + h + 1 bound
    }

    #[test]
    #[should_panic]
    fn rejects_grid_larger_than_domain() {
        Decomposition::new(4, 4, ProcGrid::new(8, 2));
    }

    #[test]
    fn halo_bytes_boundary_ranks() {
        let d = Decomposition::new(100, 100, ProcGrid::new(4, 4));
        let halo = HaloSpec::wrf_arw();
        // Corner rank 0 has only east and south neighbours.
        let hb = d.halo_bytes(0, &halo);
        assert!(hb[0].1.is_none()); // west
        assert!(hb[1].1.is_some()); // east
        assert!(hb[2].1.is_none()); // north
        assert!(hb[3].1.is_some()); // south
                                    // Interior rank 5 has all four.
        let hb = d.halo_bytes(5, &halo);
        assert!(hb.iter().all(|(_, b)| b.is_some()));
    }

    #[test]
    fn halo_edge_bytes_formula() {
        let halo = HaloSpec {
            width: 5,
            fields: 12,
            levels: 28,
            bytes_per_value: 4,
            messages_per_step: 144,
        };
        // 25-point edge: 5 * 25 * 12 * 28 * 4 bytes.
        assert_eq!(halo.edge_bytes(25), 5 * 25 * 12 * 28 * 4);
        assert_eq!(halo.messages_per_neighbor(), 36);
    }

    #[test]
    fn wrf_messages_per_step_is_144() {
        assert_eq!(HaloSpec::wrf_arw().messages_per_step, 144);
    }
}

//! The 2-D feature space of the performance predictor.
//!
//! §3.1 of the paper: a domain of width `nx` and height `ny` is represented
//! by the point `(aspect ratio, total points)` in the plane. Using both
//! features (rather than points alone) lets the model distinguish the x- and
//! y-communication volumes of two domains with equal area.

use crate::domain::{Domain, NestSpec};
use serde::{Deserialize, Serialize};

/// A domain's position in the predictor's feature plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainFeatures {
    /// `nx / ny`.
    pub aspect_ratio: f64,
    /// `nx * ny`.
    pub points: f64,
}

impl DomainFeatures {
    /// Features from raw dimensions.
    pub fn from_dims(nx: u32, ny: u32) -> Self {
        assert!(nx > 0 && ny > 0, "features of an empty domain");
        DomainFeatures {
            aspect_ratio: nx as f64 / ny as f64,
            points: nx as f64 * ny as f64,
        }
    }

    /// The feature-plane coordinates `(x, y) = (aspect, points)` used by the
    /// Delaunay interpolator.
    pub fn xy(&self) -> (f64, f64) {
        (self.aspect_ratio, self.points)
    }

    /// Recovers `(nx, ny)` (real-valued) from the features. Inverse of
    /// [`DomainFeatures::from_dims`] up to rounding: `nx = sqrt(a·p)`,
    /// `ny = sqrt(p/a)`.
    pub fn dims(&self) -> (f64, f64) {
        (
            (self.aspect_ratio * self.points).sqrt(),
            (self.points / self.aspect_ratio).sqrt(),
        )
    }
}

impl From<&Domain> for DomainFeatures {
    fn from(d: &Domain) -> Self {
        DomainFeatures::from_dims(d.nx, d.ny)
    }
}

impl From<&NestSpec> for DomainFeatures {
    fn from(n: &NestSpec) -> Self {
        DomainFeatures::from_dims(n.nx, n.ny)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_of_paper_ranges() {
        // Paper: domain sizes 94×124 .. 415×445, aspect ratio 0.5–1.5.
        let f = DomainFeatures::from_dims(94, 124);
        assert!((f.points - 11656.0).abs() < 1e-9);
        assert!(f.aspect_ratio > 0.5 && f.aspect_ratio < 1.5);
    }

    #[test]
    fn equal_area_different_aspect_are_distinct() {
        // The whole motivation for the second feature (§3.1): nx1·ny1 ==
        // nx2·ny2 must not collapse to the same feature point.
        let a = DomainFeatures::from_dims(200, 300);
        let b = DomainFeatures::from_dims(300, 200);
        assert_eq!(a.points, b.points);
        assert_ne!(a.aspect_ratio, b.aspect_ratio);
    }

    #[test]
    fn dims_roundtrip() {
        let f = DomainFeatures::from_dims(286, 307);
        let (nx, ny) = f.dims();
        assert!((nx - 286.0).abs() < 1e-9);
        assert!((ny - 307.0).abs() < 1e-9);
    }
}

//! Parent domains and nested regions of interest.
//!
//! Mirrors WRF's nesting vocabulary (§1, §4.1 of the paper): a coarse
//! *parent* domain may contain several *nests* (children). Nests sharing a
//! parent are *siblings*. Each nest runs at a resolution `parent_dx / r`
//! where `r` is the refinement ratio, and is integrated `r` times per parent
//! step.

use crate::rect::Rect;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a domain within a [`NestedConfig`]. Id 0 is the parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DomainId(pub usize);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{:02}", self.0)
    }
}

/// Errors arising when assembling a nested configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainError {
    /// A nest (converted to parent coordinates) sticks out of its parent.
    NestOutsideParent {
        /// Index of the offending nest (0-based among siblings).
        nest: usize,
    },
    /// Refinement ratio must be at least 1.
    BadRefinement {
        /// Index of the offending nest.
        nest: usize,
        /// The offending ratio.
        ratio: u32,
    },
    /// A second-level nest referenced an invalid parent (must be an
    /// earlier, first-level nest).
    BadNestParent {
        /// Index of the offending nest.
        nest: usize,
        /// The referenced parent index.
        parent: usize,
    },
    /// A domain dimension was zero.
    EmptyDomain,
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainError::NestOutsideParent { nest } => {
                write!(f, "nest {nest} does not fit inside its parent domain")
            }
            DomainError::BadRefinement { nest, ratio } => {
                write!(f, "nest {nest} has invalid refinement ratio {ratio}")
            }
            DomainError::BadNestParent { nest, parent } => {
                write!(f, "nest {nest} references invalid parent nest {parent}")
            }
            DomainError::EmptyDomain => write!(f, "domain has a zero dimension"),
        }
    }
}

impl std::error::Error for DomainError {}

/// A simulation domain: a grid of `nx × ny` points at horizontal resolution
/// `dx_km`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Domain {
    /// Points in the x (west–east) direction.
    pub nx: u32,
    /// Points in the y (south–north) direction.
    pub ny: u32,
    /// Horizontal grid spacing in kilometres.
    pub dx_km: f64,
}

impl Domain {
    /// Creates a parent domain. The paper's Pacific parent is
    /// `Domain::parent(286, 307, 24.0)`.
    pub fn parent(nx: u32, ny: u32, dx_km: f64) -> Self {
        Domain { nx, ny, dx_km }
    }

    /// Total number of grid points, the predictor's first feature.
    pub fn points(&self) -> u64 {
        self.nx as u64 * self.ny as u64
    }

    /// Aspect ratio `nx / ny`, the predictor's second feature.
    pub fn aspect_ratio(&self) -> f64 {
        self.nx as f64 / self.ny as f64
    }

    /// The domain as a rectangle anchored at the origin.
    pub fn rect(&self) -> Rect {
        Rect::of_size(self.nx, self.ny)
    }
}

/// Specification of one nested region of interest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NestSpec {
    /// Points in x at the *nest's* resolution.
    pub nx: u32,
    /// Points in y at the nest's resolution.
    pub ny: u32,
    /// Refinement ratio `r`: the nest is stepped `r` times per parent step
    /// and its resolution is `parent.dx_km / r`.
    pub refine_ratio: u32,
    /// Position of the nest's lower-left corner in *parent* grid coordinates
    /// (the main domain for level-1 nests, the enclosing nest's grid for
    /// level-2 nests).
    pub offset: (u32, u32),
    /// `None` for a first-level nest (child of the main domain); `Some(i)`
    /// for a second-level nest inside `nests[i]` — §4.1.1's
    /// "sibling domains at the second level".
    #[serde(default)]
    pub parent_nest: Option<usize>,
}

impl NestSpec {
    /// Creates a first-level nest spec. `offset` is in parent grid
    /// coordinates.
    pub fn new(nx: u32, ny: u32, refine_ratio: u32, offset: (u32, u32)) -> Self {
        NestSpec {
            nx,
            ny,
            refine_ratio,
            offset,
            parent_nest: None,
        }
    }

    /// Creates a second-level nest inside nest `parent_idx` (offset in that
    /// nest's grid coordinates; `refine_ratio` is relative to that nest).
    pub fn child_of(
        parent_idx: usize,
        nx: u32,
        ny: u32,
        refine_ratio: u32,
        offset: (u32, u32),
    ) -> Self {
        NestSpec {
            nx,
            ny,
            refine_ratio,
            offset,
            parent_nest: Some(parent_idx),
        }
    }

    /// Number of nest grid points.
    pub fn points(&self) -> u64 {
        self.nx as u64 * self.ny as u64
    }

    /// Aspect ratio `nx / ny`.
    pub fn aspect_ratio(&self) -> f64 {
        self.nx as f64 / self.ny as f64
    }

    /// Footprint of the nest in parent grid coordinates (rounded up to whole
    /// parent cells).
    pub fn footprint_in_parent(&self) -> Rect {
        let w = self.nx.div_ceil(self.refine_ratio);
        let h = self.ny.div_ceil(self.refine_ratio);
        Rect::new(self.offset.0, self.offset.1, w, h)
    }

    /// The nest as a standalone [`Domain`] given the parent's resolution.
    pub fn as_domain(&self, parent_dx_km: f64) -> Domain {
        Domain {
            nx: self.nx,
            ny: self.ny,
            dx_km: parent_dx_km / self.refine_ratio as f64,
        }
    }
}

/// A validated parent-with-siblings configuration — the unit of work the
/// whole paper is about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NestedConfig {
    /// The coarse parent domain.
    pub parent: Domain,
    /// The sibling nests (all at nesting level 1).
    pub nests: Vec<NestSpec>,
}

impl NestedConfig {
    /// Validates and builds a configuration.
    ///
    /// Checks that every nest has `r ≥ 1` and that its footprint (in its
    /// parent's coordinates) lies inside that parent — the main domain for
    /// first-level nests, the referenced nest for second-level nests (whose
    /// `parent_nest` must point at an *earlier, first-level* nest). Note
    /// that WRF allows sibling *overlap* in general but the paper's
    /// configurations are disjoint regions of interest; overlap is
    /// therefore allowed here and only containment is enforced.
    pub fn new(parent: Domain, nests: Vec<NestSpec>) -> Result<Self, DomainError> {
        if parent.nx == 0 || parent.ny == 0 {
            return Err(DomainError::EmptyDomain);
        }
        for (i, n) in nests.iter().enumerate() {
            if n.nx == 0 || n.ny == 0 {
                return Err(DomainError::EmptyDomain);
            }
            if n.refine_ratio == 0 {
                return Err(DomainError::BadRefinement {
                    nest: i,
                    ratio: n.refine_ratio,
                });
            }
            match n.parent_nest {
                None => {
                    if !parent.rect().contains_rect(&n.footprint_in_parent()) {
                        return Err(DomainError::NestOutsideParent { nest: i });
                    }
                }
                Some(p) => {
                    // Two levels of nesting, defined parent-before-child.
                    if p >= i || nests[p].parent_nest.is_some() {
                        return Err(DomainError::BadNestParent { nest: i, parent: p });
                    }
                    let host = Rect::of_size(nests[p].nx, nests[p].ny);
                    if !host.contains_rect(&n.footprint_in_parent()) {
                        return Err(DomainError::NestOutsideParent { nest: i });
                    }
                }
            }
        }
        Ok(NestedConfig { parent, nests })
    }

    /// Indices of the first-level nests, in order.
    pub fn level1(&self) -> Vec<usize> {
        (0..self.nests.len())
            .filter(|&i| self.nests[i].parent_nest.is_none())
            .collect()
    }

    /// Indices of the second-level nests inside nest `i`, in order.
    pub fn children_of(&self, i: usize) -> Vec<usize> {
        (0..self.nests.len())
            .filter(|&j| self.nests[j].parent_nest == Some(i))
            .collect()
    }

    /// `true` if any nest is at the second level.
    pub fn has_second_level(&self) -> bool {
        self.nests.iter().any(|n| n.parent_nest.is_some())
    }

    /// Number of sibling nests.
    pub fn num_siblings(&self) -> usize {
        self.nests.len()
    }

    /// Domain ids: parent is `DomainId(0)`, nests follow in order.
    pub fn nest_id(&self, i: usize) -> DomainId {
        DomainId(i + 1)
    }

    /// The largest nest by point count, used in Table 3's
    /// "maximum nest size" axis.
    pub fn max_nest_points(&self) -> u64 {
        self.nests.iter().map(NestSpec::points).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pacific_parent() -> Domain {
        Domain::parent(286, 307, 24.0)
    }

    #[test]
    fn points_and_aspect() {
        let d = pacific_parent();
        assert_eq!(d.points(), 286 * 307);
        assert!((d.aspect_ratio() - 286.0 / 307.0).abs() < 1e-12);
    }

    #[test]
    fn nest_footprint_rounds_up() {
        let n = NestSpec::new(415, 445, 3, (10, 10));
        let fp = n.footprint_in_parent();
        assert_eq!(fp.w, 139); // ceil(415/3)
        assert_eq!(fp.h, 149); // ceil(445/3)
        assert_eq!((fp.x0, fp.y0), (10, 10));
    }

    #[test]
    fn nest_as_domain_refines_resolution() {
        let n = NestSpec::new(415, 445, 3, (0, 0));
        let d = n.as_domain(24.0);
        assert!((d.dx_km - 8.0).abs() < 1e-12);
        assert_eq!(d.points(), 415 * 445);
    }

    #[test]
    fn config_accepts_paper_setup() {
        // Fig. 2's configuration: 286×307 parent, 415×445 nest at r = 3.
        let cfg = NestedConfig::new(pacific_parent(), vec![NestSpec::new(415, 445, 3, (50, 60))])
            .unwrap();
        assert_eq!(cfg.num_siblings(), 1);
        assert_eq!(cfg.max_nest_points(), 415 * 445);
    }

    #[test]
    fn config_rejects_out_of_bounds_nest() {
        let err = NestedConfig::new(
            pacific_parent(),
            vec![NestSpec::new(415, 445, 3, (200, 200))],
        )
        .unwrap_err();
        assert_eq!(err, DomainError::NestOutsideParent { nest: 0 });
    }

    #[test]
    fn config_rejects_zero_refinement() {
        let err = NestedConfig::new(pacific_parent(), vec![NestSpec::new(50, 50, 0, (0, 0))])
            .unwrap_err();
        assert!(matches!(
            err,
            DomainError::BadRefinement { nest: 0, ratio: 0 }
        ));
    }

    #[test]
    fn config_rejects_empty_domains() {
        assert_eq!(
            NestedConfig::new(Domain::parent(0, 10, 24.0), vec![]).unwrap_err(),
            DomainError::EmptyDomain
        );
        assert_eq!(
            NestedConfig::new(pacific_parent(), vec![NestSpec::new(0, 5, 3, (0, 0))]).unwrap_err(),
            DomainError::EmptyDomain
        );
    }

    #[test]
    fn nest_ids_start_after_parent() {
        let cfg = NestedConfig::new(
            pacific_parent(),
            vec![
                NestSpec::new(100, 100, 3, (0, 0)),
                NestSpec::new(100, 100, 3, (100, 100)),
            ],
        )
        .unwrap();
        assert_eq!(cfg.nest_id(0), DomainId(1));
        assert_eq!(cfg.nest_id(1), DomainId(2));
    }
}

//! The virtual processor grid.
//!
//! WRF arranges the `P` MPI ranks as a 2-D `Px × Py` grid and gives each rank
//! a rectangular patch of the domain (§3.2). The paper's partitioner then
//! carves *this* grid into per-sibling sub-rectangles.

use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// A `Px × Py` virtual processor grid. Ranks are numbered row-major:
/// rank = `y * px + x`, matching Fig. 5(a) of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcGrid {
    /// Columns of processors.
    pub px: u32,
    /// Rows of processors.
    pub py: u32,
}

impl ProcGrid {
    /// Creates a grid with explicit dimensions.
    pub const fn new(px: u32, py: u32) -> Self {
        ProcGrid { px, py }
    }

    /// Picks the most square-like factorisation of `p` processors,
    /// preferring `px ≤ py` on ties — the choice WRF's
    /// `MODULE_DM` makes for its default decomposition.
    ///
    /// Panics if `p == 0`.
    pub fn near_square(p: u32) -> Self {
        assert!(p > 0, "cannot build a processor grid over 0 processors");
        let mut best = (1u32, p);
        let mut x = 1u32;
        while x * x <= p {
            if p.is_multiple_of(x) {
                best = (x, p / x);
            }
            x += 1;
        }
        // best.0 <= best.1 by construction; px <= py.
        ProcGrid {
            px: best.0,
            py: best.1,
        }
    }

    /// Total number of ranks.
    pub const fn len(&self) -> u32 {
        self.px * self.py
    }

    /// `true` when the grid is empty.
    pub const fn is_empty(&self) -> bool {
        self.px == 0 || self.py == 0
    }

    /// Row-major rank of grid position `(x, y)`.
    pub const fn rank_of(&self, x: u32, y: u32) -> u32 {
        y * self.px + x
    }

    /// Grid position of `rank`.
    pub const fn coords_of(&self, rank: u32) -> (u32, u32) {
        (rank % self.px, rank / self.px)
    }

    /// The grid as a [`Rect`] (for the partitioner).
    pub const fn rect(&self) -> Rect {
        Rect {
            x0: 0,
            y0: 0,
            w: self.px,
            h: self.py,
        }
    }

    /// Ranks covered by a sub-rectangle of the grid, row-major within the
    /// rectangle. This is the ordering used to build per-sibling
    /// sub-communicators.
    pub fn ranks_in(&self, r: &Rect) -> Vec<u32> {
        debug_assert!(self.rect().contains_rect(r));
        r.cells().map(|(x, y)| self.rank_of(x, y)).collect()
    }

    /// The four-neighbour (west, east, north, south) ranks of `rank`
    /// *within* sub-rectangle `within`, or `None` per direction at the
    /// sub-rectangle boundary. WRF halo exchange is non-periodic.
    pub fn neighbors_within(&self, rank: u32, within: &Rect) -> [Option<u32>; 4] {
        let (x, y) = self.coords_of(rank);
        debug_assert!(within.contains(x, y));
        let west = (x > within.x0).then(|| self.rank_of(x - 1, y));
        let east = (x + 1 < within.x1()).then(|| self.rank_of(x + 1, y));
        let north = (y > within.y0).then(|| self.rank_of(x, y - 1));
        let south = (y + 1 < within.y1()).then(|| self.rank_of(x, y + 1));
        [west, east, north, south]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_square_perfect_square() {
        assert_eq!(ProcGrid::near_square(1024), ProcGrid::new(32, 32));
        assert_eq!(ProcGrid::near_square(4096), ProcGrid::new(64, 64));
    }

    #[test]
    fn near_square_non_square() {
        assert_eq!(ProcGrid::near_square(512), ProcGrid::new(16, 32));
        assert_eq!(ProcGrid::near_square(2048), ProcGrid::new(32, 64));
        assert_eq!(ProcGrid::near_square(12), ProcGrid::new(3, 4));
    }

    #[test]
    fn near_square_prime() {
        assert_eq!(ProcGrid::near_square(13), ProcGrid::new(1, 13));
    }

    #[test]
    fn rank_coord_roundtrip() {
        let g = ProcGrid::new(8, 4);
        for rank in 0..g.len() {
            let (x, y) = g.coords_of(rank);
            assert_eq!(g.rank_of(x, y), rank);
        }
    }

    #[test]
    fn fig5a_rank_numbering() {
        // Fig. 5(a): 8×4 virtual grid; ranks 0–3 and 8–11 etc. belong to the
        // left 4-wide partition; rank 8 sits directly below rank 0.
        let g = ProcGrid::new(8, 4);
        assert_eq!(g.coords_of(0), (0, 0));
        assert_eq!(g.coords_of(8), (0, 1));
        assert_eq!(g.coords_of(3), (3, 0));
        assert_eq!(g.coords_of(4), (4, 0));
    }

    #[test]
    fn ranks_in_subrect() {
        let g = ProcGrid::new(8, 4);
        let left = Rect::new(0, 0, 4, 4);
        let ranks = g.ranks_in(&left);
        assert_eq!(ranks.len(), 16);
        assert_eq!(&ranks[..4], &[0, 1, 2, 3]);
        assert_eq!(&ranks[4..8], &[8, 9, 10, 11]);
    }

    #[test]
    fn neighbors_respect_partition_boundary() {
        let g = ProcGrid::new(8, 4);
        let left = Rect::new(0, 0, 4, 4);
        // Rank 3 is at the right edge of the left partition: no east
        // neighbour within the partition even though rank 4 exists globally.
        let n = g.neighbors_within(3, &left);
        assert_eq!(n, [Some(2), None, None, Some(11)]);
        // Interior rank.
        let n = g.neighbors_within(9, &left);
        assert_eq!(n, [Some(8), Some(10), Some(1), Some(17)]);
    }

    #[test]
    fn neighbors_in_full_grid() {
        let g = ProcGrid::new(8, 4);
        let all = g.rect();
        let n = g.neighbors_within(3, &all);
        assert_eq!(n, [Some(2), Some(4), None, Some(11)]);
    }
}

//! Axis-aligned integer rectangles.
//!
//! [`Rect`] is used in two roles throughout the workspace: as a region of a
//! simulation domain (grid points) and as a sub-grid of the virtual processor
//! grid (ranks). Both are discrete, so one type serves.

use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle of integer cells: `[x0, x0+w) × [y0, y0+h)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Leftmost column (inclusive).
    pub x0: u32,
    /// Topmost row (inclusive).
    pub y0: u32,
    /// Width in cells (columns).
    pub w: u32,
    /// Height in cells (rows).
    pub h: u32,
}

impl Rect {
    /// Creates a rectangle at the origin.
    pub const fn of_size(w: u32, h: u32) -> Self {
        Rect { x0: 0, y0: 0, w, h }
    }

    /// Creates a rectangle with explicit position and size.
    pub const fn new(x0: u32, y0: u32, w: u32, h: u32) -> Self {
        Rect { x0, y0, w, h }
    }

    /// Number of cells contained.
    pub const fn area(&self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// `true` if the rectangle contains no cells.
    pub const fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// One past the rightmost column.
    pub const fn x1(&self) -> u32 {
        self.x0 + self.w
    }

    /// One past the bottom row.
    pub const fn y1(&self) -> u32 {
        self.y0 + self.h
    }

    /// Width / height, the feature the paper's predictor uses alongside the
    /// point count (§3.1).
    pub fn aspect_ratio(&self) -> f64 {
        assert!(!self.is_empty(), "aspect ratio of an empty rectangle");
        self.w as f64 / self.h as f64
    }

    /// How square-like the rectangle is: `min(w,h) / max(w,h)` in `(0, 1]`.
    ///
    /// Algorithm 1 always splits along the longer dimension precisely to keep
    /// this metric high (Fig. 4), which balances x- and y-communication.
    pub fn squareness(&self) -> f64 {
        assert!(!self.is_empty(), "squareness of an empty rectangle");
        let (lo, hi) = if self.w < self.h {
            (self.w, self.h)
        } else {
            (self.h, self.w)
        };
        lo as f64 / hi as f64
    }

    /// `true` if `(x, y)` lies inside the rectangle.
    pub const fn contains(&self, x: u32, y: u32) -> bool {
        x >= self.x0 && x < self.x0 + self.w && y >= self.y0 && y < self.y0 + self.h
    }

    /// `true` if `other` lies fully inside `self`.
    pub const fn contains_rect(&self, other: &Rect) -> bool {
        other.x0 >= self.x0
            && other.y0 >= self.y0
            && other.x0 + other.w <= self.x0 + self.w
            && other.y0 + other.h <= self.y0 + self.h
    }

    /// Intersection of two rectangles, or `None` when disjoint.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x0.max(other.x0);
        let y0 = self.y0.max(other.y0);
        let x1 = self.x1().min(other.x1());
        let y1 = self.y1().min(other.y1());
        if x0 < x1 && y0 < y1 {
            Some(Rect::new(x0, y0, x1 - x0, y1 - y0))
        } else {
            None
        }
    }

    /// `true` if the rectangles share no cell.
    pub fn is_disjoint(&self, other: &Rect) -> bool {
        self.intersect(other).is_none()
    }

    /// Splits vertically into a left part of width `w_left` and the rest.
    ///
    /// Panics if `w_left` is not strictly between 0 and `w`.
    pub fn split_x(&self, w_left: u32) -> (Rect, Rect) {
        assert!(
            w_left > 0 && w_left < self.w,
            "split_x({w_left}) of width-{} rect",
            self.w
        );
        (
            Rect::new(self.x0, self.y0, w_left, self.h),
            Rect::new(self.x0 + w_left, self.y0, self.w - w_left, self.h),
        )
    }

    /// Splits horizontally into a top part of height `h_top` and the rest.
    ///
    /// Panics if `h_top` is not strictly between 0 and `h`.
    pub fn split_y(&self, h_top: u32) -> (Rect, Rect) {
        assert!(
            h_top > 0 && h_top < self.h,
            "split_y({h_top}) of height-{} rect",
            self.h
        );
        (
            Rect::new(self.x0, self.y0, self.w, h_top),
            Rect::new(self.x0, self.y0 + h_top, self.w, self.h - h_top),
        )
    }

    /// Iterates over all `(x, y)` cells in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let r = *self;
        (r.y0..r.y1()).flat_map(move |y| (r.x0..r.x1()).map(move |x| (x, y)))
    }
}

/// Checks that `parts` exactly tile `whole`: pairwise disjoint and the areas
/// sum to the whole. Used as a correctness oracle by the partitioner tests.
pub fn tiles_exactly(whole: &Rect, parts: &[Rect]) -> bool {
    let total: u64 = parts.iter().map(Rect::area).sum();
    if total != whole.area() {
        return false;
    }
    for p in parts {
        if !whole.contains_rect(p) {
            return false;
        }
    }
    for (i, a) in parts.iter().enumerate() {
        for b in &parts[i + 1..] {
            if !a.is_disjoint(b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_empty() {
        assert_eq!(Rect::of_size(3, 4).area(), 12);
        assert!(Rect::of_size(0, 4).is_empty());
        assert!(Rect::of_size(4, 0).is_empty());
        assert!(!Rect::of_size(1, 1).is_empty());
    }

    #[test]
    fn aspect_ratio_matches_paper_features() {
        // Paper's minimum/maximum nest sizes: 94×124 and 415×445.
        let small = Rect::of_size(94, 124);
        let large = Rect::of_size(415, 445);
        assert!((small.aspect_ratio() - 94.0 / 124.0).abs() < 1e-12);
        assert!((large.aspect_ratio() - 415.0 / 445.0).abs() < 1e-12);
    }

    #[test]
    fn squareness_bounds() {
        assert_eq!(Rect::of_size(4, 4).squareness(), 1.0);
        assert_eq!(Rect::of_size(1, 4).squareness(), 0.25);
        assert_eq!(Rect::of_size(4, 1).squareness(), 0.25);
    }

    #[test]
    fn contains_cells() {
        let r = Rect::new(2, 3, 4, 5);
        assert!(r.contains(2, 3));
        assert!(r.contains(5, 7));
        assert!(!r.contains(6, 3));
        assert!(!r.contains(2, 8));
        assert!(!r.contains(1, 3));
    }

    #[test]
    fn contains_rect_edges() {
        let outer = Rect::new(0, 0, 10, 10);
        assert!(outer.contains_rect(&Rect::new(0, 0, 10, 10)));
        assert!(outer.contains_rect(&Rect::new(9, 9, 1, 1)));
        assert!(!outer.contains_rect(&Rect::new(9, 9, 2, 1)));
    }

    #[test]
    fn intersection() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(2, 2, 4, 4);
        assert_eq!(a.intersect(&b), Some(Rect::new(2, 2, 2, 2)));
        let c = Rect::new(4, 0, 2, 2);
        assert!(a.is_disjoint(&c)); // touching edges share no cell
    }

    #[test]
    fn split_x_partitions() {
        let r = Rect::new(1, 1, 6, 3);
        let (l, rr) = r.split_x(2);
        assert_eq!(l, Rect::new(1, 1, 2, 3));
        assert_eq!(rr, Rect::new(3, 1, 4, 3));
        assert!(tiles_exactly(&r, &[l, rr]));
    }

    #[test]
    fn split_y_partitions() {
        let r = Rect::new(0, 0, 3, 7);
        let (t, b) = r.split_y(5);
        assert_eq!(t, Rect::new(0, 0, 3, 5));
        assert_eq!(b, Rect::new(0, 5, 3, 2));
        assert!(tiles_exactly(&r, &[t, b]));
    }

    #[test]
    #[should_panic]
    fn split_x_rejects_degenerate() {
        Rect::of_size(4, 4).split_x(4);
    }

    #[test]
    fn cells_row_major() {
        let r = Rect::new(1, 2, 2, 2);
        let cells: Vec<_> = r.cells().collect();
        assert_eq!(cells, vec![(1, 2), (2, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn tiling_oracle_detects_overlap_and_gap() {
        let whole = Rect::of_size(4, 4);
        let ok = [Rect::new(0, 0, 2, 4), Rect::new(2, 0, 2, 4)];
        assert!(tiles_exactly(&whole, &ok));
        let overlap = [Rect::new(0, 0, 3, 4), Rect::new(2, 0, 2, 4)];
        assert!(!tiles_exactly(&whole, &overlap));
        let gap = [Rect::new(0, 0, 1, 4), Rect::new(2, 0, 2, 4)];
        assert!(!tiles_exactly(&whole, &gap));
        let outside = [
            Rect::new(0, 0, 2, 4),
            Rect::new(2, 0, 2, 3),
            Rect::new(2, 3, 2, 2),
        ];
        assert!(!tiles_exactly(&whole, &outside));
    }
}

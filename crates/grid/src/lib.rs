//! Domain geometry for nested weather simulations.
//!
//! This crate provides the spatial vocabulary shared by every other `nestwx`
//! crate:
//!
//! * [`Rect`] — an axis-aligned integer rectangle, used both for regions of
//!   simulation domains and for sub-grids of the virtual processor grid;
//! * [`Domain`] and [`NestSpec`] — a coarse parent simulation domain and the
//!   finer-resolution nested *regions of interest* spawned inside it, as in
//!   WRF's one-way/two-way nesting;
//! * [`ProcGrid`] — the `Px × Py` virtual processor grid that a domain is
//!   block-decomposed over;
//! * [`Decomposition`] — the per-rank patches of a block decomposition,
//!   including halo-exchange geometry (which neighbours, how many bytes).
//!
//! The paper's setting (§1, §3): the parent domain is solved on the full
//! processor grid; each nested child domain is solved `r` times per parent
//! step (where `r` is the resolution ratio), with boundary data interpolated
//! from the parent before and feedback after the `r` steps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decomp;
pub mod domain;
pub mod features;
pub mod procgrid;
pub mod rect;

pub use decomp::{Decomposition, HaloSpec, Neighbor, Patch};
pub use domain::{Domain, DomainError, DomainId, NestSpec, NestedConfig};
pub use features::DomainFeatures;
pub use procgrid::ProcGrid;
pub use rect::Rect;

//! Property-based tests of the geometry layer.

use nestwx_grid::rect::tiles_exactly;
use nestwx_grid::{Decomposition, DomainFeatures, HaloSpec, ProcGrid, Rect};
use proptest::prelude::*;

proptest! {
    /// Splitting a rectangle always tiles it exactly, for every legal cut.
    #[test]
    fn split_x_tiles(x0 in 0u32..100, y0 in 0u32..100, w in 2u32..200, h in 1u32..200, cut in 1u32..199) {
        prop_assume!(cut < w);
        let r = Rect::new(x0, y0, w, h);
        let (a, b) = r.split_x(cut);
        prop_assert!(tiles_exactly(&r, &[a, b]));
        prop_assert_eq!(a.area() + b.area(), r.area());
    }

    #[test]
    fn split_y_tiles(x0 in 0u32..100, y0 in 0u32..100, w in 1u32..200, h in 2u32..200, cut in 1u32..199) {
        prop_assume!(cut < h);
        let r = Rect::new(x0, y0, w, h);
        let (a, b) = r.split_y(cut);
        prop_assert!(tiles_exactly(&r, &[a, b]));
    }

    /// Intersection is commutative and contained in both operands.
    #[test]
    fn intersection_laws(
        ax in 0u32..50, ay in 0u32..50, aw in 1u32..50, ah in 1u32..50,
        bx in 0u32..50, by in 0u32..50, bw in 1u32..50, bh in 1u32..50,
    ) {
        let a = Rect::new(ax, ay, aw, ah);
        let b = Rect::new(bx, by, bw, bh);
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        if let Some(i) = a.intersect(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(!i.is_empty());
        }
    }

    /// Decomposition patches tile the domain for any feasible grid.
    #[test]
    fn decomposition_tiles(nx in 1u32..300, ny in 1u32..300, px in 1u32..16, py in 1u32..16) {
        prop_assume!(px <= nx && py <= ny);
        let d = Decomposition::new(nx, ny, ProcGrid::new(px, py));
        let regions: Vec<Rect> = d.patches().iter().map(|p| p.region).collect();
        prop_assert!(tiles_exactly(&Rect::of_size(nx, ny), &regions));
    }

    /// Patch sizes are near-uniform: widths and heights differ by ≤ 1.
    #[test]
    fn decomposition_balanced(nx in 1u32..300, ny in 1u32..300, px in 1u32..16, py in 1u32..16) {
        prop_assume!(px <= nx && py <= ny);
        let d = Decomposition::new(nx, ny, ProcGrid::new(px, py));
        let ws: Vec<u32> = d.patches().iter().map(|p| p.region.w).collect();
        let hs: Vec<u32> = d.patches().iter().map(|p| p.region.h).collect();
        prop_assert!(ws.iter().max().unwrap() - ws.iter().min().unwrap() <= 1);
        prop_assert!(hs.iter().max().unwrap() - hs.iter().min().unwrap() <= 1);
    }

    /// Rank ↔ coordinate conversion round-trips.
    #[test]
    fn rank_coord_roundtrip(px in 1u32..64, py in 1u32..64, r in 0u32..4096) {
        let g = ProcGrid::new(px, py);
        prop_assume!(r < g.len());
        let (x, y) = g.coords_of(r);
        prop_assert_eq!(g.rank_of(x, y), r);
        prop_assert!(x < px && y < py);
    }

    /// Neighbour relations are symmetric within any sub-rectangle.
    #[test]
    fn neighbors_symmetric(px in 2u32..20, py in 2u32..20, rx in 0u32..10, ry in 0u32..10, rw in 1u32..10, rh in 1u32..10) {
        prop_assume!(rx + rw <= px && ry + rh <= py);
        let g = ProcGrid::new(px, py);
        let region = Rect::new(rx, ry, rw, rh);
        for rank in g.ranks_in(&region) {
            for nb in g.neighbors_within(rank, &region).into_iter().flatten() {
                let back = g.neighbors_within(nb, &region);
                prop_assert!(back.into_iter().flatten().any(|r| r == rank),
                    "asymmetric neighbours {rank} / {nb}");
            }
        }
    }

    /// Near-square factorisation is exact and as square as claimed.
    #[test]
    fn near_square_factorises(p in 1u32..5000) {
        let g = ProcGrid::near_square(p);
        prop_assert_eq!(g.len(), p);
        prop_assert!(g.px <= g.py);
        // No better factorisation exists.
        for x in (g.px + 1)..=((p as f64).sqrt() as u32) {
            prop_assert!(p % x != 0 || x <= g.px);
        }
    }

    /// Feature extraction: dims() inverts from_dims() to within rounding.
    #[test]
    fn features_roundtrip(nx in 2u32..2000, ny in 2u32..2000) {
        let f = DomainFeatures::from_dims(nx, ny);
        let (rx, ry) = f.dims();
        prop_assert!((rx - nx as f64).abs() < 1e-6);
        prop_assert!((ry - ny as f64).abs() < 1e-6);
    }

    /// Halo bytes scale linearly in the edge length.
    #[test]
    fn halo_bytes_linear(edge in 1u32..1000, k in 2u32..5) {
        let halo = HaloSpec::wrf_arw();
        prop_assert_eq!(halo.edge_bytes(edge) * k as u64, halo.edge_bytes(edge * k));
    }
}

//! Integration tests of the extension APIs: per-iteration traces, adaptive
//! steering, cross-validation, 5-D mapping and execution modes — all
//! through the public façade.

use nestwx::core::{run_adaptive, AllocPolicy, Planner};
use nestwx::grid::{Domain, NestSpec, ProcGrid};
use nestwx::netsim::Machine;
use nestwx::predict::{compare_models, leave_one_out};
use nestwx::topo::torus5d::{partition_halo_pairs, Mapping5, Torus5};

fn config() -> (Domain, Vec<NestSpec>) {
    (
        Domain::parent(286, 307, 24.0),
        vec![
            NestSpec::new(259, 229, 3, (10, 12)),
            NestSpec::new(180, 200, 3, (150, 40)),
        ],
    )
}

#[test]
fn traces_reconstruct_the_aggregate_report() {
    let (parent, nests) = config();
    let plan = Planner::new(Machine::bgl(128))
        .plan(&parent, &nests)
        .unwrap();
    let (report, traces) = plan.simulate_traced(4).unwrap();
    assert_eq!(traces.len(), 4);
    let parent_sum: f64 = traces.iter().map(|t| t.parent).sum();
    let nests_sum: f64 = traces.iter().map(|t| t.nests).sum();
    assert!((parent_sum - report.parent_phase).abs() < 1e-9);
    assert!((nests_sum - report.nest_phase).abs() < 1e-9);
    // Iterations are contiguous in time.
    for w in traces.windows(2) {
        let end = w[0].start + w[0].parent + w[0].nests + w[0].io;
        assert!((w[1].start - end).abs() < 1e-6, "gap between iterations");
    }
}

#[test]
fn adaptive_via_facade_improves_on_equal() {
    let (parent, nests) = config();
    let equal = Planner::new(Machine::bgl(128)).alloc_policy(AllocPolicy::Equal);
    let static_run = equal.plan(&parent, &nests).unwrap().simulate(6).unwrap();
    let adaptive = run_adaptive(&equal, &parent, &nests, 6, 2).unwrap();
    assert!(adaptive.per_iteration() <= static_run.per_iteration() * 1.02);
}

#[test]
fn cross_validation_on_simulator_profiles() {
    let machine = Machine::bgl(64);
    let basis = nestwx::core::profile_basis(&machine, 11);
    let loo = leave_one_out(&basis);
    assert!(
        loo.mean_error() < 0.10,
        "LOO mean error {:.3}",
        loo.mean_error()
    );
    let (interp, naive) = compare_models(&basis, 4);
    assert!(interp.mean_error() <= naive.mean_error() * 1.05);
}

#[test]
fn five_d_universal_fold_on_bgq() {
    let torus = Torus5::bgq_rack();
    let grid = ProcGrid::new(32, 32);
    let m = Mapping5::universal_folded(torus, &grid).unwrap();
    let edges = partition_halo_pairs(&grid, &[grid.rect()]);
    assert!(
        (m.avg_hops(&edges) - 1.0).abs() < 1e-12,
        "universal fold must be 1-hop everywhere"
    );
}

#[test]
fn execution_modes_simulate() {
    let (parent, nests) = config();
    for machine in [
        Machine::bgl_co(128),
        Machine::bgp_smp(64),
        Machine::bgp_dual(128),
    ] {
        let name = machine.name.clone();
        let rep = Planner::new(machine)
            .plan(&parent, &nests)
            .unwrap()
            .simulate(2)
            .unwrap();
        assert!(
            rep.total_time.is_finite() && rep.total_time > 0.0,
            "{name} failed"
        );
    }
}

//! End-to-end pipeline tests: predict → allocate → map → simulate, spanning
//! every crate through the `nestwx` façade.

use nestwx::core::{compare_strategies, AllocPolicy, MappingKind, Planner, Strategy};
use nestwx::grid::{Domain, NestSpec, ProcGrid};
use nestwx::netsim::{IoMode, Machine};
use nestwx::topo::Mapping;

fn pacific() -> (Domain, Vec<NestSpec>) {
    (
        Domain::parent(286, 307, 24.0),
        vec![
            NestSpec::new(259, 229, 3, (10, 12)),
            NestSpec::new(232, 256, 3, (150, 40)),
        ],
    )
}

#[test]
fn concurrent_beats_default_on_saturating_machine() {
    let (parent, nests) = pacific();
    let planner = Planner::new(Machine::bgl(512));
    let cmp = compare_strategies(&planner, &parent, &nests, 3).unwrap();
    assert!(
        cmp.improvement_pct() > 10.0,
        "expected a double-digit improvement, got {:.1}%",
        cmp.improvement_pct()
    );
}

#[test]
fn partition_areas_track_predicted_ratios() {
    let (parent, nests) = pacific();
    let plan = Planner::new(Machine::bgl(256))
        .plan(&parent, &nests)
        .unwrap();
    let total: f64 = plan.partitions.iter().map(|p| p.rect.area() as f64).sum();
    for p in &plan.partitions {
        let share = p.rect.area() as f64 / total;
        let target = plan.predicted_ratios[p.domain];
        assert!(
            (share - target).abs() < 0.08,
            "nest {} got {share:.3}, predicted {target:.3}",
            p.domain
        );
    }
}

#[test]
fn partitions_tile_grid_exactly() {
    let (parent, nests) = pacific();
    for policy in [
        AllocPolicy::Equal,
        AllocPolicy::NaiveProportional,
        AllocPolicy::HuffmanSplitTree,
    ] {
        let plan = Planner::new(Machine::bgl(256))
            .alloc_policy(policy)
            .plan(&parent, &nests)
            .unwrap();
        let rects: Vec<_> = plan.partitions.iter().map(|p| p.rect).collect();
        assert!(
            nestwx::grid::rect::tiles_exactly(&plan.grid.rect(), &rects),
            "{policy:?} does not tile"
        );
    }
}

#[test]
fn topology_aware_mappings_cut_hops() {
    let (parent, nests) = pacific();
    let base = Planner::new(Machine::bgl(512));
    let run = |kind| {
        base.clone()
            .mapping(kind)
            .plan(&parent, &nests)
            .unwrap()
            .simulate(2)
            .unwrap()
    };
    let oblivious = run(MappingKind::Oblivious);
    let partition = run(MappingKind::Partition);
    let multilevel = run(MappingKind::MultiLevel);
    assert!(
        partition.avg_hops < 0.8 * oblivious.avg_hops,
        "partition {:.2} !≪ oblivious {:.2}",
        partition.avg_hops,
        oblivious.avg_hops
    );
    assert!(multilevel.avg_hops < 0.8 * oblivious.avg_hops);
}

#[test]
fn sequential_strategy_is_mapping_stable() {
    // The default strategy's result is identical across planner mapping
    // kinds when no partitions exist — the mapping only changes node
    // placement, and oblivious is used for empty partition lists.
    let (parent, nests) = pacific();
    let a = Planner::new(Machine::bgl(64))
        .strategy(Strategy::Sequential)
        .mapping(MappingKind::Partition)
        .plan(&parent, &nests)
        .unwrap()
        .simulate(2)
        .unwrap();
    let b = Planner::new(Machine::bgl(64))
        .strategy(Strategy::Sequential)
        .mapping(MappingKind::MultiLevel)
        .plan(&parent, &nests)
        .unwrap()
        .simulate(2)
        .unwrap();
    assert_eq!(a.total_time, b.total_time);
}

#[test]
fn io_shifts_favor_concurrent() {
    let (parent, nests) = pacific();
    let quiet = Planner::new(Machine::bgp(512));
    let noisy = Planner::new(Machine::bgp(512)).output(IoMode::PnetCdf, 1);
    let cmp_quiet = compare_strategies(&quiet, &parent, &nests, 3).unwrap();
    let cmp_noisy = compare_strategies(&noisy, &parent, &nests, 3).unwrap();
    // Fig. 8's claim: improvement including I/O exceeds improvement
    // excluding I/O.
    assert!(
        cmp_noisy.improvement_pct() > cmp_quiet.improvement_pct(),
        "incl. I/O {:.1}% !> excl. I/O {:.1}%",
        cmp_noisy.improvement_pct(),
        cmp_quiet.improvement_pct()
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let (parent, nests) = pacific();
    let run = || {
        let planner = Planner::new(Machine::bgl(256));
        let cmp = compare_strategies(&planner, &parent, &nests, 2).unwrap();
        (
            cmp.default_run.total_time,
            cmp.planned_run.total_time,
            cmp.planned_run.mpi_wait_total,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn grid_smaller_machines_still_plan() {
    // Small partitions (e.g. 16 ranks) with several nests must still
    // produce valid, simulable plans.
    let parent = Domain::parent(120, 130, 24.0);
    let nests = vec![
        NestSpec::new(90, 80, 3, (2, 2)),
        NestSpec::new(60, 70, 3, (70, 70)),
        NestSpec::new(50, 50, 3, (20, 80)),
    ];
    let plan = Planner::new(Machine::bgl(16))
        .plan(&parent, &nests)
        .unwrap();
    assert_eq!(plan.partitions.len(), 3);
    let rep = plan.simulate(2).unwrap();
    assert!(rep.total_time.is_finite() && rep.total_time > 0.0);
}

#[test]
fn manual_mapping_roundtrip_through_simulation() {
    // A hand-built mapping drives the simulator identically to the planner
    // path — exercises the public Mapping API end to end.
    let (parent, nests) = pacific();
    let machine = Machine::bgl(64);
    let planner = Planner::new(machine.clone()).mapping(MappingKind::Oblivious);
    let plan = planner.plan(&parent, &nests).unwrap();
    let manual = Mapping::oblivious(machine.shape, 64).unwrap();
    assert_eq!(plan.mapping, manual);
    let grid = ProcGrid::near_square(64);
    assert_eq!(plan.grid, grid);
}

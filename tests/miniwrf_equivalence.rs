//! Integration tests of the threaded mini-app: strategy equivalence,
//! physics invariants, and the core-crate thread allocation driving it.

use nestwx::core::threads::thread_allocation;
use nestwx::miniwrf::nest::NestGeometry;
use nestwx::miniwrf::solver::Boundary;
use nestwx::miniwrf::{run_iterations, NestedModel, ShallowWater, ThreadStrategy};

fn storm_model() -> NestedModel {
    let geos = [
        NestGeometry {
            ratio: 3,
            offset: (6, 6),
            nx: 45,
            ny: 39,
        },
        NestGeometry {
            ratio: 3,
            offset: (32, 30),
            nx: 36,
            ny: 30,
        },
    ];
    let mut m = NestedModel::new(60, 54, 24_000.0, 1000.0, &geos);
    m.add_depression(13.0, 12.0, -18.0, 3.0);
    m.add_depression(38.0, 35.0, -12.0, 2.5);
    m
}

#[test]
fn sequential_and_concurrent_agree_bitwise() {
    let mut seq = storm_model();
    let mut conc = storm_model();
    let alloc = thread_allocation(&[45.0 * 39.0, 36.0 * 30.0], 3);
    run_iterations(&mut seq, 6, 3, &ThreadStrategy::Sequential);
    run_iterations(
        &mut conc,
        6,
        3,
        &ThreadStrategy::Concurrent { allocation: alloc },
    );
    assert_eq!(seq.parent.h, conc.parent.h);
    assert_eq!(seq.parent.hu, conc.parent.hu);
    assert_eq!(seq.parent.hv, conc.parent.hv);
    for (a, b) in seq.nests.iter().zip(&conc.nests) {
        assert_eq!(a.solver.h, b.solver.h);
        assert_eq!(a.solver.hu, b.solver.hu);
        assert_eq!(a.solver.hv, b.solver.hv);
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let mut one = storm_model();
    let mut four = storm_model();
    run_iterations(&mut one, 5, 1, &ThreadStrategy::Sequential);
    run_iterations(&mut four, 5, 4, &ThreadStrategy::Sequential);
    assert_eq!(one.parent.h, four.parent.h);
    assert_eq!(one.nests[0].solver.h, four.nests[0].solver.h);
}

#[test]
fn coupled_run_stays_stable_and_bounded() {
    let mut m = storm_model();
    run_iterations(&mut m, 15, 2, &ThreadStrategy::Sequential);
    assert!(m.parent.cfl() < 1.0, "parent CFL {:.2}", m.parent.cfl());
    for n in &m.nests {
        assert!(n.solver.cfl() < 1.0);
        let h = &n.solver.h;
        assert!(
            h.max_abs() < 1100.0 && h.max_abs() > 900.0,
            "depth out of range"
        );
    }
}

#[test]
fn standalone_solver_conserves_mass_under_threading() {
    let mut sw = ShallowWater::quiescent(48, 48, 1000.0, 100.0, Boundary::Periodic);
    sw.add_gaussian(24.0, 24.0, -5.0, 4.0);
    let m0 = sw.mass();
    for _ in 0..30 {
        nestwx::miniwrf::runtime::step_parallel(&mut sw, 4);
    }
    assert!((sw.mass() - m0).abs() / m0 < 1e-10);
}

#[test]
fn depression_fills_in_over_time() {
    // Physical sanity: an isolated depression radiates gravity waves and
    // its centre relaxes back toward the rest depth.
    let mut m = storm_model();
    let centre0 = m.nests[0].solver.h.get(19, 18);
    run_iterations(&mut m, 12, 2, &ThreadStrategy::Sequential);
    let centre1 = m.nests[0].solver.h.get(19, 18);
    assert!(centre0 < 1000.0, "initial depression missing");
    assert!(
        centre1 > centre0,
        "depression should relax: {centre0} → {centre1}"
    );
}

#[test]
fn feedback_keeps_parent_and_nest_consistent() {
    let mut m = storm_model();
    run_iterations(&mut m, 4, 2, &ThreadStrategy::Sequential);
    // After feedback, a parent cell equals the mean of its 3×3 fine cells.
    let nest = &m.nests[0];
    let (oi, oj) = nest.geo.offset;
    for (pi, pj) in [(2usize, 3usize), (7, 5), (10, 9)] {
        let parent_val = m.parent.h.get((oi + pi) as isize, (oj + pj) as isize);
        let mut mean = 0.0;
        for fj in 0..3 {
            for fi in 0..3 {
                mean += nest
                    .solver
                    .h
                    .get((pi * 3 + fi) as isize, (pj * 3 + fj) as isize);
            }
        }
        mean /= 9.0;
        assert!(
            (parent_val - mean).abs() < 1e-9,
            "feedback mismatch at parent ({pi},{pj}): {parent_val} vs {mean}"
        );
    }
}

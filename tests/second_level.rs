//! Integration tests of second-level nesting — §4.1.1's "Three
//! configurations had sibling domains at the second level".

use nestwx::core::{compare_strategies, Planner, Strategy};
use nestwx::grid::{Domain, DomainError, NestSpec, NestedConfig};
use nestwx::netsim::Machine;

/// A SE-Asia-like setup: 4.5 km parent, two 1.5 km level-1 nests, and two
/// 500 m level-2 nests inside the first.
fn sea_config() -> (Domain, Vec<NestSpec>) {
    let parent = Domain::parent(300, 260, 4.5);
    let nests = vec![
        NestSpec::new(240, 210, 3, (20, 20)),         // level 1, big
        NestSpec::new(150, 150, 3, (170, 150)),       // level 1
        NestSpec::child_of(0, 90, 90, 3, (10, 10)),   // level 2 in nest 0
        NestSpec::child_of(0, 75, 60, 3, (140, 120)), // level 2 in nest 0
    ];
    (parent, nests)
}

#[test]
fn config_validates_hierarchy() {
    let (parent, nests) = sea_config();
    let cfg = NestedConfig::new(parent, nests).unwrap();
    assert_eq!(cfg.level1(), vec![0, 1]);
    assert_eq!(cfg.children_of(0), vec![2, 3]);
    assert!(cfg.children_of(1).is_empty());
    assert!(cfg.has_second_level());
}

#[test]
fn rejects_forward_and_deep_references() {
    let parent = Domain::parent(300, 260, 4.5);
    // Forward reference.
    let err = NestedConfig::new(
        parent.clone(),
        vec![
            NestSpec::child_of(1, 30, 30, 3, (0, 0)),
            NestSpec::new(100, 100, 3, (0, 0)),
        ],
    )
    .err()
    .unwrap();
    assert!(matches!(
        err,
        DomainError::BadNestParent { nest: 0, parent: 1 }
    ));
    // Third level (child of a child) is rejected.
    let err = NestedConfig::new(
        parent,
        vec![
            NestSpec::new(200, 200, 3, (0, 0)),
            NestSpec::child_of(0, 90, 90, 3, (0, 0)),
            NestSpec::child_of(1, 30, 30, 3, (0, 0)),
        ],
    )
    .err()
    .unwrap();
    assert!(matches!(
        err,
        DomainError::BadNestParent { nest: 2, parent: 1 }
    ));
}

#[test]
fn rejects_child_outside_its_nest() {
    let parent = Domain::parent(300, 260, 4.5);
    let err = NestedConfig::new(
        parent,
        vec![
            NestSpec::new(120, 120, 3, (0, 0)),
            // Footprint 40×40 at (100,100) exceeds the 120-point nest.
            NestSpec::child_of(0, 120, 120, 3, (100, 100)),
        ],
    )
    .err()
    .unwrap();
    assert!(matches!(err, DomainError::NestOutsideParent { nest: 1 }));
}

#[test]
fn planner_subdivides_children_inside_parent_partition() {
    let (parent, nests) = sea_config();
    let plan = Planner::new(Machine::bgl(256))
        .plan(&parent, &nests)
        .unwrap();
    assert_eq!(plan.partitions.len(), 4);
    let r0 = plan.partitions[0].rect;
    let r2 = plan.partitions[2].rect;
    let r3 = plan.partitions[3].rect;
    assert!(
        r0.contains_rect(&r2),
        "child 2 must sit inside nest 0's partition"
    );
    assert!(
        r0.contains_rect(&r3),
        "child 3 must sit inside nest 0's partition"
    );
    assert!(r2.is_disjoint(&r3), "sibling children must not overlap");
    // The level-1 rectangles still tile the grid.
    let l1: Vec<_> = [0usize, 1]
        .iter()
        .map(|&i| plan.partitions[i].rect)
        .collect();
    assert!(nestwx::grid::rect::tiles_exactly(&plan.grid.rect(), &l1));
    // Nest 0 carries its children's load → more processors than nest 1.
    assert!(plan.partitions[0].rect.area() > plan.partitions[1].rect.area());
}

#[test]
fn hierarchical_simulation_runs_both_strategies() {
    let (parent, nests) = sea_config();
    let planner = Planner::new(Machine::bgl(256));
    let seq = planner
        .clone()
        .strategy(Strategy::Sequential)
        .plan(&parent, &nests)
        .unwrap()
        .simulate(2)
        .unwrap();
    let conc = planner.plan(&parent, &nests).unwrap().simulate(2).unwrap();
    assert!(seq.total_time.is_finite() && conc.total_time.is_finite());
    // All four nests accumulated solve time in both strategies.
    assert!(
        seq.sibling_solve.iter().all(|&t| t > 0.0),
        "{:?}",
        seq.sibling_solve
    );
    assert!(
        conc.sibling_solve.iter().all(|&t| t > 0.0),
        "{:?}",
        conc.sibling_solve
    );
    // Children run 3× per level-1 sub-step: their cumulative solve time
    // must be substantial relative to their parent's.
    assert!(seq.sibling_solve[2] > 0.3 * seq.sibling_solve[0]);
}

#[test]
fn concurrent_still_wins_with_second_level() {
    let (parent, nests) = sea_config();
    let planner = Planner::new(Machine::bgl(512));
    let cmp = compare_strategies(&planner, &parent, &nests, 3).unwrap();
    assert!(
        cmp.improvement_pct() > 5.0,
        "hierarchical improvement only {:.1}%",
        cmp.improvement_pct()
    );
}

//! Integration tests of the §3.1 prediction pipeline against the machine
//! simulator as ground truth.

use nestwx::core::profile::{fit_predictor, measure_domain_time, profile_basis, PROFILE_RANKS};
use nestwx::grid::DomainFeatures;
use nestwx::netsim::Machine;
use nestwx::predict::{ExecTimePredictor, NaivePointsModel};

#[test]
fn interpolation_beats_six_percent_on_holdout() {
    let machine = Machine::bgl(64);
    let model = fit_predictor(&machine, 7);
    // Hold-out domains across the paper's stated test ranges.
    let tests = [
        (215u32, 260u32),
        (230, 243),
        (310, 215),
        (188, 300),
        (260, 360),
        (205, 410),
        (172, 344),
        (365, 244),
    ];
    for (nx, ny) in tests {
        let truth = measure_domain_time(&machine, nx, ny, PROFILE_RANKS);
        let pred = model.predict(&DomainFeatures::from_dims(nx, ny)).unwrap();
        let err = (pred - truth).abs() / truth;
        assert!(err < 0.06, "{nx}x{ny}: {:.2}% ≥ 6%", err * 100.0);
    }
}

#[test]
fn naive_model_clearly_worse_than_interpolation() {
    let machine = Machine::bgl(64);
    let basis = profile_basis(&machine, 7);
    let interp = ExecTimePredictor::fit(&basis).unwrap();
    let naive = NaivePointsModel::fit(&basis);
    // Skewed aspect ratios are where the points-only model is blind
    // (§3.1's x- vs y-communication argument).
    let tests = [
        (205u32, 410u32),
        (410, 205),
        (172, 344),
        (365, 244),
        (188, 300),
    ];
    let mut e_interp = 0.0;
    let mut e_naive = 0.0;
    for (nx, ny) in tests {
        let truth = measure_domain_time(&machine, nx, ny, PROFILE_RANKS);
        let f = DomainFeatures::from_dims(nx, ny);
        e_interp += (interp.predict(&f).unwrap() - truth).abs() / truth;
        e_naive += (naive.predict(&f) - truth).abs() / truth;
    }
    // The exact margin depends on which candidate domains the seeded RNG
    // draws for the basis; the vendored offline `rand` has a different
    // stream than upstream, so assert a clear-but-robust 1.5× separation.
    assert!(
        e_naive > 1.5 * e_interp,
        "naive ({:.3}) should err ≫ interpolation ({:.3})",
        e_naive,
        e_interp
    );
}

#[test]
fn out_of_hull_scaling_preserves_ordering() {
    // Fig. 10's large nests lie outside the basis hull; their *relative*
    // predicted times must still order correctly (§3.1's first-order
    // estimate claim).
    let machine = Machine::bgl(64);
    let model = fit_predictor(&machine, 7);
    let sizes = [(586u32, 643u32), (856, 919), (925, 850)];
    let times: Vec<f64> = sizes
        .iter()
        .map(|&(nx, ny)| model.predict(&DomainFeatures::from_dims(nx, ny)).unwrap())
        .collect();
    assert!(times[0] < times[1], "586x643 must predict below 856x919");
    assert!(times[0] < times[2]);
    // The two near-equal-area nests must predict within 15 % of each other.
    assert!((times[1] - times[2]).abs() / times[1] < 0.15);
}

#[test]
fn relative_times_feed_allocation_consistently() {
    // Integration across predict + alloc: Huffman/split-tree over the
    // predictor's ratios allocates the biggest nest the most processors.
    let machine = Machine::bgl(64);
    let model = fit_predictor(&machine, 7);
    let features = [
        DomainFeatures::from_dims(394, 418),
        DomainFeatures::from_dims(232, 202),
        DomainFeatures::from_dims(313, 337),
    ];
    let ratios = model.relative_times(&features).unwrap();
    let grid = nestwx::grid::ProcGrid::new(8, 8);
    let parts = nestwx::alloc::partition_grid(&grid, &ratios).unwrap();
    let areas: Vec<u64> = {
        let mut v = parts.clone();
        v.sort_by_key(|p| p.domain);
        v.iter().map(|p| p.rect.area()).collect()
    };
    assert!(
        areas[0] > areas[1],
        "394x418 must out-rank 232x202: {areas:?}"
    );
    assert!(areas[2] > areas[1]);
}
